"""Translating the intensional component for relational targets.

Algorithm 1 returns, besides the target schema S', "(ii) a new version
of the intensional component that can be applied to S' instances".  For
the relational model this module produces that version: the MetaLog
rules, written against the super-schema's node/edge types, are rewritten
into Vadalog over the *translated tables* — member tables joined along
the generalization chain, foreign-key columns for many-to-one edges,
bridge tables for many-to-many (and intensional) edges.

:func:`reason_over_relational` then closes the loop of Section 6 without
going through the super-model dictionary at all: facts are extracted
from the deployed :class:`~repro.deploy.relational_engine.RelationalEngine`,
the chase runs, and the derived rows are inserted back into the
intensional bridge tables.

Scope (documented): entities must have single-attribute identifiers (as
in the Company KG); body path patterns must be simple edges (programs
with Kleene star or alternation go through Algorithm 2 instead); head
patterns must be edges whose relational form is a bridge table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.schema import SuperSchema
from repro.core.supermodel import SMEdge, SMNode
from repro.errors import TranslationError
from repro.metalog.ast import (
    GraphPattern,
    MetaProgram,
    NegatedPattern,
    NodeAtom,
    PathEdge,
)
from repro.models.relational import RelationalSchema, Table
from repro.ssst.inverse import _edge_fk_owner
from repro.vadalog.ast import Atom, Condition, NegatedAtom, Program, Rule, TermExpr
from repro.vadalog.database import Database
from repro.vadalog.engine import Engine
from repro.vadalog.terms import ANONYMOUS, Variable, fact_sort_key


@dataclass
class CompiledRelationalSigma:
    """Result of :func:`translate_sigma_for_relational`."""

    program: Program
    #: Tables read by the program (to be extracted from the engine).
    input_tables: Set[str] = field(default_factory=set)
    #: Derived bridge tables: label -> table name.
    derived_tables: Dict[str, str] = field(default_factory=dict)


class _SigmaCompiler:
    def __init__(self, schema: SuperSchema, relational: RelationalSchema):
        self.schema = schema
        self.relational = relational
        self._fresh = 0
        self.input_tables: Set[str] = set()
        self.derived_tables: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def fresh_variable(self, hint: str = "k") -> Variable:
        self._fresh += 1
        return Variable(f"_{hint}{self._fresh}")

    def _table(self, name: str) -> Table:
        if name not in self.relational.tables:
            raise TranslationError(
                f"type {name!r} has no table in the translated schema"
            )
        return self.relational.tables[name]

    def _key_attr(self, node: SMNode) -> str:
        identifier = self.schema.identifier_of(node)
        if len(identifier) != 1:
            raise TranslationError(
                f"type {node.type_name!r} needs a single-attribute identifier "
                "for the relational sigma translation"
            )
        return identifier[0].name

    def _column_index(self, table: Table, column: str) -> int:
        for i, col in enumerate(table.columns):
            if col.name == column:
                return i
        raise TranslationError(
            f"table {table.name!r} has no column {column!r}"
        )

    def _table_atom(self, table: Table, bindings: Dict[str, Any]) -> Atom:
        """An atom over a table with the given column bindings."""
        self.input_tables.add(table.name)
        terms: List[Any] = [ANONYMOUS] * len(table.columns)
        for column, term in bindings.items():
            terms[self._column_index(table, column)] = term
        return Atom(table.name, tuple(terms))

    def _pk_column(self, node: SMNode) -> str:
        key = self._key_attr(node)
        if self.schema.parents_of(node):
            return f"isA_{node.type_name}_{key}"
        return key

    # ------------------------------------------------------------------
    def _node_atoms(self, atom: NodeAtom, key_var: Variable) -> List[Atom]:
        """Membership + attribute access for one node atom."""
        if atom.label is None:
            return []  # bare re-reference
        node = self.schema.get_node(atom.label)
        chain = [node] + self.schema.ancestors_of(node)
        by_declaring: Dict[str, Dict[str, Any]] = {node.type_name: {}}
        for name, term in atom.attributes:
            declaring = None
            for member in chain:
                if any(a.name == name for a in member.attributes):
                    declaring = member
                    break
            if declaring is None:
                raise TranslationError(
                    f"type {atom.label!r} has no attribute {name!r}"
                )
            by_declaring.setdefault(declaring.type_name, {})[name] = term
        atoms: List[Atom] = []
        for member in chain:
            bindings = by_declaring.get(member.type_name)
            if bindings is None:
                continue
            bindings = dict(bindings)
            bindings[self._pk_column(member)] = key_var
            atoms.append(self._table_atom(self._table(member.type_name), bindings))
        return atoms

    def _edge_atoms(
        self,
        edge: SMEdge,
        edge_atom,
        source_key: Variable,
        target_key: Variable,
    ) -> Tuple[List[Atom], List[Condition]]:
        """Body literals realizing one edge traversal."""
        attributes = dict(edge_atom.attributes)
        owner = _edge_fk_owner(self.schema, edge)
        if owner is None:
            # Many-to-many: the bridge table.
            table = self._table(edge.type_name)
            src_key_name = self._key_attr(edge.source)
            tgt_key_name = self._key_attr(edge.target)
            bindings: Dict[str, Any] = {
                f"{edge.type_name}_src_{src_key_name}": source_key,
                f"{edge.type_name}_tgt_{tgt_key_name}": target_key,
            }
            bindings.update(attributes)
            return [self._table_atom(table, bindings)], []
        holder, referenced = owner
        holder_key = source_key if holder is edge.source else target_key
        referenced_key = target_key if holder is edge.source else source_key
        table = self._table(holder.type_name)
        bindings = {self._pk_column(holder): holder_key}
        bindings[f"{edge.type_name}_{self._key_attr(referenced)}"] = referenced_key
        bindings.update(attributes)
        conditions = [
            Condition("!=", TermExpr(referenced_key), TermExpr(None))
        ]
        return [self._table_atom(table, bindings)], conditions

    # ------------------------------------------------------------------
    def compile_program(self, sigma: MetaProgram) -> Program:
        program = Program()
        for rule in sigma.rules:
            program.rules.append(self.compile_rule(rule))
        return program

    def compile_rule(self, rule) -> Rule:
        key_vars: Dict[int, Variable] = {}

        def key_var(atom: NodeAtom) -> Variable:
            if atom.variable is not None and atom.variable.name != "_":
                return atom.variable
            return key_vars.setdefault(id(atom), self.fresh_variable())

        body: List[Any] = []
        for element in rule.body:
            if isinstance(element, GraphPattern):
                body.extend(self._compile_pattern(element, key_var))
            elif isinstance(element, NegatedPattern):
                literals = self._compile_pattern(element.pattern, key_var)
                atoms = [lit for lit in literals if isinstance(lit, Atom)]
                if len(atoms) != 1:
                    raise TranslationError(
                        "negated patterns must translate to a single table "
                        f"atom: {element}"
                    )
                body.append(NegatedAtom(atoms[0]))
            else:
                body.append(element)

        head: List[Atom] = []
        for pattern in rule.head:
            head.extend(self._compile_head(pattern, key_var))
        return Rule(tuple(body), tuple(head))

    def _compile_pattern(self, pattern: GraphPattern, key_var) -> List[Any]:
        literals: List[Any] = []
        for atom in pattern.node_atoms:
            literals.extend(self._node_atoms(atom, key_var(atom)))
        for source, path, target in pattern.hops():
            if not isinstance(path, PathEdge):
                raise TranslationError(
                    "path expressions beyond simple edges are not supported "
                    "by the relational sigma translation; use Algorithm 2"
                )
            edge_atom = path.edge
            if edge_atom.label is None:
                raise TranslationError(f"edge atom needs a label: {pattern}")
            edge = self.schema.get_edge(edge_atom.label)
            src, tgt = key_var(source), key_var(target)
            if edge_atom.inverted:
                src, tgt = tgt, src
            atoms, conditions = self._edge_atoms(edge, edge_atom, src, tgt)
            literals.extend(atoms)
            literals.extend(conditions)
        return literals

    def _compile_head(self, pattern: GraphPattern, key_var) -> List[Atom]:
        atoms: List[Atom] = []
        for atom in pattern.node_atoms:
            if atom.label is not None and atom.attributes:
                raise TranslationError(
                    "head node updates are not supported by the relational "
                    "sigma translation; use Algorithm 2 for attribute heads"
                )
        for source, path, target in pattern.hops():
            if not isinstance(path, PathEdge) or path.edge.label is None:
                raise TranslationError(f"head paths must be labeled edges: {pattern}")
            edge = self.schema.get_edge(path.edge.label)
            if _edge_fk_owner(self.schema, edge) is not None:
                raise TranslationError(
                    f"derived edge {edge.type_name!r} must be many-to-many "
                    "(a bridge table) in the relational target"
                )
            table = self._table(edge.type_name)
            src, tgt = key_var(source), key_var(target)
            if path.edge.inverted:
                src, tgt = tgt, src
            bindings: Dict[str, Any] = {
                f"{edge.type_name}_src_{self._key_attr(edge.source)}": src,
                f"{edge.type_name}_tgt_{self._key_attr(edge.target)}": tgt,
            }
            bindings.update(dict(path.edge.attributes))
            terms: List[Any] = [None] * len(table.columns)
            for column, term in bindings.items():
                terms[self._column_index(table, column)] = term
            atoms.append(Atom(table.name, tuple(terms)))
            self.derived_tables[edge.type_name] = table.name
        return atoms


def translate_sigma_for_relational(
    sigma: MetaProgram,
    schema: SuperSchema,
    relational: RelationalSchema,
) -> CompiledRelationalSigma:
    """Rewrite a MetaLog intensional component against the S' tables."""
    compiler = _SigmaCompiler(schema, relational)
    program = compiler.compile_program(sigma)
    inputs = compiler.input_tables - set(compiler.derived_tables.values())
    return CompiledRelationalSigma(
        program=program,
        input_tables=compiler.input_tables,
        derived_tables=compiler.derived_tables,
    )


def reason_over_relational(
    sigma: MetaProgram,
    schema: SuperSchema,
    relational: RelationalSchema,
    engine_db,
    reasoner: Optional[Engine] = None,
    insert: bool = True,
    policy=None,
    quarantine=None,
    batch_size: int = 200,
) -> Dict[str, List[Dict[str, Any]]]:
    """Apply Sigma directly to a deployed relational instance.

    ``engine_db`` is a :class:`~repro.deploy.relational_engine.RelationalEngine`
    with the translated schema deployed and the instance loaded.  Returns
    the newly derived rows per table; when ``insert`` is true they are
    also written back in transactional batches: each batch commits under
    a store savepoint, transient failures are retried per row under
    ``policy`` (a :class:`~repro.deploy.resilience.RetryPolicy`), and a
    permanent failure mid-batch rolls that batch back — re-running the
    function replays idempotently because already-inserted rows are
    filtered out up front.
    """
    compiled = translate_sigma_for_relational(sigma, schema, relational)
    database = Database()
    for table_name in sorted(compiled.input_tables):
        header = [c.name for c in relational.table(table_name).columns]
        relation = database.relation(table_name)
        relation.arity = len(header)
        for row in engine_db.rows(table_name):
            relation.add(tuple(row.get(c) for c in header))

    reasoner = reasoner or Engine()
    result = reasoner.run(compiled.program, database=database)

    from repro.deploy.resilience import no_retry
    from repro.errors import IntegrityError

    policy = policy if policy is not None else no_retry()
    tracer = getattr(engine_db, "tracer", None)

    derived: Dict[str, List[Dict[str, Any]]] = {}
    for table_name in sorted(set(compiled.derived_tables.values())):
        header = [c.name for c in relational.table(table_name).columns]
        existing = {
            tuple(row.get(c) for c in header) for row in engine_db.rows(table_name)
        }
        fresh_rows: List[Dict[str, Any]] = []
        for fact in sorted(result.facts(table_name), key=fact_sort_key):
            if fact in existing:
                continue
            fresh_rows.append(dict(zip(header, fact)))
        if insert and fresh_rows:
            # Rows violating the target's constraints are quarantined
            # rather than inserted: e.g. the control program's self-seed
            # CONTROLS(p, p) for a person that is not a Business fails
            # the bridge's target-side foreign key.  The graph world has
            # no such constraint; the relational one rightly enforces it.
            kept: List[Dict[str, Any]] = []
            for start in range(0, len(fresh_rows), batch_size):
                batch = fresh_rows[start : start + batch_size]
                savepoint = engine_db.savepoint()
                batch_kept: List[Dict[str, Any]] = []
                try:
                    for row in batch:
                        values = {k: v for k, v in row.items() if v is not None}
                        try:
                            policy.call(
                                lambda t=table_name, v=values: engine_db.insert(
                                    t, **v
                                ),
                                tracer=tracer,
                            )
                        except IntegrityError as exc:
                            if quarantine is not None:
                                quarantine.reject("row", row, str(exc))
                            if tracer is not None:
                                tracer.count("deploy.quarantined", 1)
                            continue
                        batch_kept.append(row)
                except BaseException:
                    engine_db.rollback_to(savepoint)
                    if tracer is not None:
                        tracer.count("deploy.rollbacks", 1)
                    raise
                finally:
                    engine_db.release(savepoint)
                kept.extend(batch_kept)
            fresh_rows = kept
        derived[table_name] = fresh_rows
    return derived
