"""SSST schema translation — Algorithm 1 of the paper.

.. code-block:: none

    Input: super-schema S, target model M;  Output: schema S' of M.
    1: M  <- select candidate mappings to M from REPO
    2: M(M) <- prompt for implementation strategy
    3: V(M) <- MTV.translateToVadalog(M(M))
    4: S-  <- Reason(S, M(M).Eliminate)
    5: S'  <- Reason(S-, M(M).Copy)

The two Reason() calls run over the graph dictionary: Eliminate
materializes the intermediate super-schema S⁻ (same dictionary, new
schemaOID), Copy downcasts it into the target model's constructs.  The
translated schema is finally parsed into the model's typed schema object
(e.g. :class:`~repro.models.relational.RelationalSchema`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.dictionary import GraphDictionary, dictionary_catalog
from repro.core.schema import SuperSchema
from repro.graph.property_graph import PropertyGraph
from repro.metalog.ast import ExistentialBinding, MetaProgram, MetaRule
from repro.metalog.mtv import run_on_graph
from repro.metalog.parser import parse_metalog
from repro.models.repository import Mapping, MappingRepository, default_repository
from repro.vadalog.engine import Engine


def _namespace_skolems(program: MetaProgram, namespace: str) -> MetaProgram:
    """Suffix every linker Skolem functor with the S⁻ namespace.

    Renaming is uniform across the program, so functors shared between
    rules (``skN`` in CopyNodes and DeleteGeneralizations) still agree,
    while distinct translations mint disjoint OID ranges.
    """
    rules = []
    for rule in program.rules:
        existentials = tuple(
            ExistentialBinding(
                binding.variable,
                f"{binding.functor}@{namespace}" if binding.functor else None,
                binding.arguments,
            )
            for binding in rule.existentials
        )
        rules.append(
            MetaRule(rule.body, rule.head, existentials, rule.label)
        )
    return MetaProgram(rules=rules, annotations=list(program.annotations))


@dataclass
class TranslationResult:
    """Outcome of one Algorithm 1 run."""

    target_schema: Any  # PGSchema | RelationalSchema | RDFSchema
    target_oid: Any
    intermediate_oid: Any
    source_oid: Any
    mapping: Mapping
    dictionary: PropertyGraph
    phase_stats: Dict[str, Any] = field(default_factory=dict)

    def intermediate_super_schema(self, name: Optional[str] = None) -> SuperSchema:
        """Parse S⁻ back as a SuperSchema (PG/relational mappings keep it
        a valid super-schema instance)."""
        return SuperSchema.from_dictionary(
            self.dictionary, self.intermediate_oid, name
        )


class SSST:
    """The Super-Schema to Schema Translator."""

    def __init__(
        self,
        repository: Optional[MappingRepository] = None,
        engine: Optional[Engine] = None,
    ):
        self.repository = repository or default_repository()
        self.engine = engine or Engine()

    def translate(
        self,
        schema: SuperSchema,
        target_model: str,
        strategy: Optional[str] = None,
        dictionary: Optional[GraphDictionary] = None,
        target_oid: Any = None,
        intermediate_oid: Any = None,
    ) -> TranslationResult:
        """Run Algorithm 1 for ``schema`` against ``target_model``.

        When no ``dictionary`` is given, a fresh one is created and the
        schema stored into it; otherwise the schema must already be
        stored (or is stored on demand).
        """
        if dictionary is None:
            dictionary = GraphDictionary()
        if schema.schema_oid not in dictionary.schema_oids():
            dictionary.store(schema)
        return self.translate_stored(
            dictionary,
            schema.schema_oid,
            target_model,
            strategy=strategy,
            target_oid=target_oid,
            intermediate_oid=intermediate_oid,
        )

    def translate_stored(
        self,
        dictionary: GraphDictionary,
        source_oid: Any,
        target_model: str,
        strategy: Optional[str] = None,
        target_oid: Any = None,
        intermediate_oid: Any = None,
    ) -> TranslationResult:
        """Algorithm 1 over a schema already stored in the dictionary."""
        # Lines 1-2: candidate mappings, then the implementation strategy.
        mapping = self.repository.select(target_model, strategy)
        model = mapping.model
        if target_oid is None:
            target_oid = f"{model.name}:{source_oid}"

        if intermediate_oid is None:
            # Different target models produce *different* intermediate
            # super-schemas; when a dictionary is reused across
            # translations the default S⁻ OID must not collide.
            default_inter = f"{source_oid}-"
            taken = {
                node.get("schemaOID")
                for node in dictionary.graph.nodes("SM_Node")
            }
            if default_inter in taken:
                intermediate_oid = f"{source_oid}-{model.name}-"

        eliminate_text, copy_text, inter_oid = mapping.programs(
            source_oid, target_oid, intermediate_oid
        )
        # The paper keeps one dictionary per model; we share a single
        # graph, so the mappings' Skolem functors are namespaced by the
        # intermediate OID — otherwise two translations of the same
        # source would mint colliding construct OIDs (skN(n) is the same
        # value for the PG and the relational Eliminate).
        namespace = str(inter_oid)

        # The catalog must know both the super-model construct labels and
        # the target model's labels before compilation.
        catalog = dictionary_catalog()
        catalog.merge(model.catalog())

        phase_stats: Dict[str, Any] = {}

        # Line 3 happens inside run_on_graph (MTV compilation); lines 4-5
        # are the two reasoning passes, materialized into the dictionary.
        start = time.perf_counter()
        eliminate_program = _namespace_skolems(
            parse_metalog(eliminate_text), namespace
        )
        outcome = run_on_graph(
            eliminate_program, dictionary.graph, catalog=catalog,
            engine=self.engine, inplace=True,
        )
        phase_stats["eliminate"] = {
            "seconds": time.perf_counter() - start,
            "new_nodes": outcome.new_nodes,
            "new_edges": outcome.new_edges,
            "stats": outcome.result.stats,
        }

        start = time.perf_counter()
        copy_program = _namespace_skolems(parse_metalog(copy_text), namespace)
        outcome = run_on_graph(
            copy_program, dictionary.graph, catalog=catalog,
            engine=self.engine, inplace=True,
        )
        phase_stats["copy"] = {
            "seconds": time.perf_counter() - start,
            "new_nodes": outcome.new_nodes,
            "new_edges": outcome.new_edges,
            "stats": outcome.result.stats,
        }

        target_schema = model.parse_schema(dictionary.graph, target_oid)
        return TranslationResult(
            target_schema=target_schema,
            target_oid=target_oid,
            intermediate_oid=inter_oid,
            source_oid=source_oid,
            mapping=mapping,
            dictionary=dictionary.graph,
            phase_stats=phase_stats,
        )
