"""Parser for the MetaLog concrete syntax.

The paper presents MetaLog in mathematical notation; the ASCII grammar
accepted here mirrors it closely:

.. code-block:: none

    program   := (rule | annotation)*
    rule      := body "->" head "."
    body      := element ("," element)*
    element   := pattern | assignment | condition
    pattern   := node (path node)*
    node      := "(" [var] [":" LABEL] [";" attrs] ")"
    edge      := "[" [var] [":" LABEL] [";" attrs] "]" ["-"]
    path      := alt
    alt       := seq ("|" seq)*
    seq       := postfix ("." postfix)*
    postfix   := primary ("*" | "-")*
    primary   := edge | "(" path ")"
    attrs     := NAME ":" term ("," NAME ":" term)*
    head      := ["exists" binding ("," binding)* [":"]] pattern ("," pattern)*
    binding   := var ["=" FUNCTOR "(" [var ("," var)*] ")"]

Conventions (documented deviations from pure math notation):

- bare identifiers in term positions are **variables** (the paper's
  italic lowercase); constants must be quoted strings, numbers, or
  ``true``/``false`` — so ``name: n`` binds, ``name: "Business"`` filters;
- following the paper's own translation (Example 4.4), ``*`` denotes one
  or more repetitions;
- ``-`` after an edge atom or a parenthesized path is the inverse
  operator.

Example (company control, Example 4.1):

.. code-block:: none

    (x: Business) -> exists c : (x)[c: CONTROLS](x).
    (x: Business)[:CONTROLS](z: Business)[:OWNS; percentage: w](y: Business),
        v = msum(w, <z>), v > 0.5 -> exists c : (x)[c: CONTROLS](y).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import ParseError
from repro.lexing import TokenStream
from repro.metalog.ast import (
    EdgeAtom,
    ExistentialBinding,
    GraphPattern,
    MetaProgram,
    MetaRule,
    NegatedPattern,
    NodeAtom,
    PathAlt,
    PathEdge,
    PathExpr,
    PathInverse,
    PathSeq,
    PathStar,
)
from repro.vadalog.ast import (
    AggregateCall,
    Assignment,
    BinOp,
    Condition,
    FunctionCall,
    TermExpr,
)
from repro.vadalog.parser import AGGREGATE_FUNCTIONS
from repro.vadalog.terms import Variable

_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}

#: Names that are always parsed as builtin function calls when followed
#: by "(" in expressions.
_FUNCTION_NAMES = {
    "concat", "upper", "lower", "strlen", "abs", "round", "floor", "ceil",
    "min2", "max2", "mod", "tostring", "tonumber",
} | AGGREGATE_FUNCTIONS


def parse_metalog(text: str) -> MetaProgram:
    """Parse a MetaLog program from text."""
    return _Parser(TokenStream.from_text(text)).program()


def parse_metalog_rule(text: str) -> MetaRule:
    """Parse exactly one MetaLog rule (convenience)."""
    program = parse_metalog(text)
    if len(program.rules) != 1:
        raise ParseError(f"expected exactly one rule, found {len(program.rules)}")
    return program.rules[0]


class _Parser:
    def __init__(self, stream: TokenStream):
        self.stream = stream

    def program(self) -> MetaProgram:
        program = MetaProgram()
        while not self.stream.at_eof():
            if self.stream.at_punct("@"):
                program.annotations.append(self.annotation())
            else:
                program.rules.append(self.rule())
        return program

    def annotation(self) -> Tuple[str, Tuple[Any, ...]]:
        self.stream.expect_punct("@")
        name = str(self.stream.expect("IDENT").value)
        arguments: List[Any] = []
        self.stream.expect_punct("(")
        if not self.stream.at_punct(")"):
            arguments.append(self._constant())
            while self.stream.accept_punct(","):
                arguments.append(self._constant())
        self.stream.expect_punct(")")
        self.stream.expect_punct(".")
        return (name, tuple(arguments))

    def _constant(self) -> Any:
        token = self.stream.current
        if token.kind in ("STRING", "NUMBER"):
            self.stream.advance()
            return token.value
        if token.kind == "IDENT":
            self.stream.advance()
            return str(token.value)
        raise self.stream.error("expected a constant")

    # ------------------------------------------------------------------
    def rule(self) -> MetaRule:
        body: List[Any] = [self.body_element()]
        while self.stream.accept_punct(","):
            body.append(self.body_element())
        self.stream.expect_punct("->")
        existentials, head = self.head()
        self.stream.expect_punct(".")
        return MetaRule(tuple(body), tuple(head), tuple(existentials))

    def body_element(self):
        if self.stream.at_ident("not"):
            self.stream.advance()
            return NegatedPattern(self.graph_pattern())
        if self.stream.at_punct("("):
            return self.graph_pattern()
        return self.assignment_or_condition()

    # ------------------------------------------------------------------
    # Patterns
    # ------------------------------------------------------------------
    def graph_pattern(self) -> GraphPattern:
        elements: List[Any] = [self.node_atom()]
        while self._at_path_start():
            elements.append(self.path_expression())
            elements.append(self.node_atom())
        return GraphPattern(tuple(elements))

    def _at_path_start(self) -> bool:
        """A path starts with "[" or with "(" whose first inner non-"("
        token is "[" (a parenthesized path group)."""
        if self.stream.at_punct("["):
            return True
        if not self.stream.at_punct("("):
            return False
        offset = 0
        while self.stream.peek(offset).kind == "PUNCT" and self.stream.peek(offset).value == "(":
            offset += 1
        token = self.stream.peek(offset)
        return token.kind == "PUNCT" and token.value == "["

    def node_atom(self) -> NodeAtom:
        self.stream.expect_punct("(")
        variable, label, attributes = self._atom_body(")")
        self.stream.expect_punct(")")
        return NodeAtom(variable, label, attributes)

    def edge_atom(self) -> EdgeAtom:
        self.stream.expect_punct("[")
        variable, label, attributes = self._atom_body("]")
        self.stream.expect_punct("]")
        return EdgeAtom(variable, label, attributes)

    def _atom_body(self, closing: str):
        variable: Optional[Variable] = None
        label: Optional[str] = None
        attributes: List[Tuple[str, Any]] = []
        if self.stream.at("IDENT"):
            variable = Variable(str(self.stream.advance().value))
        if self.stream.accept_punct(":"):
            label = str(self.stream.expect("IDENT").value)
        if self.stream.accept_punct(";"):
            attributes.append(self._attribute())
            while self.stream.accept_punct(","):
                attributes.append(self._attribute())
        if not self.stream.at_punct(closing):
            raise self.stream.error(f"malformed atom, expected {closing!r}")
        return variable, label, tuple(attributes)

    def _attribute(self) -> Tuple[str, Any]:
        name = str(self.stream.expect("IDENT").value)
        self.stream.expect_punct(":")
        return (name, self.term())

    def term(self) -> Any:
        token = self.stream.current
        if token.kind in ("STRING", "NUMBER"):
            self.stream.advance()
            return token.value
        if token.kind == "PUNCT" and token.value == "-":
            self.stream.advance()
            return -self.stream.expect("NUMBER").value
        if token.kind == "IDENT":
            self.stream.advance()
            name = str(token.value)
            if name == "true":
                return True
            if name == "false":
                return False
            return Variable(name)
        raise self.stream.error(f"expected a term, found {token.value!r}")

    # ------------------------------------------------------------------
    # Path expressions
    # ------------------------------------------------------------------
    def path_expression(self) -> PathExpr:
        return self._path_alt()

    def _path_alt(self) -> PathExpr:
        options = [self._path_seq()]
        while self.stream.accept_punct("|"):
            options.append(self._path_seq())
        if len(options) == 1:
            return options[0]
        return PathAlt(tuple(options))

    def _path_seq(self) -> PathExpr:
        parts = [self._path_postfix()]
        while self.stream.accept_punct("."):
            parts.append(self._path_postfix())
        if len(parts) == 1:
            return parts[0]
        return PathSeq(tuple(parts))

    def _path_postfix(self) -> PathExpr:
        expression = self._path_primary()
        while True:
            if self.stream.accept_punct("*"):
                expression = PathStar(expression)
            elif self.stream.at_punct("-") and not self._minus_is_number():
                self.stream.advance()
                if isinstance(expression, PathEdge):
                    expression = PathEdge(expression.edge.invert())
                else:
                    expression = PathInverse(expression)
            else:
                return expression

    def _minus_is_number(self) -> bool:
        return self.stream.peek().kind == "NUMBER"

    def _path_primary(self) -> PathExpr:
        if self.stream.at_punct("["):
            return PathEdge(self.edge_atom())
        if self.stream.accept_punct("("):
            inner = self.path_expression()
            self.stream.expect_punct(")")
            return inner
        raise self.stream.error("expected an edge atom or a parenthesized path")

    # ------------------------------------------------------------------
    # Head
    # ------------------------------------------------------------------
    def head(self):
        existentials: List[ExistentialBinding] = []
        if self.stream.at_ident("exists"):
            self.stream.advance()
            existentials.append(self._existential_binding())
            while self.stream.at_punct(","):
                # A comma continues the binding list only when an IDENT
                # follows (patterns start with "(").
                if self.stream.peek().kind != "IDENT":
                    break
                self.stream.advance()
                existentials.append(self._existential_binding())
            self.stream.accept_punct(":")
        patterns = [self.graph_pattern()]
        while self.stream.accept_punct(","):
            patterns.append(self.graph_pattern())
        return existentials, patterns

    def _existential_binding(self) -> ExistentialBinding:
        variable = Variable(str(self.stream.expect("IDENT").value))
        if self.stream.accept_punct("="):
            functor = str(self.stream.expect("IDENT").value)
            self.stream.expect_punct("(")
            arguments: List[Variable] = []
            if not self.stream.at_punct(")"):
                arguments.append(Variable(str(self.stream.expect("IDENT").value)))
                while self.stream.accept_punct(","):
                    arguments.append(Variable(str(self.stream.expect("IDENT").value)))
            self.stream.expect_punct(")")
            return ExistentialBinding(variable, functor, tuple(arguments))
        return ExistentialBinding(variable)

    # ------------------------------------------------------------------
    # Expressions (MetaLog convention: bare identifiers are variables)
    # ------------------------------------------------------------------
    def assignment_or_condition(self):
        if (
            self.stream.at("IDENT")
            and self.stream.peek().kind == "PUNCT"
            and self.stream.peek().value == "="
            and str(self.stream.current.value) not in ("true", "false")
        ):
            target = Variable(str(self.stream.advance().value))
            self.stream.expect_punct("=")
            return Assignment(target, self.expression())
        left = self.expression()
        token = self.stream.current
        if token.kind == "PUNCT" and token.value in _COMPARISONS:
            op = str(self.stream.advance().value)
            return Condition(op, left, self.expression())
        raise self.stream.error("expected a condition or an assignment")

    def expression(self):
        left = self._mul_expression()
        while self.stream.at("PUNCT") and self.stream.current.value in ("+", "-"):
            op = str(self.stream.advance().value)
            left = BinOp(op, left, self._mul_expression())
        return left

    def _mul_expression(self):
        left = self._primary_expression()
        while self.stream.at("PUNCT") and self.stream.current.value in ("*", "/", "%"):
            op = str(self.stream.advance().value)
            left = BinOp(op, left, self._primary_expression())
        return left

    def _primary_expression(self):
        token = self.stream.current
        if token.kind == "PUNCT" and token.value == "(":
            self.stream.advance()
            inner = self.expression()
            self.stream.expect_punct(")")
            return inner
        if token.kind == "PUNCT" and token.value == "-":
            self.stream.advance()
            return BinOp("-", TermExpr(0), self._primary_expression())
        if token.kind in ("STRING", "NUMBER"):
            self.stream.advance()
            return TermExpr(token.value)
        if token.kind == "IDENT":
            name = str(token.value)
            follows_paren = (
                self.stream.peek().kind == "PUNCT" and self.stream.peek().value == "("
            )
            if follows_paren and name in _FUNCTION_NAMES:
                self.stream.advance()
                if name in AGGREGATE_FUNCTIONS:
                    return self._aggregate_call(name)
                return self._function_call(name)
            self.stream.advance()
            if name == "true":
                return TermExpr(True)
            if name == "false":
                return TermExpr(False)
            return TermExpr(Variable(name))
        raise self.stream.error(f"expected an expression, found {token.value!r}")

    def _function_call(self, name: str) -> FunctionCall:
        self.stream.expect_punct("(")
        arguments: List[Any] = []
        if not self.stream.at_punct(")"):
            arguments.append(self.expression())
            while self.stream.accept_punct(","):
                arguments.append(self.expression())
        self.stream.expect_punct(")")
        return FunctionCall(name, tuple(arguments))

    def _aggregate_call(self, name: str) -> AggregateCall:
        self.stream.expect_punct("(")
        value = self.expression()
        contributors: Tuple[Variable, ...] = ()
        if self.stream.accept_punct(","):
            self.stream.expect_punct("<")
            names = [self._contributor_name(name)]
            while self.stream.accept_punct(","):
                names.append(self._contributor_name(name))
            self.stream.expect_punct(">")
            contributors = tuple(Variable(n) for n in names)
        self.stream.expect_punct(")")
        return AggregateCall(name, value, contributors)

    def _contributor_name(self, aggregate: str) -> str:
        """One contributor in ``<z, ...>`` — must name a variable.

        In MetaLog every bare identifier is a variable, so the only
        non-variable spellings an IDENT token can carry are the boolean
        constants; coercing those into variables would silently change
        the aggregate's grouping.
        """
        token = self.stream.expect("IDENT")
        name = str(token.value)
        if name in ("true", "false"):
            raise self.stream.error(
                f"contributor {name!r} in {aggregate}(...) is not a variable"
            )
        return name
