"""MetaLog: the KGModel reasoning language, and the MTV compiler.

MetaLog (Section 4 of the paper) combines Warded Datalog± with property-
graph pattern matching.  Parse programs with :func:`parse_metalog`,
compile them to Vadalog with :func:`compile_metalog`, or run the full
pipeline over a property graph with :func:`run_on_graph`.
"""

from repro.metalog.analysis import GraphCatalog, is_recursive, validate
from repro.metalog.ast import (
    EdgeAtom,
    ExistentialBinding,
    GraphPattern,
    MetaProgram,
    MetaRule,
    NegatedPattern,
    NodeAtom,
    PathAlt,
    PathEdge,
    PathInverse,
    PathSeq,
    PathStar,
)
from repro.metalog.mtv import (
    CompiledMetaLog,
    MaterializationOutcome,
    compile_metalog,
    graph_to_database,
    invert_path,
    materialize_into_graph,
    run_on_graph,
)
from repro.metalog.parser import parse_metalog, parse_metalog_rule

__all__ = [
    "GraphCatalog",
    "is_recursive",
    "validate",
    "EdgeAtom",
    "ExistentialBinding",
    "GraphPattern",
    "MetaProgram",
    "MetaRule",
    "NegatedPattern",
    "NodeAtom",
    "PathAlt",
    "PathEdge",
    "PathInverse",
    "PathSeq",
    "PathStar",
    "CompiledMetaLog",
    "MaterializationOutcome",
    "compile_metalog",
    "graph_to_database",
    "invert_path",
    "materialize_into_graph",
    "run_on_graph",
    "parse_metalog",
    "parse_metalog_rule",
]
