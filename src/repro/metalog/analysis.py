"""Static analysis of MetaLog programs and the property-graph catalog.

The MTV translation (Section 4) maps PG node/edge atoms to relational
atoms with one position per property.  That requires agreeing, per label,
on an ordered list of property names — the *catalog*.  The catalog can be
built from a property graph (scanning labels), from a super-schema (the
declared attributes), or extended from the program text itself (labels
and attributes the rules mention).

The analysis functions implement the paper's syntactic side conditions:

- transitive closure (``*``) "is allowed only if the program Sigma is
  non-recursive, i.e., the dependency graph of rules is acyclic";
- which labels are intensional (derived by some head) — used both by the
  Algorithm 2 view generation (Section 6) and by the GSL rendering of
  dashed graphemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Set, Tuple

from repro.errors import MetaLogError
from repro.graph.property_graph import PropertyGraph
from repro.metalog.ast import (
    EdgeAtom,
    GraphPattern,
    MetaProgram,
    MetaRule,
    NodeAtom,
    PathAlt,
    PathEdge,
    PathExpr,
    PathInverse,
    PathSeq,
    PathStar,
)


@dataclass
class GraphCatalog:
    """Ordered property lists per node/edge label.

    ``node_properties[label]`` is the ordered list of property names whose
    values fill positions ``1..n`` of the relational facts ``label(oid,
    v1, ..., vn)``; edges use ``label(oid, src, tgt, v1, ..., vm)``.
    """

    node_properties: Dict[str, List[str]] = field(default_factory=dict)
    edge_properties: Dict[str, List[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: PropertyGraph) -> "GraphCatalog":
        """Scan a property graph and collect properties per label."""
        catalog = cls()
        for node in graph.nodes():
            if node.label is not None:
                catalog.extend_node(node.label, node.properties.keys())
        for edge in graph.edges():
            if edge.label is not None:
                catalog.extend_edge(edge.label, edge.properties.keys())
        # Deterministic order regardless of insertion order.
        for names in catalog.node_properties.values():
            names.sort()
        for names in catalog.edge_properties.values():
            names.sort()
        return catalog

    def extend_node(self, label: str, names) -> None:
        """Register (append) node properties, preserving existing order."""
        known = self.node_properties.setdefault(label, [])
        for name in names:
            if name not in known:
                known.append(name)

    def extend_edge(self, label: str, names) -> None:
        """Register (append) edge properties, preserving existing order."""
        known = self.edge_properties.setdefault(label, [])
        for name in names:
            if name not in known:
                known.append(name)

    def extend_from_program(self, program: MetaProgram) -> None:
        """Make sure every label/attribute the program mentions is known."""
        for rule in program.rules:
            body_patterns = list(rule.body_patterns())
            body_patterns.extend(n.pattern for n in rule.negated_patterns())
            for pattern in body_patterns + list(rule.head):
                for element in pattern.elements:
                    if isinstance(element, NodeAtom):
                        if element.label:
                            self.extend_node(
                                element.label, (n for n, _ in element.attributes)
                            )
                    else:
                        for edge in _path_edges(element):
                            if edge.label:
                                self.extend_edge(
                                    edge.label, (n for n, _ in edge.attributes)
                                )

    # ------------------------------------------------------------------
    def node_arity(self, label: str) -> int:
        """Relational arity of a node label: oid + properties."""
        return 1 + len(self.node_properties.get(label, []))

    def edge_arity(self, label: str) -> int:
        """Relational arity of an edge label: oid + src + tgt + properties."""
        return 3 + len(self.edge_properties.get(label, []))

    def node_position(self, label: str, attribute: str) -> int:
        """Position of ``attribute`` in the node facts of ``label``."""
        try:
            return 1 + self.node_properties[label].index(attribute)
        except (KeyError, ValueError):
            raise MetaLogError(
                f"unknown attribute {attribute!r} of node label {label!r}"
            ) from None

    def edge_position(self, label: str, attribute: str) -> int:
        """Position of ``attribute`` in the edge facts of ``label``."""
        try:
            return 3 + self.edge_properties[label].index(attribute)
        except (KeyError, ValueError):
            raise MetaLogError(
                f"unknown attribute {attribute!r} of edge label {label!r}"
            ) from None

    def merge(self, other: "GraphCatalog") -> None:
        for label, names in other.node_properties.items():
            self.extend_node(label, names)
        for label, names in other.edge_properties.items():
            self.extend_edge(label, names)


def _path_edges(path: PathExpr) -> List[EdgeAtom]:
    if isinstance(path, PathEdge):
        return [path.edge]
    if isinstance(path, PathSeq):
        return [e for part in path.parts for e in _path_edges(part)]
    if isinstance(path, PathAlt):
        return [e for option in path.options for e in _path_edges(option)]
    if isinstance(path, (PathStar, PathInverse)):
        return _path_edges(path.inner)
    return []


# ---------------------------------------------------------------------------
# Program-level analysis
# ---------------------------------------------------------------------------


#: Attributes whose constant values discriminate "the same label, but a
#: different schema/instance" — the mapping programs of Section 5 read
#: constructs of schema 123 and write constructs of the target schema, so
#: a naive label-level dependency graph would report spurious recursion.
_SELECTOR_ATTRIBUTES = ("schemaOID", "instanceOID")

LabelKey = Tuple[str, Any]


def _selector_of(attributes) -> Any:
    for name, term in attributes:
        if name in _SELECTOR_ATTRIBUTES and not hasattr(term, "name"):
            return term  # a constant selector
    return None


def _keys_overlap(a: LabelKey, b: LabelKey) -> bool:
    """Two (label, selector) keys may describe the same facts."""
    if a[0] != b[0]:
        return False
    return a[1] is None or b[1] is None or a[1] == b[1]


def _rule_keys(rule: MetaRule) -> Tuple[Set[LabelKey], Set[LabelKey]]:
    """(body keys, head keys) of a rule, selector-aware."""
    body: Set[LabelKey] = set()
    head: Set[LabelKey] = set()
    body_patterns = list(rule.body_patterns())
    body_patterns.extend(n.pattern for n in rule.negated_patterns())
    for target, patterns in ((body, body_patterns), (head, rule.head)):
        for pattern in patterns:
            for element in pattern.elements:
                if isinstance(element, NodeAtom):
                    if element.label:
                        target.add((element.label, _selector_of(element.attributes)))
                else:
                    for edge in _path_edges(element):
                        if edge.label:
                            target.add((edge.label, _selector_of(edge.attributes)))
    return body, head


def label_dependency_edges(program: MetaProgram) -> Set[Tuple[str, str]]:
    """Edges body-label -> head-label of the rule dependency graph
    (selector-blind; kept for coarse summaries)."""
    edges: Set[Tuple[str, str]] = set()
    for rule in program.rules:
        sources = rule.body_node_labels() | rule.body_edge_labels()
        targets = rule.head_node_labels() | rule.head_edge_labels()
        for source in sources:
            for target in targets:
                edges.add((source, target))
    return edges


def is_recursive(program: MetaProgram) -> bool:
    """True when the selector-aware rule dependency graph has a cycle.

    Keys are (label, constant schemaOID/instanceOID selector): a head fact
    feeds a body atom only when the keys may overlap, which keeps the
    Section 5 mapping programs (reading schema ``123``, writing schema
    ``"123-"``) correctly classified as non-recursive.
    """
    rule_keys = [_rule_keys(rule) for rule in program.rules]
    nodes: Set[LabelKey] = set()
    for body, head in rule_keys:
        nodes |= body | head
    adjacency: Dict[LabelKey, Set[LabelKey]] = {n: set() for n in nodes}
    # Intra-rule: every body key feeds every head key.
    for body, head in rule_keys:
        for b in body:
            adjacency[b] |= head
    # Inter-rule: a head key feeds any overlapping body key.
    all_body: Set[LabelKey] = set()
    for body, _ in rule_keys:
        all_body |= body
    for _, head in rule_keys:
        for h in head:
            for b in all_body:
                if h != b and _keys_overlap(h, b):
                    adjacency[h].add(b)

    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[str, int] = {}

    def has_cycle(start: str) -> bool:
        stack = [(start, iter(adjacency.get(start, ())))]
        color[start] = GRAY
        while stack:
            node, successors = stack[-1]
            advanced = False
            for target in successors:
                state = color.get(target, WHITE)
                if state == GRAY:
                    return True
                if state == WHITE:
                    color[target] = GRAY
                    stack.append((target, iter(adjacency.get(target, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
        return False

    for node in list(adjacency):
        if color.get(node, WHITE) == WHITE and has_cycle(node):
            return True
    return False


def validate(program: MetaProgram) -> None:
    """Raise :class:`MetaLogError` on the paper's syntactic side conditions.

    Transitive closure via Kleene star is only allowed when the program is
    non-recursive (Section 4), which guarantees the compiled program is
    Piecewise Linear Datalog±, a subset of Warded Datalog±.
    """
    has_star = any(rule.contains_star() for rule in program.rules)
    if has_star and is_recursive(program):
        raise MetaLogError(
            "Kleene star is only allowed in non-recursive MetaLog programs "
            "(Section 4 decidability condition)"
        )
    for rule in program.rules:
        for pattern in rule.head:
            for path in pattern.paths:
                if not isinstance(path, PathEdge):
                    raise MetaLogError(
                        f"head path patterns must be simple edge atoms: {rule}"
                    )
        bound = rule.positive_variables()
        declared = {binding.variable for binding in rule.existentials}
        for variable in rule.head_variables():
            if variable in bound or variable in declared:
                continue
            # Implicit existentials are allowed only for atom identifiers
            # (OIDs); attribute variables must be bound.
            if not _is_identifier_variable(rule, variable):
                raise MetaLogError(
                    f"head variable {variable.name!r} of rule {rule} is "
                    "neither bound in the body nor existentially declared"
                )
        for negated in rule.negated_patterns():
            unbound = {
                v for v in negated.variables()
                if v not in bound and v.name != "_"
            }
            if unbound:
                raise MetaLogError(
                    f"unsafe negation in {rule}: variables "
                    f"{sorted(v.name for v in unbound)} are not bound by a "
                    "positive pattern"
                )
        for binding in rule.existentials:
            for argument in binding.arguments:
                if argument not in bound:
                    raise MetaLogError(
                        f"Skolem argument {argument.name!r} of rule {rule} "
                        "is not bound in the body"
                    )


def _is_identifier_variable(rule: MetaRule, variable) -> bool:
    for pattern in rule.head:
        for element in pattern.elements:
            if isinstance(element, NodeAtom) and element.variable == variable:
                return True
            if isinstance(element, PathEdge) and element.edge.variable == variable:
                return True
    return False
