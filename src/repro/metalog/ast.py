"""Abstract syntax of MetaLog.

Section 4 of the paper: a MetaLog program is a set of existential rules
``phi(x, y) -> exists z psi(x, z)`` where ``phi`` is a conjunction of PG
node atoms, path patterns, conditions, and expressions, and ``psi`` is a
conjunction of PG node atoms and path patterns.

- A *PG node atom* ``(x: L; A1: t1, ...)`` selects ``L``-labeled nodes,
  binding the node OID to ``x`` and properties to terms.
- A *PG edge atom* ``[x: L; A1: t1, ...]`` selects ``L``-labeled edges.
- A *path pattern* ``x R y`` is a regular expression ``R`` over edge atoms
  with concatenation (``.``), alternation (``|``), transitive closure
  (``*``), and the inverse operator (``-``), interpreted over semi-paths.
- Conditions and expressions (including the ``sum(w, <z>)`` aggregations)
  are shared with the Vadalog AST.

A *graph pattern* in this implementation is the alternating chain
``node (path node)*`` as written in the paper's examples, e.g.
``(x: Business)[:CONTROLS](z: Business)[:OWNS; percentage: w](y: Business)``.

Existential head variables may be bound to linker Skolem functors
(Section 4), written ``exists f = skE(e, c) : ...`` in the concrete
syntax.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.vadalog.ast import Assignment, Condition  # reused verbatim
from repro.vadalog.terms import Variable, is_variable

# ---------------------------------------------------------------------------
# PG atoms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeAtom:
    """``(x: L; A1: t1, ...)`` — or bare ``(x)`` to re-reference a node."""

    variable: Optional[Variable]
    label: Optional[str]
    attributes: Tuple[Tuple[str, Any], ...] = ()

    def variables(self) -> Set[Variable]:
        result = {self.variable} if self.variable is not None else set()
        for _, term in self.attributes:
            if is_variable(term):
                result.add(term)
        return {v for v in result if v.name != "_"}

    def __str__(self) -> str:
        return _atom_str("(", ")", self.variable, self.label, self.attributes)


@dataclass(frozen=True)
class EdgeAtom:
    """``[x: L; A1: t1, ...]`` with optional postfix ``-`` (inverse)."""

    variable: Optional[Variable]
    label: Optional[str]
    attributes: Tuple[Tuple[str, Any], ...] = ()
    inverted: bool = False

    def variables(self) -> Set[Variable]:
        result = {self.variable} if self.variable is not None else set()
        for _, term in self.attributes:
            if is_variable(term):
                result.add(term)
        return {v for v in result if v.name != "_"}

    def invert(self) -> "EdgeAtom":
        return EdgeAtom(self.variable, self.label, self.attributes, not self.inverted)

    def __str__(self) -> str:
        text = _atom_str("[", "]", self.variable, self.label, self.attributes)
        return text + ("-" if self.inverted else "")


# ---------------------------------------------------------------------------
# Path expressions (regular expressions over the edge-atom alphabet)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PathEdge:
    """An atomic path: one edge atom traversal."""

    edge: EdgeAtom

    def variables(self) -> Set[Variable]:
        return self.edge.variables()

    def __str__(self) -> str:
        return str(self.edge)


@dataclass(frozen=True)
class PathSeq:
    """Concatenation ``S . T . ...``."""

    parts: Tuple["PathExpr", ...]

    def variables(self) -> Set[Variable]:
        result: Set[Variable] = set()
        for part in self.parts:
            result |= part.variables()
        return result

    def __str__(self) -> str:
        return " . ".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class PathAlt:
    """Alternation ``(S | T | ...)``."""

    options: Tuple["PathExpr", ...]

    def variables(self) -> Set[Variable]:
        result: Set[Variable] = set()
        for option in self.options:
            result |= option.variables()
        return result

    def __str__(self) -> str:
        return "(" + " | ".join(str(o) for o in self.options) + ")"


@dataclass(frozen=True)
class PathStar:
    """Transitive closure ``(S)*``.

    Following the paper's own translation (Example 4.4), the closure is
    interpreted as *one or more* repetitions: the generated beta rules
    have no zero-step base case.
    """

    inner: "PathExpr"

    def variables(self) -> Set[Variable]:
        return self.inner.variables()

    def __str__(self) -> str:
        return f"({self.inner})*"


@dataclass(frozen=True)
class PathInverse:
    """Inverse ``(S)-`` of a composite path expression."""

    inner: "PathExpr"

    def variables(self) -> Set[Variable]:
        return self.inner.variables()

    def __str__(self) -> str:
        return f"({self.inner})-"


PathExpr = Union[PathEdge, PathSeq, PathAlt, PathStar, PathInverse]


def path_contains_star(path: PathExpr) -> bool:
    """True when a Kleene star occurs anywhere in the expression."""
    if isinstance(path, PathStar):
        return True
    if isinstance(path, PathEdge):
        return False
    if isinstance(path, PathSeq):
        return any(path_contains_star(p) for p in path.parts)
    if isinstance(path, PathAlt):
        return any(path_contains_star(o) for o in path.options)
    if isinstance(path, PathInverse):
        return path_contains_star(path.inner)
    return False


def path_edge_labels(path: PathExpr) -> Set[str]:
    """All edge labels mentioned by the expression."""
    if isinstance(path, PathEdge):
        return {path.edge.label} if path.edge.label else set()
    if isinstance(path, PathSeq):
        result: Set[str] = set()
        for part in path.parts:
            result |= path_edge_labels(part)
        return result
    if isinstance(path, PathAlt):
        result = set()
        for option in path.options:
            result |= path_edge_labels(option)
        return result
    if isinstance(path, (PathStar, PathInverse)):
        return path_edge_labels(path.inner)
    return set()


# ---------------------------------------------------------------------------
# Graph patterns and rules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GraphPattern:
    """An alternating chain ``node (path node)*``.

    ``elements`` always starts and ends with a :class:`NodeAtom`; odd
    positions hold path expressions.  A single-node pattern is allowed
    (a node selection with no navigation).
    """

    elements: Tuple[Any, ...]

    def __post_init__(self):
        if not self.elements or not isinstance(self.elements[0], NodeAtom):
            raise ValueError("graph pattern must start with a node atom")

    @property
    def node_atoms(self) -> List[NodeAtom]:
        return [e for e in self.elements if isinstance(e, NodeAtom)]

    @property
    def paths(self) -> List[PathExpr]:
        return [e for e in self.elements if not isinstance(e, NodeAtom)]

    def hops(self) -> List[Tuple[NodeAtom, PathExpr, NodeAtom]]:
        """The (source node, path, target node) triples of the chain."""
        result = []
        for i in range(0, len(self.elements) - 2, 2):
            result.append(
                (self.elements[i], self.elements[i + 1], self.elements[i + 2])
            )
        return result

    def variables(self) -> Set[Variable]:
        result: Set[Variable] = set()
        for element in self.elements:
            result |= element.variables()
        return result

    def contains_star(self) -> bool:
        return any(path_contains_star(p) for p in self.paths)

    def __str__(self) -> str:
        return "".join(
            (" " + str(e) + " ") if not isinstance(e, NodeAtom) else str(e)
            for e in self.elements
        )


@dataclass(frozen=True)
class NegatedPattern:
    """Stratified negation of a simple pattern: ``not (x)[:R](y)``.

    The desiderata of Section 1 call for Datalog "with a mild form of
    negation"; MetaLog realizes it as negation over a *single* node atom
    or a *single* edge between bound endpoints (a negated conjunction is
    not expressible as one negated literal and is rejected by MTV).
    """

    pattern: GraphPattern

    def variables(self) -> Set[Variable]:
        return self.pattern.variables()

    def __str__(self) -> str:
        return f"not {self.pattern}"


BodyElement = Union[GraphPattern, NegatedPattern, Condition, Assignment]


@dataclass(frozen=True)
class ExistentialBinding:
    """One existentially quantified head variable.

    ``functor`` / ``arguments`` are set when the variable is bound to a
    linker Skolem functor (``exists f = skE(e, c)``); otherwise the chase
    invents a fresh labeled null.
    """

    variable: Variable
    functor: Optional[str] = None
    arguments: Tuple[Variable, ...] = ()

    def __str__(self) -> str:
        if self.functor is None:
            return self.variable.name
        args = ", ".join(a.name for a in self.arguments)
        return f"{self.variable.name} = {self.functor}({args})"


@dataclass(frozen=True)
class MetaRule:
    """One MetaLog rule."""

    body: Tuple[BodyElement, ...]
    head: Tuple[GraphPattern, ...]
    existentials: Tuple[ExistentialBinding, ...] = ()
    label: Optional[str] = None

    def body_patterns(self) -> List[GraphPattern]:
        return [e for e in self.body if isinstance(e, GraphPattern)]

    def negated_patterns(self) -> List["NegatedPattern"]:
        return [e for e in self.body if isinstance(e, NegatedPattern)]

    def positive_variables(self) -> Set[Variable]:
        """Variables bound by positive body elements (safe bindings)."""
        result: Set[Variable] = set()
        for element in self.body:
            if not isinstance(element, NegatedPattern):
                result |= element.variables()
        return result

    def conditions(self) -> List[Condition]:
        return [e for e in self.body if isinstance(e, Condition)]

    def assignments(self) -> List[Assignment]:
        return [e for e in self.body if isinstance(e, Assignment)]

    def body_variables(self) -> Set[Variable]:
        result: Set[Variable] = set()
        for element in self.body:
            result |= element.variables()
        return result

    def head_variables(self) -> Set[Variable]:
        result: Set[Variable] = set()
        for pattern in self.head:
            result |= pattern.variables()
        return result

    def _all_body_patterns(self) -> List[GraphPattern]:
        patterns = list(self.body_patterns())
        patterns.extend(n.pattern for n in self.negated_patterns())
        return patterns

    def body_node_labels(self) -> Set[str]:
        result: Set[str] = set()
        for pattern in self._all_body_patterns():
            for atom in pattern.node_atoms:
                if atom.label:
                    result.add(atom.label)
        return result

    def body_edge_labels(self) -> Set[str]:
        result: Set[str] = set()
        for pattern in self._all_body_patterns():
            for path in pattern.paths:
                result |= path_edge_labels(path)
        return result

    def head_node_labels(self) -> Set[str]:
        result: Set[str] = set()
        for pattern in self.head:
            for atom in pattern.node_atoms:
                if atom.label:
                    result.add(atom.label)
        return result

    def head_edge_labels(self) -> Set[str]:
        result: Set[str] = set()
        for pattern in self.head:
            for path in pattern.paths:
                result |= path_edge_labels(path)
        return result

    def contains_star(self) -> bool:
        return any(p.contains_star() for p in self.body_patterns()) or any(
            p.contains_star() for p in self.head
        )

    def __str__(self) -> str:
        body = ", ".join(str(e) for e in self.body)
        head = ", ".join(str(p) for p in self.head)
        if self.existentials:
            quantified = ", ".join(str(e) for e in self.existentials)
            head = f"exists {quantified} : {head}"
        return f"{body} -> {head}."


@dataclass
class MetaProgram:
    """A MetaLog program: rules plus (pass-through) annotations."""

    rules: List[MetaRule] = field(default_factory=list)
    annotations: List[Tuple[str, Tuple[Any, ...]]] = field(default_factory=list)

    def node_labels(self) -> Set[str]:
        result: Set[str] = set()
        for rule in self.rules:
            result |= rule.body_node_labels() | rule.head_node_labels()
        return result

    def edge_labels(self) -> Set[str]:
        result: Set[str] = set()
        for rule in self.rules:
            result |= rule.body_edge_labels() | rule.head_edge_labels()
        return result

    def derived_node_labels(self) -> Set[str]:
        return {label for rule in self.rules for label in rule.head_node_labels()}

    def derived_edge_labels(self) -> Set[str]:
        return {label for rule in self.rules for label in rule.head_edge_labels()}

    def extend(self, other: "MetaProgram") -> "MetaProgram":
        return MetaProgram(
            rules=self.rules + other.rules,
            annotations=self.annotations + other.annotations,
        )

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)


def _atom_str(
    open_ch: str,
    close_ch: str,
    variable: Optional[Variable],
    label: Optional[str],
    attributes: Tuple[Tuple[str, Any], ...],
) -> str:
    inner = ""
    if variable is not None:
        inner += variable.name
    if label is not None:
        inner += f": {label}"
    if attributes:
        attrs = ", ".join(
            f"{name}: {_attr_term_str(term)}" for name, term in attributes
        )
        inner += f"; {attrs}"
    return f"{open_ch}{inner}{close_ch}"


def _attr_term_str(term: Any) -> str:
    """Render an attribute term in re-parseable concrete syntax."""
    if is_variable(term):
        return term.name
    if isinstance(term, bool):
        return "true" if term else "false"
    if isinstance(term, str):
        escaped = term.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return repr(term)
