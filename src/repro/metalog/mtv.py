"""MTV — the MetaLog to Vadalog Translator.

Implements the three-phase translation of Section 4:

1. **PG-to-relational mapping.**  ``L``-labeled nodes become facts
   ``L(oid, v1, ..., vn)`` (one position per catalog property);
   ``Le``-labeled edges become ``Le(oid, src, tgt, v1, ..., vm)``.
   :func:`graph_to_database` performs this extraction, and the compiler
   emits the paper's ``@input`` annotations documenting it (Example 4.4).
2. **PG node atoms to relational atoms.**  ``(x: L; K)`` becomes
   ``L(x, ...)`` with named terms placed at their catalog positions and
   anonymous variables elsewhere.
3. **Resolution of path patterns**, inductively on the regular expression
   (Section 4): edge atoms become edge-relation atoms; concatenation
   threads fresh intermediate node variables; alternation introduces a
   fresh ``alpha`` predicate with one defining rule per branch (carrying
   the exported variables, the paper's ``z`` tuple); the inverse operator
   swaps endpoints; Kleene star introduces a fresh ``beta`` predicate
   with the two recursive rules of Example 4.4 (so ``*`` means
   one-or-more, exactly as in the paper's own translation).

Existential head variables compile to Vadalog existentials; linker Skolem
bindings compile to :class:`~repro.vadalog.ast.SkolemTerm` applications.

:func:`run_on_graph` packages the full pipeline: extract the input facts
from a :class:`~repro.graph.property_graph.PropertyGraph`, run the chase,
and materialize the derived nodes/edges back into the graph.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import MetaLogError, TranslationError
from repro.graph.property_graph import PropertyGraph
from repro.obs.tracer import NullTracer, Tracer
from repro.metalog.analysis import GraphCatalog, validate
from repro.metalog.ast import (
    EdgeAtom,
    GraphPattern,
    MetaProgram,
    MetaRule,
    NegatedPattern,
    NodeAtom,
    PathAlt,
    PathEdge,
    PathExpr,
    PathInverse,
    PathSeq,
    PathStar,
)
from repro.vadalog.ast import Annotation, Atom, NegatedAtom, Program, Rule, SkolemTerm
from repro.vadalog.database import Database
from repro.vadalog.engine import Engine, EvaluationResult
from repro.vadalog.terms import ANONYMOUS, Variable, fact_sort_key, is_variable


@dataclass
class CompiledMetaLog:
    """Result of :func:`compile_metalog`."""

    program: Program
    catalog: GraphCatalog
    input_node_labels: Set[str] = field(default_factory=set)
    input_edge_labels: Set[str] = field(default_factory=set)
    derived_node_labels: Set[str] = field(default_factory=set)
    derived_edge_labels: Set[str] = field(default_factory=set)
    auxiliary_predicates: Set[str] = field(default_factory=set)
    #: Per-label property names some head atom actually mentions.  The
    #: write-back uses this to tell a *derived* ``None`` (the program
    #: mentioned the attribute — clear any stale value) from a merely
    #: *absent* one (the compiler's positional placeholder — leave the
    #: existing property alone).
    head_properties: Dict[str, Set[str]] = field(default_factory=dict)


def invert_path(path: PathExpr) -> PathExpr:
    """Structural inverse of a path expression (pushes ``-`` down)."""
    if isinstance(path, PathEdge):
        return PathEdge(path.edge.invert())
    if isinstance(path, PathSeq):
        return PathSeq(tuple(invert_path(p) for p in reversed(path.parts)))
    if isinstance(path, PathAlt):
        return PathAlt(tuple(invert_path(o) for o in path.options))
    if isinstance(path, PathStar):
        return PathStar(invert_path(path.inner))
    if isinstance(path, PathInverse):
        return path.inner
    raise TranslationError(f"unsupported path expression {path!r}")


class _Compiler:
    """Compiles one MetaLog program; collects generated alpha/beta rules."""

    def __init__(self, catalog: GraphCatalog):
        self.catalog = catalog
        self._fresh_vars = itertools.count(1)
        self._fresh_preds = itertools.count(1)
        self.extra_rules: List[Rule] = []
        self.auxiliary: Set[str] = set()
        # label -> property names mentioned by some head atom (see
        # CompiledMetaLog.head_properties).
        self.head_properties: Dict[str, Set[str]] = {}

    def fresh_variable(self, hint: str = "v") -> Variable:
        return Variable(f"_{hint}{next(self._fresh_vars)}")

    def fresh_predicate(self, hint: str) -> str:
        return f"{hint}_{next(self._fresh_preds)}"

    # ------------------------------------------------------------------
    def compile_rule(self, rule: MetaRule) -> Rule:
        node_vars: Dict[int, Variable] = {}

        def node_var(atom: NodeAtom) -> Variable:
            if atom.variable is not None and atom.variable.name != "_":
                return atom.variable
            key = id(atom)
            if key not in node_vars:
                node_vars[key] = self.fresh_variable("n")
            return node_vars[key]

        # Leaf variable sets: each top-level path is one leaf, every other
        # rule element another.  For a path p, its "outside" variables are
        # those appearing in any other leaf — they must be exported by the
        # alpha predicates generated under p.
        leaves: List[Tuple[int, Set[Variable]]] = []
        for element in rule.body:
            if isinstance(element, GraphPattern):
                for atom in element.node_atoms:
                    leaves.append((id(atom), atom.variables() | {node_var(atom)}))
                for _, path, _ in element.hops():
                    leaves.append((id(path), path.variables()))
            else:
                leaves.append((id(element), element.variables()))
        for pattern in rule.head:
            leaves.append((id(pattern), pattern.variables()))

        def outside_of(path: PathExpr) -> Set[Variable]:
            result: Set[Variable] = set()
            for key, variables in leaves:
                if key != id(path):
                    result |= variables
            return result

        body: List[Any] = []
        for element in rule.body:
            if isinstance(element, GraphPattern):
                for atom in element.node_atoms:
                    literal = self._node_atom_literal(atom, node_var(atom))
                    if literal is not None:
                        body.append(literal)
                for source, path, target in element.hops():
                    body.extend(
                        self._compile_path(
                            path, node_var(source), node_var(target),
                            outside_of(path),
                        )
                    )
            elif isinstance(element, NegatedPattern):
                body.append(self._compile_negated(element, node_var))
            else:
                body.append(element)  # conditions/assignments pass through

        skolem_bindings = {
            binding.variable: SkolemTerm(binding.functor, tuple(binding.arguments))
            for binding in rule.existentials
            if binding.functor is not None
        }

        head: List[Atom] = []
        for pattern in rule.head:
            head.extend(
                self._compile_head_pattern(pattern, node_var, skolem_bindings)
            )
        return Rule(tuple(body), tuple(head), label=rule.label)

    def _compile_negated(self, negated: NegatedPattern, node_var) -> NegatedAtom:
        """Compile ``not <pattern>`` into a single negated atom.

        A negated conjunction is not one literal, so the pattern must be
        either a single labeled node atom or a single edge atom between
        bare (re-referencing) node atoms.
        """
        pattern = negated.pattern
        elements = pattern.elements
        if len(elements) == 1:
            atom = elements[0]
            literal = self._node_atom_literal(atom, node_var(atom))
            if literal is None:
                raise MetaLogError(
                    f"negated node atom must carry a label: {negated}"
                )
            return NegatedAtom(literal)
        if len(elements) == 3 and isinstance(elements[1], PathEdge):
            source, path, target = elements
            if source.label is not None or target.label is not None:
                raise MetaLogError(
                    "negated edge patterns must use bare endpoints bound "
                    f"by positive patterns: {negated}"
                )
            return NegatedAtom(
                self._edge_atom_literal(
                    path.edge, node_var(source), node_var(target)
                )
            )
        raise MetaLogError(
            "a negated pattern must be a single node atom or a single "
            f"edge between bound nodes: {negated}"
        )

    # ------------------------------------------------------------------
    # Atoms (phase 2)
    # ------------------------------------------------------------------
    def _node_atom_literal(self, atom: NodeAtom, oid: Variable) -> Optional[Atom]:
        if atom.label is None:
            if atom.attributes:
                raise MetaLogError(f"node atom {atom} has attributes but no label")
            return None  # bare (x): a pure re-reference, no relational atom
        names = self.catalog.node_properties.get(atom.label, [])
        terms: List[Any] = [oid] + [ANONYMOUS] * len(names)
        for name, term in atom.attributes:
            terms[self.catalog.node_position(atom.label, name)] = term
        return Atom(atom.label, tuple(terms))

    def _edge_atom_literal(
        self, edge: EdgeAtom, source: Variable, target: Variable
    ) -> Atom:
        if edge.label is None:
            raise MetaLogError(f"edge atom {edge} must carry a label")
        if edge.inverted:
            source, target = target, source
        names = self.catalog.edge_properties.get(edge.label, [])
        oid = (
            edge.variable
            if edge.variable is not None and edge.variable.name != "_"
            else ANONYMOUS
        )
        terms: List[Any] = [oid, source, target] + [ANONYMOUS] * len(names)
        for name, term in edge.attributes:
            terms[self.catalog.edge_position(edge.label, name)] = term
        return Atom(edge.label, tuple(terms))

    # ------------------------------------------------------------------
    # Path resolution (phase 3)
    # ------------------------------------------------------------------
    def _compile_path(
        self,
        path: PathExpr,
        source: Variable,
        target: Variable,
        outside: Set[Variable],
    ) -> List[Atom]:
        if isinstance(path, PathEdge):
            return [self._edge_atom_literal(path.edge, source, target)]
        if isinstance(path, PathInverse):
            return self._compile_path(invert_path(path.inner), source, target, outside)
        if isinstance(path, PathSeq):
            literals: List[Atom] = []
            current = source
            for i, part in enumerate(path.parts):
                nxt = target if i == len(path.parts) - 1 else self.fresh_variable("q")
                sibling_vars: Set[Variable] = set()
                for j, other in enumerate(path.parts):
                    if j != i:
                        sibling_vars |= other.variables()
                literals.extend(
                    self._compile_path(part, current, nxt, outside | sibling_vars)
                )
                current = nxt
            return literals
        if isinstance(path, PathAlt):
            return [self._compile_alternation(path, source, target, outside)]
        if isinstance(path, PathStar):
            return [self._compile_star(path, source, target, outside)]
        raise TranslationError(f"unsupported path expression {path!r}")

    def _compile_alternation(
        self,
        path: PathAlt,
        source: Variable,
        target: Variable,
        outside: Set[Variable],
    ) -> Atom:
        # The paper's z tuple: body variables of the branches, except the
        # endpoints, that the rest of the rule needs.
        exported = sorted(path.variables() & outside, key=lambda v: v.name)
        predicate = self.fresh_predicate("alpha")
        self.auxiliary.add(predicate)
        for option in path.options:
            missing = set(exported) - option.variables()
            if missing:
                raise MetaLogError(
                    "alternation branches must bind the same exported "
                    f"variables; branch {option} does not bind "
                    f"{sorted(v.name for v in missing)}"
                )
            h = self.fresh_variable("h")
            q = self.fresh_variable("q")
            body = self._compile_path(option, h, q, outside | {h, q})
            head = Atom(predicate, (h, q) + tuple(exported))
            self.extra_rules.append(Rule(tuple(body), (head,)))
        return Atom(predicate, (source, target) + tuple(exported))

    def _compile_star(
        self,
        path: PathStar,
        source: Variable,
        target: Variable,
        outside: Set[Variable],
    ) -> Atom:
        exported = path.inner.variables() & outside
        if exported:
            raise MetaLogError(
                "variables bound under a Kleene star cannot be used outside "
                f"it: {sorted(v.name for v in exported)}"
            )
        predicate = self.fresh_predicate("beta")
        self.auxiliary.add(predicate)
        # (i)  tau(S_hq)              -> beta(h, q)
        h = self.fresh_variable("h")
        q = self.fresh_variable("q")
        base_body = self._compile_path(path.inner, h, q, set())
        self.extra_rules.append(Rule(tuple(base_body), (Atom(predicate, (h, q)),)))
        # (ii) beta(v, h), tau(S_hq)  -> beta(v, q)
        v = self.fresh_variable("s")
        h2 = self.fresh_variable("h")
        q2 = self.fresh_variable("q")
        step_body = [Atom(predicate, (v, h2))] + self._compile_path(
            path.inner, h2, q2, set()
        )
        self.extra_rules.append(Rule(tuple(step_body), (Atom(predicate, (v, q2)),)))
        return Atom(predicate, (source, target))

    # ------------------------------------------------------------------
    # Head (phase 2 applied to head atoms, plus existentials)
    # ------------------------------------------------------------------
    def _compile_head_pattern(
        self,
        pattern: GraphPattern,
        node_var,
        skolem_bindings: Dict[Variable, SkolemTerm],
    ) -> List[Atom]:
        atoms: List[Atom] = []

        def resolve(term: Any) -> Any:
            if is_variable(term) and term in skolem_bindings:
                return skolem_bindings[term]
            return term

        for atom in pattern.node_atoms:
            if atom.label is None:
                continue  # bare (x) in the head only situates an edge
            names = self.catalog.node_properties.get(atom.label, [])
            terms: List[Any] = [resolve(node_var(atom))] + [None] * len(names)
            if atom.attributes:
                mentioned = self.head_properties.setdefault(atom.label, set())
                for name, term in atom.attributes:
                    terms[self.catalog.node_position(atom.label, name)] = resolve(term)
                    mentioned.add(name)
            atoms.append(Atom(atom.label, tuple(terms)))
        for source, path, target in pattern.hops():
            if not isinstance(path, PathEdge):
                raise MetaLogError(f"head paths must be simple edges: {pattern}")
            edge = path.edge
            src, tgt = node_var(source), node_var(target)
            if edge.inverted:
                src, tgt = tgt, src
            names = self.catalog.edge_properties.get(edge.label, [])
            oid: Any
            if edge.variable is not None and edge.variable.name != "_":
                oid = resolve(edge.variable)
            else:
                oid = self.fresh_variable("e")  # implicit existential OID
            terms = [oid, resolve(src), resolve(tgt)] + [None] * len(names)
            if edge.attributes:
                mentioned = self.head_properties.setdefault(edge.label, set())
                for name, term in edge.attributes:
                    terms[self.catalog.edge_position(edge.label, name)] = resolve(term)
                    mentioned.add(name)
            atoms.append(Atom(edge.label, tuple(terms)))
        return atoms


# ---------------------------------------------------------------------------
# Public compilation entry point
# ---------------------------------------------------------------------------


def compile_metalog(
    program: MetaProgram,
    catalog: Optional[GraphCatalog] = None,
    tracer: Optional[Tracer] = None,
) -> CompiledMetaLog:
    """Compile a MetaLog program into an executable Vadalog program.

    When a tracer is given, each translation phase gets a span:
    ``mtv.analyze`` (validation + catalog extension), ``mtv.compile``
    (phases 2-3: atom mapping and path resolution), and ``mtv.annotate``
    (the ``@input``/``@output`` emission of phase 1's contract).
    """
    tracer = tracer or NullTracer()
    with tracer.span("mtv.analyze", rules=len(program.rules)):
        validate(program)
        catalog = catalog or GraphCatalog()
        catalog.extend_from_program(program)
    compiler = _Compiler(catalog)

    derived_nodes: Set[str] = set()
    derived_edges: Set[str] = set()
    body_nodes: Set[str] = set()
    body_edges: Set[str] = set()
    rules: List[Rule] = []
    with tracer.span("mtv.compile") as compile_span:
        for rule in program.rules:
            rules.append(compiler.compile_rule(rule))
            derived_nodes |= rule.head_node_labels()
            derived_edges |= rule.head_edge_labels()
            body_nodes |= rule.body_node_labels()
            body_edges |= rule.body_edge_labels()
        compile_span.set(
            compiled_rules=len(rules),
            auxiliary_rules=len(compiler.extra_rules),
            auxiliary_predicates=sorted(compiler.auxiliary),
        )

    vadalog_program = Program(rules=rules + compiler.extra_rules)

    # Emit the paper's @input annotations for the base (non-derived)
    # labels, with Cypher-style extraction queries as in Example 4.4.
    with tracer.span("mtv.annotate"):
        for label in sorted(body_nodes - derived_nodes):
            vadalog_program.annotations.append(
                Annotation("input", (label, f"(n:{label}) return n"))
            )
        for label in sorted(body_edges - derived_edges):
            vadalog_program.annotations.append(
                Annotation("input", (label, f"(a)-[e:{label}]->(b) return (e, a, b)"))
            )
        for label in sorted(derived_nodes | derived_edges):
            vadalog_program.annotations.append(Annotation("output", (label,)))

    return CompiledMetaLog(
        program=vadalog_program,
        catalog=catalog,
        input_node_labels=body_nodes,
        input_edge_labels=body_edges,
        derived_node_labels=derived_nodes,
        derived_edge_labels=derived_edges,
        auxiliary_predicates=compiler.auxiliary,
        head_properties=compiler.head_properties,
    )


# ---------------------------------------------------------------------------
# Phase 1: PG-to-relational extraction, and the way back
# ---------------------------------------------------------------------------


def graph_to_database(
    graph: PropertyGraph,
    catalog: GraphCatalog,
    node_labels: Optional[Iterable[str]] = None,
    edge_labels: Optional[Iterable[str]] = None,
    columnar: bool = False,
    bulk: bool = True,
) -> Database:
    """Extract a relational instance from a property graph (phase 1).

    ``columnar=True`` loads straight into dictionary-encoded columnar
    relations, so an engine run with the (default) columnar backend
    skips the tuple-to-columnar conversion copy.

    Labels are processed in sorted order (relation creation order — and
    with it interner code assignment — used to follow nondeterministic
    ``set`` iteration), and rows within a label follow the graph's node/
    edge insertion order; the whole extraction is reproducible across
    runs.

    ``bulk=True`` (the default) moves whole labels at a time: one
    :meth:`~repro.graph.property_graph.PropertyGraph.nodes_table` /
    ``edges_table`` call per label feeds the backend's column-wise
    insert, so the hot path never builds a per-node property tuple in
    Python.  ``bulk=False`` keeps the per-object loop as a differential
    oracle.

    A columnar source graph shares its value dictionary with the
    extraction database (both sides are append-only), so OIDs and
    property values are interned once instead of twice.
    """
    database = Database(
        columnar=columnar,
        interner=getattr(graph, "interner", None) if columnar else None,
    )
    node_labels = (
        list(node_labels) if node_labels is not None
        else list(catalog.node_properties)
    )
    edge_labels = (
        list(edge_labels) if edge_labels is not None
        else list(catalog.edge_properties)
    )
    for label in sorted(node_labels):
        names = catalog.node_properties.get(label, [])
        relation = database.relation(label)
        relation.arity = 1 + len(names)
        if bulk:
            ids, columns = graph.nodes_table(label, names)
            if ids:
                database.add_columns(label, [ids, *columns])
        else:
            relation.add_many(
                (node.id, *(node.properties.get(n) for n in names))
                for node in graph.nodes(label)
            )
    for label in sorted(edge_labels):
        names = catalog.edge_properties.get(label, [])
        relation = database.relation(label)
        relation.arity = 3 + len(names)
        if bulk:
            ids, sources, targets, columns = graph.edges_table(label, names)
            if ids:
                database.add_columns(label, [ids, sources, targets, *columns])
        else:
            relation.add_many(
                (edge.id, edge.source, edge.target,
                 *(edge.properties.get(n) for n in names))
                for edge in graph.edges(label)
            )
    return database


@dataclass
class MaterializationOutcome:
    """Result of :func:`run_on_graph`."""

    graph: PropertyGraph
    result: EvaluationResult
    compiled: CompiledMetaLog
    new_nodes: int = 0
    new_edges: int = 0


def _apply_node_update(
    graph: PropertyGraph,
    oid: Any,
    names: List[str],
    values: Tuple[Any, ...],
    clearable: Iterable[str],
) -> None:
    """Fold one derived node fact into an existing node's properties.

    Non-``None`` values overwrite; a ``None`` at a *head-mentioned*
    position clears the property (the program derived "no value", so a
    stale value from a prior materialization must not survive), while a
    ``None`` at an unmentioned position is merely the compiler's
    placeholder and leaves the property untouched.
    """
    properties = graph.node(oid).properties
    for name, value in zip(names, values):
        if value is not None:
            properties[name] = value
        elif name in clearable:
            properties.pop(name, None)


def _apply_edge_update(
    graph: PropertyGraph,
    oid: Any,
    names: List[str],
    values: Tuple[Any, ...],
    clearable: Iterable[str],
) -> None:
    """Edge twin of :func:`_apply_node_update`."""
    properties = graph.edge(oid).properties
    for name, value in zip(names, values):
        if value is not None:
            properties[name] = value
        elif name in clearable:
            properties.pop(name, None)


def materialize_into_graph(
    result: EvaluationResult,
    compiled: CompiledMetaLog,
    graph: PropertyGraph,
    bulk: bool = True,
) -> Tuple[int, int]:
    """Write the derived node/edge facts back into ``graph``.

    Returns ``(new_nodes, new_edges)``.  Facts whose OID already exists
    in the graph update its properties instead of duplicating it —
    including existing *edges*, which earlier versions skipped outright.
    Updates distinguish a derived ``None`` from an absent property via
    ``compiled.head_properties`` (see :func:`_apply_node_update`).

    Facts are applied in :func:`~repro.vadalog.terms.fact_sort_key`
    order, which is identical across storage backends.  ``bulk=True``
    (the default) partitions each label's facts into fresh-OID creations
    (one column-wise ``add_nodes_bulk``/``add_edges_bulk`` per label, no
    per-fact ``has_node`` probes) and the rare updates, which take the
    per-object path; ``bulk=False`` keeps the all-per-object loop as a
    differential oracle.  Both orders of application are equivalent:
    updates only ever touch their own OID.
    """
    new_nodes = 0
    new_edges = 0
    catalog = compiled.catalog
    head_properties = compiled.head_properties
    for label in sorted(compiled.derived_node_labels):
        names = catalog.node_properties.get(label, [])
        facts = sorted(result.facts(label), key=fact_sort_key)
        if not facts:
            continue
        clearable = head_properties.get(label, ())
        if not bulk:
            for fact in facts:
                oid = fact[0]
                if graph.has_node(oid):
                    _apply_node_update(graph, oid, names, fact[1:], clearable)
                else:
                    properties = {
                        n: v for n, v in zip(names, fact[1:]) if v is not None
                    }
                    graph.add_node(oid, label, **properties)
                    new_nodes += 1
            continue
        existing = graph.existing_node_ids([fact[0] for fact in facts])
        fresh: List[Tuple[Any, ...]] = []
        updates: List[Tuple[Any, ...]] = []
        if existing:
            seen: Set[Any] = set()
            for fact in facts:
                oid = fact[0]
                if oid in existing or oid in seen:
                    updates.append(fact)
                else:
                    seen.add(oid)
                    fresh.append(fact)
        else:
            # All OIDs are new; only intra-batch duplicates update.
            seen = set()
            for fact in facts:
                if fact[0] in seen:
                    updates.append(fact)
                else:
                    seen.add(fact[0])
                    fresh.append(fact)
        if fresh:
            columns = list(zip(*fresh))
            graph.add_nodes_bulk(
                label, list(columns[0]), tuple(names),
                [list(col) for col in columns[1:]],
            )
            new_nodes += len(fresh)
        for fact in updates:
            _apply_node_update(graph, fact[0], names, fact[1:], clearable)
    for label in sorted(compiled.derived_edge_labels):
        names = catalog.edge_properties.get(label, [])
        facts = sorted(result.facts(label), key=fact_sort_key)
        if not facts:
            continue
        clearable = head_properties.get(label, ())
        if not bulk:
            for fact in facts:
                oid, source, target = fact[0], fact[1], fact[2]
                if graph.has_edge(oid):
                    _apply_edge_update(graph, oid, names, fact[3:], clearable)
                    continue
                if not graph.has_node(source) or not graph.has_node(target):
                    continue  # dangling derivation; endpoints not loaded
                properties = {
                    n: v for n, v in zip(names, fact[3:]) if v is not None
                }
                graph.add_edge(source, target, label, edge_id=oid, **properties)
                new_edges += 1
            continue
        existing = graph.existing_edge_ids([fact[0] for fact in facts])
        fresh = []
        updates = []
        seen = set()
        for fact in facts:
            oid = fact[0]
            if oid in existing or oid in seen:
                updates.append(fact)
            else:
                seen.add(oid)
                fresh.append(fact)
        if fresh:
            endpoints = {f[1] for f in fresh} | {f[2] for f in fresh}
            present = graph.existing_node_ids(endpoints)
            if len(present) != len(endpoints):
                fresh = [
                    f for f in fresh if f[1] in present and f[2] in present
                ]
            if fresh:
                columns = list(zip(*fresh))
                graph.add_edges_bulk(
                    label, list(columns[0]), list(columns[1]),
                    list(columns[2]), tuple(names),
                    [list(col) for col in columns[3:]],
                )
                new_edges += len(fresh)
        for fact in updates:
            oid = fact[0]
            if graph.has_edge(oid):
                _apply_edge_update(graph, oid, names, fact[3:], clearable)
            elif graph.has_node(fact[1]) and graph.has_node(fact[2]):
                # Its first occurrence was dropped as dangling but this
                # duplicate-OID fact has valid endpoints: create it, as
                # the sequential per-object loop would have.
                properties = {
                    n: v for n, v in zip(names, fact[3:]) if v is not None
                }
                graph.add_edge(
                    fact[1], fact[2], label, edge_id=oid, **properties
                )
                new_edges += 1
    return new_nodes, new_edges


def run_on_graph(
    program: MetaProgram,
    graph: PropertyGraph,
    catalog: Optional[GraphCatalog] = None,
    engine: Optional[Engine] = None,
    inplace: bool = False,
    tracer: Optional[Tracer] = None,
) -> MaterializationOutcome:
    """Run a MetaLog program over a property graph, end to end.

    Extracts the input facts (phase 1), compiles the program via MTV,
    runs the chase, and materializes the derived components back into the
    graph (a copy unless ``inplace``).

    A tracer covers the whole pipeline: ``mtv.*`` compilation spans,
    ``mtv.extract`` for the PG-to-relational mapping, the engine's own
    ``engine.*`` spans (when no explicit engine is given, one is built
    around the same tracer), and ``mtv.materialize`` for the write-back.
    When an engine carrying a tracer is supplied and no explicit tracer
    is, the pipeline joins the engine's trace.
    """
    catalog = catalog or GraphCatalog.from_graph(graph)
    if tracer is None and engine is not None:
        tracer = engine.tracer
    obs = tracer or NullTracer()
    compiled = compile_metalog(program, catalog, tracer=tracer)
    with obs.span("mtv.extract") as extract_span:
        database = graph_to_database(
            graph,
            compiled.catalog,
            node_labels=compiled.input_node_labels,
            edge_labels=compiled.input_edge_labels,
        )
        extract_span.set(relations=len(database.predicates()))
    if engine is None:
        engine = Engine(tracer=tracer)
    result = engine.run(compiled.program, database=database)
    with obs.span("mtv.materialize") as mat_span:
        target = graph if inplace else graph.copy()
        new_nodes, new_edges = materialize_into_graph(result, compiled, target)
        mat_span.set(new_nodes=new_nodes, new_edges=new_edges)
    return MaterializationOutcome(
        graph=target,
        result=result,
        compiled=compiled,
        new_nodes=new_nodes,
        new_edges=new_edges,
    )
