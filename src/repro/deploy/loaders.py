"""Transactional instance loaders for the non-relational target systems.

These are the instance-level halves of the Copy mappings: they push a
plain typed property graph (an instance of a super-schema) into a
deployed target system, validated against the translated schema.

Since the resilience rework the loaders are *staged, transactional, and
idempotent*:

- **stage, then apply** — every record is first validated against the
  super-schema (unknown/missing labels are counted and quarantined, no
  longer silently dropped), then applied in batches under store
  savepoints;
- **retry with backoff** — a transient failure
  (:class:`~repro.errors.TransientDeploymentError`, e.g. from a
  :class:`~repro.deploy.resilience.FaultInjector`) rolls the in-flight
  batch back and retries it under the caller's
  :class:`~repro.deploy.resilience.RetryPolicy`;
- **graceful degradation** — in ``mode="graceful"`` a per-record
  integrity violation lands in the :class:`~repro.deploy.resilience.QuarantineReport`
  instead of aborting; ``mode="strict"`` (the default) preserves the
  historical fail-fast semantics and additionally rolls the *entire*
  load back, so a failed strict load leaves the store untouched;
- **idempotent replay** — records already present in the store (from a
  crashed earlier attempt) are detected and skipped, so re-running a
  load after a crash converges on exactly the clean-load state.

Returned reports stay unpack-compatible with the historical returns
(``(nodes, edges)`` tuple / asserted-triple int).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Dict, List, Optional, Tuple

from repro.core.schema import SuperSchema
from repro.deploy.resilience import (
    GRACEFUL,
    STRICT,
    LoadReport,
    QuarantineReport,
    Rejection,
    RetryPolicy,
    TripleLoadReport,
    no_retry,
)
from repro.errors import DeploymentError, GraphError, IntegrityError
from repro.graph.property_graph import PropertyGraph
from repro.obs.tracer import Tracer

#: Default number of records per transactional batch.
DEFAULT_BATCH_SIZE = 200


def _check_mode(mode: str) -> None:
    if mode not in (STRICT, GRACEFUL):
        raise DeploymentError(f"unknown load mode {mode!r} (strict|graceful)")


class _Batcher:
    """Shared batch runner: savepoint per attempt, retry on transients."""

    def __init__(
        self,
        store: Any,
        mode: str,
        policy: RetryPolicy,
        tracer: Optional[Tracer],
    ):
        self.store = store
        self.mode = mode
        self.policy = policy
        self.tracer = tracer
        self.batches = 0
        self.retries = 0
        self.rollbacks = 0
        self.rejections: List[Rejection] = []

    @property
    def single_shot(self) -> bool:
        """True when the policy never retries — apply callbacks then call
        the store directly instead of paying the closure-per-mutation
        cost of :meth:`mutate` (the fault-free fast path)."""
        return self.policy.max_attempts == 1

    def mutate(self, operation):
        """Run one store mutation under the retry policy.

        A transient failure is raised *before* the mutation applies (the
        record is never half-written), so retrying is simply calling the
        mutation again after the policy's backoff — no rollback needed at
        this granularity.
        """
        if self.policy.max_attempts == 1:
            return operation()

        def bump_retries(attempt_no: int, error: BaseException) -> None:
            self.retries += 1

        return self.policy.call(
            operation, tracer=self.tracer, on_retry=bump_retries
        )

    def run(self, batch: List[Any], apply_record) -> Dict[str, int]:
        """Apply one batch under a savepoint; returns merged record counts.

        ``apply_record(record, counts, mutate)`` receives :meth:`mutate`
        to wrap each individual store call.  The batch savepoint guards
        the permanent failures — an integrity violation (strict mode),
        an injected crash, or retry exhaustion rolls the whole in-flight
        batch back, so only complete batches are ever committed.
        """
        savepoint = self.store.savepoint()
        counts: Dict[str, int] = {}
        rejections: List[Rejection] = []
        try:
            for record in batch:
                try:
                    apply_record(record, counts, self.mutate)
                except (IntegrityError, GraphError) as exc:
                    if self.mode != GRACEFUL:
                        raise
                    rejections.append(
                        Rejection(record[0], _describe(record), str(exc))
                    )
        except BaseException:
            self.store.rollback_to(savepoint)
            self.rollbacks += 1
            if self.tracer is not None:
                self.tracer.count("deploy.rollbacks", 1)
            raise
        finally:
            self.store.release(savepoint)
        self.batches += 1
        self.rejections.extend(rejections)
        if rejections and self.tracer is not None:
            self.tracer.count("deploy.quarantined", len(rejections))
        return counts


def _describe(record: Tuple[Any, ...]) -> Dict[str, Any]:
    """A JSON-able description of a staged record for quarantine files."""
    kind = record[0]
    if kind == "node":
        _, node, labels = record
        return {"id": node.id, "label": node.label, "labels": labels}
    if kind == "edge":
        edge = record[1]
        return {
            "id": edge.id,
            "source": edge.source,
            "target": edge.target,
            "label": edge.label,
        }
    if kind == "triples":
        _, subject, triples = record
        return {"subject": subject, "triples": [list(t) for t in triples]}
    return {"record": str(record)}


def _chunks(records: List[Any], size: int) -> List[List[Any]]:
    return [records[i : i + size] for i in range(0, len(records), size)]


# ----------------------------------------------------------------------
# Graph store
# ----------------------------------------------------------------------
def load_graph_store(
    schema: SuperSchema,
    data: PropertyGraph,
    store: Any,
    tracer: Optional[Tracer] = None,
    *,
    mode: str = STRICT,
    policy: Optional[RetryPolicy] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    quarantine: Optional[QuarantineReport] = None,
) -> LoadReport:
    """Load a typed instance into a schema-enforcing graph store.

    Nodes are multi-tagged with their type plus every ancestor type (the
    instance-level counterpart of the multi-label strategy's type
    accumulation).  Returns a :class:`~repro.deploy.resilience.LoadReport`
    (unpacks as the historical ``(nodes, relationships)`` pair).
    """
    _check_mode(mode)
    policy = policy if policy is not None else no_retry()
    tracer = tracer if tracer is not None else getattr(store, "tracer", None)
    report = LoadReport(mode=mode)
    if quarantine is not None:
        report.quarantine = quarantine
    span = tracer.span("deploy.flush", store=store.name) if tracer else nullcontext()
    with span:
        # ---- stage: validate against the super-schema -----------------
        node_records: List[Tuple[str, Any, List[str]]] = []
        labels_by_type: Dict[str, List[str]] = {}
        for node in data.nodes():
            if node.label is None or not schema.has_node(node.label):
                report.skipped_nodes += 1
                report.quarantine.reject(
                    "node",
                    {"id": node.id, "label": node.label},
                    f"label {node.label!r} is not in the schema",
                )
                continue
            labels = labels_by_type.get(node.label)
            if labels is None:
                sm_node = schema.get_node(node.label)
                labels = [sm_node.type_name] + [
                    a.type_name for a in schema.ancestors_of(sm_node)
                ]
                labels_by_type[node.label] = labels
            node_records.append(("node", node, labels))
        edge_records: List[Tuple[str, Any, int, Tuple]] = []
        edge_multiplicity: Dict[Tuple[Any, Any, Any, Tuple], int] = {}
        for edge in data.edges():
            if edge.label is None or not schema.has_edge(edge.label):
                report.skipped_edges += 1
                report.quarantine.reject(
                    "edge",
                    {
                        "id": edge.id, "source": edge.source,
                        "target": edge.target, "label": edge.label,
                    },
                    f"label {edge.label!r} is not in the schema",
                )
                continue
            key = (
                edge.source, edge.target, edge.label,
                tuple(sorted(edge.properties.items())),
            )
            ordinal = edge_multiplicity.get(key, 0)
            edge_multiplicity[key] = ordinal + 1
            edge_records.append(("edge", edge, ordinal, key))

        # ---- apply: transactional batches, idempotent replay ----------
        graph = store.graph
        # Replay detection compares multiplicities against what the store
        # already holds; indexed once up front so a fresh load (the common
        # case: empty store, empty index) pays nothing per edge.
        existing_multiplicity: Dict[Tuple[Any, Any, Any, Tuple], int] = {}
        for candidate in graph.edges():
            key = (
                candidate.source, candidate.target, candidate.label,
                tuple(sorted(candidate.properties.items())),
            )
            existing_multiplicity[key] = existing_multiplicity.get(key, 0) + 1

        batcher = _Batcher(store, mode, policy, tracer)
        single_shot = batcher.single_shot

        def apply_node(record, counts: Dict[str, int], mutate) -> None:
            _, node, labels = record
            if graph.has_node(node.id):
                counts["replayed"] = counts.get("replayed", 0) + 1
                if tracer is not None:
                    tracer.count("deploy.replay_skipped", 1)
                return
            if single_shot:
                store.create_node(node.id, labels, **node.properties)
            else:
                mutate(
                    lambda: store.create_node(node.id, labels, **node.properties)
                )
            counts["nodes"] = counts.get("nodes", 0) + 1

        def apply_edge(record, counts: Dict[str, int], mutate) -> None:
            _, edge, ordinal, key = record
            if existing_multiplicity.get(key, 0) > ordinal:
                counts["replayed"] = counts.get("replayed", 0) + 1
                if tracer is not None:
                    tracer.count("deploy.replay_skipped", 1)
                return
            if single_shot:
                store.create_relationship(
                    edge.source, edge.target, edge.label, **edge.properties
                )
            else:
                mutate(
                    lambda: store.create_relationship(
                        edge.source, edge.target, edge.label, **edge.properties
                    )
                )
            counts["edges"] = counts.get("edges", 0) + 1

        load_savepoint = store.savepoint()
        try:
            for batch in _chunks(node_records, batch_size):
                counts = batcher.run(batch, apply_node)
                report.nodes += counts.get("nodes", 0)
                report.replayed += counts.get("replayed", 0)
            for batch in _chunks(edge_records, batch_size):
                counts = batcher.run(batch, apply_edge)
                report.edges += counts.get("edges", 0)
                report.replayed += counts.get("replayed", 0)
        except (IntegrityError, GraphError):
            # Strict mode: an integrity violation anywhere voids the
            # whole load — committed batches included — before raising.
            store.rollback_to(load_savepoint)
            if tracer is not None:
                tracer.count("deploy.rollbacks", 1)
            raise
        finally:
            store.release(load_savepoint)
        report.batches = batcher.batches
        report.retries = batcher.retries
        report.rollbacks = batcher.rollbacks
        report.quarantine.extend(batcher.rejections)
        if tracer:
            span.set(
                nodes=report.nodes,
                relationships=report.edges,
                skipped=report.skipped,
                quarantined=report.quarantined,
                replayed=report.replayed,
                batches=report.batches,
                retries=report.retries,
            )
    return report


# ----------------------------------------------------------------------
# Triple store
# ----------------------------------------------------------------------
def load_triple_store(
    schema: SuperSchema,
    data: PropertyGraph,
    store: Any,
    tracer: Optional[Tracer] = None,
    *,
    mode: str = STRICT,
    policy: Optional[RetryPolicy] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    quarantine: Optional[QuarantineReport] = None,
) -> TripleLoadReport:
    """Load a typed instance as triples (edge properties are dropped —
    RDF reification is out of scope; documented substitution).

    Returns a :class:`~repro.deploy.resilience.TripleLoadReport`; it
    compares as the historical asserted-triple count.
    """
    _check_mode(mode)
    policy = policy if policy is not None else no_retry()
    tracer = tracer if tracer is not None else getattr(store, "tracer", None)
    report_quarantine = quarantine if quarantine is not None else QuarantineReport()
    skipped_nodes = skipped_edges = 0
    span = tracer.span("deploy.flush", store=store.name) if tracer else nullcontext()
    with span:
        # ---- stage -----------------------------------------------------
        records: List[Tuple[str, Any, List[Tuple[Any, str, Any]]]] = []
        for node in data.nodes():
            if node.label is None or not schema.has_node(node.label):
                skipped_nodes += 1
                report_quarantine.reject(
                    "node",
                    {"id": node.id, "label": node.label},
                    f"label {node.label!r} is not in the schema",
                )
                continue
            triples: List[Tuple[Any, str, Any]] = [(node.id, "rdf:type", node.label)]
            sm_node = schema.get_node(node.label)
            declared = {a.name for a in schema.inherited_attributes(sm_node)}
            for name, value in node.properties.items():
                if name in declared and value is not None:
                    triples.append((node.id, name, value))
            records.append(("triples", node.id, triples))
        for edge in data.edges():
            if edge.label is None or not schema.has_edge(edge.label):
                skipped_edges += 1
                report_quarantine.reject(
                    "edge",
                    {
                        "id": edge.id, "source": edge.source,
                        "target": edge.target, "label": edge.label,
                    },
                    f"label {edge.label!r} is not in the schema",
                )
                continue
            records.append(
                ("triples", edge.source, [(edge.source, edge.label, edge.target)])
            )

        # ---- apply -----------------------------------------------------
        before = store.count()

        def apply_record(record, counts: Dict[str, int], mutate) -> None:
            _, _subject, triples = record
            replay = all(store.has(s, p, o) for s, p, o in triples)
            if replay:
                counts["replayed"] = counts.get("replayed", 0) + 1
                if tracer is not None:
                    tracer.count("deploy.replay_skipped", 1)
                return
            for subject, predicate, obj in triples:
                mutate(
                    lambda s=subject, p=predicate, o=obj: store.add(s, p, o)
                )

        batcher = _Batcher(store, mode, policy, tracer)
        load_savepoint = store.savepoint()
        replayed = 0
        try:
            for batch in _chunks(records, batch_size):
                counts = batcher.run(batch, apply_record)
                replayed += counts.get("replayed", 0)
        except (IntegrityError, GraphError):
            store.rollback_to(load_savepoint)
            if tracer is not None:
                tracer.count("deploy.rollbacks", 1)
            raise
        finally:
            store.release(load_savepoint)
        asserted = store.count() - before
        report_quarantine.extend(batcher.rejections)
        if tracer:
            span.set(
                triples=asserted,
                skipped=skipped_nodes + skipped_edges,
                quarantined=len(batcher.rejections) + skipped_nodes + skipped_edges,
                replayed=replayed,
                batches=batcher.batches,
                retries=batcher.retries,
            )
    return TripleLoadReport(
        asserted,
        skipped_nodes=skipped_nodes,
        skipped_edges=skipped_edges,
        replayed=replayed,
        batches=batcher.batches,
        retries=batcher.retries,
        rollbacks=batcher.rollbacks,
        quarantine=report_quarantine,
        mode=mode,
    )
