"""Instance loaders for the non-relational target systems.

These are the instance-level halves of the Copy mappings: they push a
plain typed property graph (an instance of a super-schema) into a
deployed target system, validated against the translated schema.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Dict, Optional, Tuple

from repro.core.schema import SuperSchema
from repro.deploy.graph_store import GraphStore
from repro.deploy.triple_store import TripleStore
from repro.graph.property_graph import PropertyGraph
from repro.obs.tracer import Tracer


def load_graph_store(
    schema: SuperSchema,
    data: PropertyGraph,
    store: GraphStore,
    tracer: Optional[Tracer] = None,
) -> Tuple[int, int]:
    """Load a typed instance into a schema-enforcing graph store.

    Nodes are multi-tagged with their type plus every ancestor type (the
    instance-level counterpart of the multi-label strategy's type
    accumulation).  Returns (nodes, relationships) created.
    """
    tracer = tracer if tracer is not None else store.tracer
    span = tracer.span("deploy.flush", store=store.name) if tracer else nullcontext()
    with span:
        nodes = edges = 0
        for node in data.nodes():
            if node.label is None or not schema.has_node(node.label):
                continue
            sm_node = schema.get_node(node.label)
            labels = [sm_node.type_name] + [
                a.type_name for a in schema.ancestors_of(sm_node)
            ]
            store.create_node(node.id, labels, **node.properties)
            nodes += 1
        for edge in data.edges():
            if edge.label is None or not schema.has_edge(edge.label):
                continue
            store.create_relationship(
                edge.source, edge.target, edge.label, **edge.properties
            )
            edges += 1
        if tracer:
            span.set(nodes=nodes, relationships=edges)
    return nodes, edges


def load_triple_store(
    schema: SuperSchema,
    data: PropertyGraph,
    store: TripleStore,
    tracer: Optional[Tracer] = None,
) -> int:
    """Load a typed instance as triples (edge properties are dropped —
    RDF reification is out of scope; documented substitution).

    Returns the number of asserted triples.
    """
    tracer = tracer if tracer is not None else store.tracer
    span = tracer.span("deploy.flush", store=store.name) if tracer else nullcontext()
    with span:
        before = store.count()
        for node in data.nodes():
            if node.label is None or not schema.has_node(node.label):
                continue
            store.add(node.id, "rdf:type", node.label)
            sm_node = schema.get_node(node.label)
            declared = {a.name for a in schema.inherited_attributes(sm_node)}
            for name, value in node.properties.items():
                if name in declared and value is not None:
                    store.add(node.id, name, value)
        for edge in data.edges():
            if edge.label is None or not schema.has_edge(edge.label):
                continue
            store.add(edge.source, edge.label, edge.target)
        asserted = store.count() - before
        if tracer:
            span.set(triples=asserted)
    return asserted
