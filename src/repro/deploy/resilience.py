"""Resilient deployment: retry policies, fault injection, quarantine.

Production KG pipelines treat load failures, partial data, and retries
as first-class concerns; the paper's Section 5/6 deployment story
assumes targets that take a load atomically or reject it cleanly.  This
module supplies the machinery that closes the gap for our in-memory
targets:

- :class:`RetryPolicy` — exponential backoff with deterministic jitter
  around any store mutation, with an injectable ``sleep`` (tests and the
  chaos battery never actually wait).  Exhaustion raises
  :class:`~repro.errors.RetryExhaustedError` carrying the last cause.
- :class:`FaultInjector` — a transparent wrapper around any store that
  injects seeded transient faults, latency, and crash-after-N-records
  failures into the mutation methods, leaving reads and the savepoint
  protocol untouched.  This is how the failure paths are *tested*:
  deterministic chaos, not flaky sleeps.
- :class:`QuarantineReport` — graceful degradation: per-record
  rejections (unknown label, integrity violation) are collected instead
  of aborting the load, and can be serialized for offline triage.
- :class:`LoadReport` / :class:`TripleLoadReport` — what the
  transactional loaders in :mod:`repro.deploy.loaders` return; both stay
  unpack-compatible with the pre-resilience tuple/int returns.

Everything is observable through the usual tracer counters:
``deploy.retries``, ``deploy.rollbacks``, ``deploy.quarantined``,
``deploy.replay_skipped``, and ``deploy.faults_injected``.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import (
    DeploymentError,
    RetryExhaustedError,
    TransientDeploymentError,
)
from repro.obs.tracer import Tracer

#: Load modes: strict preserves fail-fast semantics (an integrity
#: violation rolls the whole load back and raises); graceful quarantines
#: the offending record and carries on.
STRICT = "strict"
GRACEFUL = "graceful"


class CrashFault(DeploymentError):
    """An injected hard crash (process death): never retried.

    Raised by :class:`FaultInjector` once its ``crash_after`` budget of
    successful mutations is spent.  Deliberately *not* a
    :class:`~repro.errors.TransientDeploymentError`: retry policies must
    let it through so the load aborts the way a real crash would, leaving
    only whole committed batches behind.
    """


# ----------------------------------------------------------------------
# Retry with backoff
# ----------------------------------------------------------------------
@dataclass
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    The delay before retry ``n`` (1-based) is
    ``min(base_delay * multiplier**(n-1), max_delay)`` stretched by a
    jitter factor in ``[1, 1 + jitter]`` derived from ``(seed, n)`` — the
    same policy always produces the same schedule, so failure tests and
    the chaos battery are reproducible.  ``sleep`` is injectable; tests
    pass a recording fake and never wait.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    sleep: Callable[[float], None] = time.sleep
    retry_on: Tuple[type, ...] = (TransientDeploymentError,)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    def delay(self, attempt: int) -> float:
        """Backoff before the retry following failed attempt ``attempt``."""
        backoff = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        # Deterministic jitter: (seed, attempt) hashed to a fraction in [0, 1).
        frac = random.Random(self.seed * 1_000_003 + attempt).random()
        return backoff * (1.0 + self.jitter * frac)

    def schedule(self) -> List[float]:
        """The full backoff schedule (one delay per possible retry)."""
        return [self.delay(n) for n in range(1, self.max_attempts)]

    def call(
        self,
        operation: Callable[[], Any],
        *,
        tracer: Optional[Tracer] = None,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> Any:
        """Run ``operation`` until it succeeds or attempts are exhausted.

        Only exceptions in ``retry_on`` (transient failures) are caught;
        ``on_retry(attempt, error)`` runs before each backoff — the
        loaders use it to roll the failed batch back.
        """
        attempt = 1
        while True:
            try:
                return operation()
            except self.retry_on as exc:
                if attempt >= self.max_attempts:
                    raise RetryExhaustedError(
                        f"operation failed after {attempt} attempts: {exc}",
                        attempts=attempt,
                        last_error=exc,
                    ) from exc
                if on_retry is not None:
                    on_retry(attempt, exc)
                if tracer is not None:
                    tracer.count("deploy.retries", 1)
                self.sleep(self.delay(attempt))
                attempt += 1


#: A policy that never retries — strict single-shot semantics.
def no_retry() -> RetryPolicy:
    """A policy making exactly one attempt (retries disabled)."""
    return RetryPolicy(max_attempts=1)


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class FaultInjector:
    """Wraps a deployment store and injects deterministic faults.

    Mutation methods (``create_node``, ``create_relationship``, ``add``,
    ``insert``) are intercepted; everything else — reads, extraction, the
    savepoint protocol — passes straight through, so a wrapped store is a
    drop-in for the loaders and for
    :func:`~repro.ssst.sigma_relational.reason_over_relational`.

    Parameters
    ----------
    fault_rate:
        Per-mutation probability of raising a
        :class:`~repro.errors.TransientDeploymentError` *before* the
        mutation applies (the record is never half-written).
    crash_after:
        After this many successful mutations every further mutation
        raises :class:`CrashFault` — simulating a process killed mid-load.
    latency:
        Seconds of injected delay per mutation, delivered through
        ``sleep`` (injectable; defaults to a no-op so tests never wait).
    seed:
        Seed for the fault stream; the same seed replays the same faults.
    """

    #: ``apply_flush_delta`` makes *batch* applies interceptable too:
    #: the streaming pipeline mutates stores only through it (the store's
    #: internal per-record calls bypass the wrapper), so a transient fault
    #: fires before the batch touches anything and ``crash_after`` counts
    #: applied batches — exactly the crash-mid-stream granularity the
    #: chaos battery kills at.
    _MUTATORS = frozenset(
        {
            "create_node",
            "create_relationship",
            "add",
            "insert",
            "append",
            "apply_flush_delta",
        }
    )

    def __init__(
        self,
        store: Any,
        fault_rate: float = 0.0,
        crash_after: Optional[int] = None,
        latency: float = 0.0,
        seed: int = 0,
        sleep: Optional[Callable[[float], None]] = None,
        tracer: Optional[Tracer] = None,
    ):
        if not 0.0 <= fault_rate < 1.0:
            raise ValueError("fault_rate must be in [0, 1)")
        self.store = store
        self.fault_rate = fault_rate
        self.crash_after = crash_after
        self.latency = latency
        self.tracer = tracer if tracer is not None else getattr(store, "tracer", None)
        self._sleep = sleep if sleep is not None else (lambda _s: None)
        self._rng = random.Random(seed)
        self.faults_injected = 0
        self.mutations_applied = 0

    @property
    def name(self) -> str:
        return getattr(self.store, "name", "store")

    def arm(self, seed: int) -> None:
        """Re-seed the fault stream (each chaos scenario gets its own)."""
        self._rng = random.Random(seed)

    def _inject(self, method_name: str) -> None:
        if self.latency:
            self._sleep(self.latency)
        if (
            self.crash_after is not None
            and self.mutations_applied >= self.crash_after
        ):
            raise CrashFault(
                f"injected crash after {self.mutations_applied} records "
                f"(in {method_name})"
            )
        if self.fault_rate and self._rng.random() < self.fault_rate:
            self.faults_injected += 1
            if self.tracer is not None:
                self.tracer.count("deploy.faults_injected", 1)
            raise TransientDeploymentError(
                f"injected transient fault #{self.faults_injected} "
                f"(in {method_name})"
            )

    def __getattr__(self, name: str) -> Any:
        attribute = getattr(self.store, name)
        if name not in self._MUTATORS or not callable(attribute):
            return attribute

        def faulty(*args: Any, **kwargs: Any) -> Any:
            self._inject(name)
            result = attribute(*args, **kwargs)
            self.mutations_applied += 1
            return result

        return faulty

    def __repr__(self) -> str:
        return (
            f"FaultInjector({self.store!r}, rate={self.fault_rate}, "
            f"crash_after={self.crash_after}, "
            f"faults={self.faults_injected}, applied={self.mutations_applied})"
        )


# ----------------------------------------------------------------------
# Quarantine (graceful degradation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Rejection:
    """One quarantined record: what it was and why it was rejected."""

    kind: str  # "node" | "edge" | "triple" | "row"
    record: Any  # a JSON-able description of the offending record
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "record": self.record, "reason": self.reason}


@dataclass
class QuarantineReport:
    """Every record a graceful load rejected, with reasons."""

    rejections: List[Rejection] = field(default_factory=list)

    def reject(self, kind: str, record: Any, reason: str) -> None:
        self.rejections.append(Rejection(kind, record, reason))

    def extend(self, rejections: List[Rejection]) -> None:
        self.rejections.extend(rejections)

    def __len__(self) -> int:
        return len(self.rejections)

    def __bool__(self) -> bool:
        return bool(self.rejections)

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for rejection in self.rejections:
            counts[rejection.kind] = counts.get(rejection.kind, 0) + 1
        return counts

    def to_json(self, indent: int = 2) -> str:
        payload = {
            "quarantined": len(self.rejections),
            "by_kind": self.by_kind(),
            "rejections": [r.to_dict() for r in self.rejections],
        }
        return json.dumps(payload, indent=indent, default=str)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())


# ----------------------------------------------------------------------
# Load reports
# ----------------------------------------------------------------------
@dataclass
class LoadReport:
    """Outcome of a transactional graph-store load.

    Unpacks as the historical ``(nodes, edges)`` pair, so pre-resilience
    callers keep working: ``nodes, edges = load_graph_store(...)``.
    """

    nodes: int = 0
    edges: int = 0
    #: Records skipped because their label is unknown to the schema
    #: (the silent-skip class of the pre-resilience loaders — now counted).
    skipped_nodes: int = 0
    skipped_edges: int = 0
    #: Records skipped because an identical one is already in the store
    #: (idempotent replay after a crash).
    replayed: int = 0
    #: Batches applied, and transient-fault retries spent across them.
    batches: int = 0
    retries: int = 0
    rollbacks: int = 0
    quarantine: QuarantineReport = field(default_factory=QuarantineReport)
    mode: str = STRICT

    def __iter__(self):
        return iter((self.nodes, self.edges))

    @property
    def skipped(self) -> int:
        return self.skipped_nodes + self.skipped_edges

    @property
    def quarantined(self) -> int:
        return len(self.quarantine)

    def summary(self) -> str:
        parts = [
            f"nodes={self.nodes}",
            f"edges={self.edges}",
            f"skipped={self.skipped}",
            f"quarantined={self.quarantined}",
            f"replayed={self.replayed}",
            f"batches={self.batches}",
            f"retries={self.retries}",
        ]
        return f"load[{self.mode}]: " + " ".join(parts)


class TripleLoadReport(int):
    """Triple-store load outcome; compares as the asserted-triple count.

    ``int`` subclassing keeps the historical contract (``added > 0``,
    arithmetic on the return value) while carrying the resilience
    details as attributes.
    """

    triples: int
    skipped_nodes: int
    skipped_edges: int
    replayed: int
    batches: int
    retries: int
    rollbacks: int
    quarantine: QuarantineReport
    mode: str

    def __new__(
        cls,
        triples: int,
        skipped_nodes: int = 0,
        skipped_edges: int = 0,
        replayed: int = 0,
        batches: int = 0,
        retries: int = 0,
        rollbacks: int = 0,
        quarantine: Optional[QuarantineReport] = None,
        mode: str = STRICT,
    ) -> "TripleLoadReport":
        report = super().__new__(cls, triples)
        report.triples = triples
        report.skipped_nodes = skipped_nodes
        report.skipped_edges = skipped_edges
        report.replayed = replayed
        report.batches = batches
        report.retries = retries
        report.rollbacks = rollbacks
        report.quarantine = quarantine if quarantine is not None else QuarantineReport()
        report.mode = mode
        return report

    @property
    def skipped(self) -> int:
        return self.skipped_nodes + self.skipped_edges

    @property
    def quarantined(self) -> int:
        return len(self.quarantine)

    def summary(self) -> str:
        return (
            f"load[{self.mode}]: triples={self.triples} "
            f"skipped={self.skipped} quarantined={self.quarantined} "
            f"batches={self.batches} retries={self.retries}"
        )


def graph_store_state(store: Any) -> Tuple[Any, Any]:
    """Canonical (node set, edge set) fingerprint of a graph store.

    Edge OIDs are generated, so two loads of the same data compare by
    (source, target, label, properties) — the byte-identity notion the
    chaos battery and the replay tests assert.
    """
    graph = store.graph
    nodes = sorted(
        (
            str(node.id),
            tuple(sorted(store.labels_of(node.id))),
            tuple(sorted((k, str(v)) for k, v in node.properties.items())),
        )
        for node in graph.nodes()
    )
    edges = sorted(
        (
            str(edge.source),
            str(edge.target),
            edge.label or "",
            tuple(sorted((k, str(v)) for k, v in edge.properties.items())),
        )
        for edge in graph.edges()
    )
    return tuple(nodes), tuple(edges)
