"""Instance-level flush deltas for the deployment targets.

The incremental materialization path (``IntensionalMaterializer.update``)
maintains the enriched instance in place instead of re-deriving it, so
re-loading the whole instance into a deployed store would throw the
saving away at the last hop.  A :class:`FlushDelta` is the difference
between two enriched instances expressed at the plain-graph level —
exactly what each store's ``apply_flush_delta`` method consumes to bring
a previously loaded store up to date without a full reload.

The records carry everything any backend needs to *undo* an element
(the triple store must retract attribute triples, so removed/updated
records keep the old property values), and each backend reuses the
PR 3 savepoint machinery appropriate to its mutation model:

- :class:`~repro.deploy.graph_store.GraphStore` applies removals and
  in-place property updates first, then guards the insert batch with a
  structural savepoint (structural savepoints are insert-only, so the
  destructive half runs *before* the watermark is taken);
- :class:`~repro.deploy.relational_engine.RelationalEngine` and
  :class:`~repro.deploy.triple_store.TripleStore` record undo closures
  for deletions too, so their whole delta applies under one savepoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.graph.property_graph import PropertyGraph

#: ``(node_id, type_name, properties)``
NodeRecord = Tuple[Any, str, Dict[str, Any]]
#: ``(node_id, type_name, new_properties, old_properties)``
UpdateRecord = Tuple[Any, str, Dict[str, Any], Dict[str, Any]]
#: ``(edge_id, source, target, type_name, properties)``
EdgeRecord = Tuple[Any, Any, Any, str, Dict[str, Any]]


@dataclass
class FlushDelta:
    """Plain-graph changes between two versions of an enriched instance."""

    added_nodes: List[NodeRecord] = field(default_factory=list)
    added_edges: List[EdgeRecord] = field(default_factory=list)
    updated_nodes: List[UpdateRecord] = field(default_factory=list)
    removed_nodes: List[NodeRecord] = field(default_factory=list)
    removed_edges: List[EdgeRecord] = field(default_factory=list)

    @property
    def total_changes(self) -> int:
        return (
            len(self.added_nodes) + len(self.added_edges)
            + len(self.updated_nodes)
            + len(self.removed_nodes) + len(self.removed_edges)
        )

    def changed(self) -> bool:
        return self.total_changes > 0

    def summary(self) -> str:
        return (
            f"+{len(self.added_nodes)}/~{len(self.updated_nodes)}"
            f"/-{len(self.removed_nodes)} nodes, "
            f"+{len(self.added_edges)}/-{len(self.removed_edges)} edges"
        )

    @classmethod
    def diff(cls, old: PropertyGraph, new: PropertyGraph) -> "FlushDelta":
        """The delta that turns ``old`` into ``new``.

        Elements are matched by id.  A node whose label changed is
        reported as removed + added (stores key constraints off the
        label); one whose properties changed becomes an update.  Edges
        are immutable records in every backend, so any change to an
        edge's endpoints, label, or properties is removed + added.
        """
        delta = cls()
        for node in new.nodes():
            if not old.has_node(node.id):
                delta.added_nodes.append(
                    (node.id, node.label, dict(node.properties))
                )
                continue
            previous = old.node(node.id)
            if previous.label != node.label:
                delta.removed_nodes.append(
                    (previous.id, previous.label, dict(previous.properties))
                )
                delta.added_nodes.append(
                    (node.id, node.label, dict(node.properties))
                )
            elif previous.properties != node.properties:
                delta.updated_nodes.append(
                    (node.id, node.label,
                     dict(node.properties), dict(previous.properties))
                )
        for node in old.nodes():
            if not new.has_node(node.id):
                delta.removed_nodes.append(
                    (node.id, node.label, dict(node.properties))
                )
        for edge in new.edges():
            if old.has_edge(edge.id):
                previous = old.edge(edge.id)
                if (
                    previous.source == edge.source
                    and previous.target == edge.target
                    and previous.label == edge.label
                    and previous.properties == edge.properties
                ):
                    continue
                delta.removed_edges.append(
                    (previous.id, previous.source, previous.target,
                     previous.label, dict(previous.properties))
                )
            delta.added_edges.append(
                (edge.id, edge.source, edge.target, edge.label,
                 dict(edge.properties))
            )
        for edge in old.edges():
            if not new.has_edge(edge.id):
                delta.removed_edges.append(
                    (edge.id, edge.source, edge.target, edge.label,
                     dict(edge.properties))
                )
        return delta


@dataclass
class DeltaFlushReport:
    """Outcome of one ``apply_flush_delta`` call on a deployed store."""

    nodes_added: int = 0
    nodes_updated: int = 0
    nodes_removed: int = 0
    edges_added: int = 0
    edges_removed: int = 0
    #: Records skipped because the element (or its label) is absent —
    #: removals of never-loaded elements are counted, not errors.
    skipped: int = 0

    @property
    def applied(self) -> int:
        return (
            self.nodes_added + self.nodes_updated + self.nodes_removed
            + self.edges_added + self.edges_removed
        )

    def summary(self) -> str:
        return (
            f"delta-flush: +{self.nodes_added}/~{self.nodes_updated}"
            f"/-{self.nodes_removed} nodes, +{self.edges_added}"
            f"/-{self.edges_removed} edges, {self.skipped} skipped"
        )
