"""Deployment backends: in-memory target systems, schema renderers, and
the resilience layer (transactions, retry/backoff, fault injection)."""

from repro.deploy.csv_dataset import CSVDataset
from repro.deploy.delta import DeltaFlushReport, FlushDelta
from repro.deploy.cypher import (
    generate_cypher_constraints,
    generate_label_documentation,
)
from repro.deploy.graph_store import GraphStore
from repro.deploy.loaders import load_graph_store, load_triple_store
from repro.deploy.rdfs_doc import generate_rdfs
from repro.deploy.relational_engine import RelationalEngine
from repro.deploy.resilience import (
    GRACEFUL,
    STRICT,
    CrashFault,
    FaultInjector,
    LoadReport,
    QuarantineReport,
    Rejection,
    RetryPolicy,
    TripleLoadReport,
    graph_store_state,
    no_retry,
)
from repro.deploy.sql_ddl import generate_ddl, parse_ddl
from repro.deploy.sql_views import PushdownResult, generate_sql_views
from repro.deploy.transactions import Savepoint, UndoLog, transaction
from repro.deploy.triple_store import TripleStore

__all__ = [
    "CSVDataset",
    "CrashFault",
    "DeltaFlushReport",
    "FlushDelta",
    "FaultInjector",
    "GRACEFUL",
    "GraphStore",
    "LoadReport",
    "QuarantineReport",
    "Rejection",
    "RelationalEngine",
    "RetryPolicy",
    "STRICT",
    "Savepoint",
    "TripleLoadReport",
    "TripleStore",
    "UndoLog",
    "generate_cypher_constraints",
    "generate_ddl",
    "generate_label_documentation",
    "generate_rdfs",
    "generate_sql_views",
    "graph_store_state",
    "load_graph_store",
    "load_triple_store",
    "no_retry",
    "parse_ddl",
    "PushdownResult",
    "transaction",
]
