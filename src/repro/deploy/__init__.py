"""Deployment backends: in-memory target systems and schema renderers."""

from repro.deploy.csv_dataset import CSVDataset
from repro.deploy.cypher import (
    generate_cypher_constraints,
    generate_label_documentation,
)
from repro.deploy.graph_store import GraphStore
from repro.deploy.loaders import load_graph_store, load_triple_store
from repro.deploy.rdfs_doc import generate_rdfs
from repro.deploy.relational_engine import RelationalEngine
from repro.deploy.sql_ddl import generate_ddl, parse_ddl
from repro.deploy.sql_views import PushdownResult, generate_sql_views
from repro.deploy.triple_store import TripleStore

__all__ = [
    "CSVDataset",
    "generate_cypher_constraints",
    "generate_label_documentation",
    "GraphStore",
    "load_graph_store",
    "load_triple_store",
    "generate_rdfs",
    "RelationalEngine",
    "generate_ddl",
    "parse_ddl",
    "PushdownResult",
    "generate_sql_views",
    "TripleStore",
]
