"""A schema-enforcing in-memory property-graph store.

Section 5: "for schema-less systems, like graph databases, schemas can
be enforced with ad-hoc methodologies [21]".  This store is such a
methodology in miniature: it accepts a translated
:class:`~repro.models.property_graph.PGSchema` and validates every
mutation against it — allowed labels, relationship endpoint labels,
declared properties, mandatory properties, and uniqueness constraints.

The store implements the ``@input`` :class:`~repro.vadalog.annotations.Source`
protocol using exactly the Cypher-like query shapes MTV emits
(Example 4.4): ``(n:Business) return n`` extracts node facts,
``(a)-[e:OWNS]->(b) return (e, a, b)`` extracts edge facts, laid out per
the store's catalog.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.deploy.delta import DeltaFlushReport, FlushDelta
from repro.errors import DeploymentError, GraphError, IntegrityError, ModelError
from repro.graph import make_graph
from repro.graph.property_graph import Edge, Node, PropertyGraph
from repro.metalog.analysis import GraphCatalog
from repro.models.property_graph import PGSchema
from repro.obs.tracer import Tracer

_NODE_QUERY_RE = re.compile(r"^\(\s*\w*\s*:\s*(\w+)\s*\)\s*return\s+\w+$", re.IGNORECASE)
_EDGE_QUERY_RE = re.compile(
    r"^\(\s*\w*\s*\)\s*-\s*\[\s*\w*\s*:\s*(\w+)\s*\]\s*->\s*\(\s*\w*\s*\)\s*"
    r"return\s*\(.*\)$",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class StructuralSavepoint:
    """A size watermark over the store's insertion-ordered state.

    The graph store only ever *inserts* (nodes, edges, unique-index
    entries), so a savepoint needs no per-mutation undo journal: rolling
    back pops each structure down to its recorded size.  Savepoints cost
    O(1) to open and nest trivially — an inner rollback restores a later
    watermark, the outer one an earlier watermark.

    The insert-only assumption is *checked*, not trusted: the graph mark
    embeds the underlying graph's mutation epoch, so if anything deleted
    from the graph behind the store's back, ``rollback_to`` raises
    :class:`~repro.errors.DeploymentError` instead of corrupting state.
    """

    graph_mark: Tuple[int, int, int]
    unique_marks: Tuple[Tuple[Tuple[str, str], int], ...]
    labels_mark: int


class GraphStore:
    """An in-memory graph database enforcing a PG-model schema."""

    def __init__(self, name: str = "graph-store", tracer: Optional[Tracer] = None,
                 columnar: Optional[bool] = None):
        self.name = name
        self.tracer = tracer
        self.graph = make_graph(name, columnar=columnar)
        self._schema: Optional[PGSchema] = None
        self._node_properties: Dict[str, Dict[str, Any]] = {}
        self._relationships: Dict[str, List[Tuple[Set[str], Set[str], Dict[str, Any]]]] = {}
        self._unique: Dict[Tuple[str, str], Dict[Any, Any]] = {}
        self._labels_by_node: Dict[Any, Set[str]] = {}

    # ------------------------------------------------------------------
    # Savepoint protocol (savepoint / rollback_to / release)
    # ------------------------------------------------------------------
    def savepoint(self) -> StructuralSavepoint:
        """Open a savepoint; pair with :meth:`rollback_to` / :meth:`release`."""
        return StructuralSavepoint(
            self.graph.insertion_mark(),
            tuple((key, len(index)) for key, index in self._unique.items()),
            len(self._labels_by_node),
        )

    def rollback_to(self, savepoint: StructuralSavepoint) -> int:
        """Undo every mutation made since ``savepoint``."""
        undone = self.graph.rollback_to_mark(savepoint.graph_mark)
        while len(self._labels_by_node) > savepoint.labels_mark:
            self._labels_by_node.popitem()
        for key, mark in savepoint.unique_marks:
            index = self._unique[key]
            while len(index) > mark:
                index.popitem()
        return undone

    def release(self, savepoint: StructuralSavepoint) -> None:
        """Commit a savepoint — nothing accumulates, so this is free."""

    # ------------------------------------------------------------------
    # Schema deployment
    # ------------------------------------------------------------------
    def deploy(self, schema: PGSchema) -> None:
        """Enforce a translated PG schema from now on."""
        if self._schema is not None:
            raise DeploymentError("a schema is already deployed")
        self._schema = schema
        for node_class in schema.node_classes:
            # Property declarations key off the class's own (primary)
            # label; the extra accumulated labels only mark membership.
            properties = {p.name: p for p in node_class.properties}
            self._node_properties[node_class.primary_label] = properties
            for label in node_class.labels[1:]:
                self._node_properties.setdefault(label, {})
        for relationship in schema.relationship_classes:
            try:
                source_labels = set(
                    schema.node_class_by_oid(relationship.source_oid).labels
                )
                target_labels = set(
                    schema.node_class_by_oid(relationship.target_oid).labels
                )
            except ModelError as exc:
                # A relationship class pointing at a node-class OID the
                # schema does not define is a broken translation, not a
                # constraint-free relationship.
                raise DeploymentError(
                    f"relationship {relationship.name!r} has a dangling "
                    f"endpoint OID: {exc}"
                ) from exc
            self._relationships.setdefault(relationship.name, []).append(
                (
                    source_labels,
                    target_labels,
                    {p.name: p for p in relationship.properties},
                )
            )
        for label, prop in schema.unique_constraints():
            self._unique[(label, prop)] = {}

    @property
    def schema(self) -> Optional[PGSchema]:
        return self._schema

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def create_node(
        self, node_id: Any, labels, **properties: Any
    ) -> Node:
        """Create a node with one or more labels (multi-tagging)."""
        if isinstance(labels, str):
            labels = [labels]
        labels = list(labels)
        if not labels:
            raise IntegrityError("a node needs at least one label")
        if self._schema is not None:
            for label in labels:
                if label not in self._node_properties:
                    raise IntegrityError(f"label {label!r} is not in the schema")
            declared: Dict[str, Any] = {}
            for label in labels:
                declared.update(self._node_properties[label])
            for name in properties:
                if name not in declared:
                    raise IntegrityError(
                        f"property {name!r} not declared for labels {labels}"
                    )
            for name, prop in declared.items():
                if prop.optional or prop.intensional:
                    continue  # intensional values appear after reasoning
                if name not in properties:
                    raise IntegrityError(
                        f"mandatory property {name!r} missing for {labels}"
                    )
            for (label, prop_name), index in self._unique.items():
                if label in labels and prop_name in properties:
                    value = properties[prop_name]
                    if value in index:
                        raise IntegrityError(
                            f"unique constraint on {label}.{prop_name} "
                            f"violated by {value!r}"
                        )
        node = self.graph.add_node(node_id, labels[0], **properties)
        self._labels_by_node[node.id] = set(labels)
        for (label, prop_name), index in self._unique.items():
            if label in labels and prop_name in properties:
                index[properties[prop_name]] = node.id
        if self.tracer is not None:
            self.tracer.count("deploy.nodes_written", 1)
        return node

    def create_relationship(
        self, source: Any, target: Any, name: str, **properties: Any
    ) -> Edge:
        if self._schema is not None:
            candidates = self._relationships.get(name)
            if not candidates:
                raise IntegrityError(f"relationship {name!r} is not in the schema")
            source_labels = self._labels_by_node.get(source, set())
            target_labels = self._labels_by_node.get(target, set())
            matched = None
            for allowed_source, allowed_target, declared in candidates:
                if (not allowed_source or source_labels & allowed_source) and (
                    not allowed_target or target_labels & allowed_target
                ):
                    matched = declared
                    break
            if matched is None:
                raise IntegrityError(
                    f"relationship {name!r} not allowed between "
                    f"{sorted(source_labels)} and {sorted(target_labels)}"
                )
            for prop_name in properties:
                if prop_name not in matched:
                    raise IntegrityError(
                        f"property {prop_name!r} not declared on {name!r}"
                    )
        edge = self.graph.add_edge(source, target, name, **properties)
        if self.tracer is not None:
            self.tracer.count("deploy.relationships_written", 1)
        return edge

    def delete_relationship(
        self,
        source: Any,
        target: Any,
        name: str,
        properties: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Delete one relationship matching endpoints, label, and (when
        given) properties; returns False when no match exists.

        Deleting bumps the underlying graph's mutation epoch, so it must
        not run between a structural savepoint and its rollback — the
        delta-flush path therefore applies removals *before* opening the
        insert savepoint.
        """
        for edge in self.graph.out_edges(source, name):
            if edge.target != target:
                continue
            if properties is not None and edge.properties != properties:
                continue
            self.graph.remove_edge(edge.id)
            if self.tracer is not None:
                self.tracer.count("deploy.relationships_removed", 1)
            return True
        return False

    def delete_node(self, node_id: Any) -> bool:
        """Delete a node, its incident relationships, and its index
        entries; returns False when the node is unknown."""
        if not self.graph.has_node(node_id):
            return False
        node = self.graph.node(node_id)
        labels = self._labels_by_node.pop(node_id, set())
        for (label, prop_name), index in self._unique.items():
            if label in labels and prop_name in node.properties:
                value = node.properties[prop_name]
                if index.get(value) == node_id:
                    del index[value]
        self.graph.remove_node(node_id)
        if self.tracer is not None:
            self.tracer.count("deploy.nodes_removed", 1)
        return True

    def update_node_properties(
        self, node_id: Any, properties: Dict[str, Any]
    ) -> None:
        """Replace a node's properties in place, revalidating them."""
        node = self.graph.node(node_id)
        labels = self._labels_by_node.get(node_id, {node.label})
        if self._schema is not None:
            declared: Dict[str, Any] = {}
            for label in labels:
                declared.update(self._node_properties.get(label, {}))
            for name in properties:
                if name not in declared:
                    raise IntegrityError(
                        f"property {name!r} not declared for labels "
                        f"{sorted(labels)}"
                    )
        for (label, prop_name), index in self._unique.items():
            if label not in labels:
                continue
            old_value = node.properties.get(prop_name)
            new_value = properties.get(prop_name)
            if old_value == new_value:
                continue
            if new_value is not None and index.get(new_value) not in (
                None, node_id
            ):
                raise IntegrityError(
                    f"unique constraint on {label}.{prop_name} "
                    f"violated by {new_value!r}"
                )
            if old_value is not None and index.get(old_value) == node_id:
                del index[old_value]
            if new_value is not None:
                index[new_value] = node_id
        node.properties.clear()
        node.properties.update(properties)

    def apply_flush_delta(
        self, delta: FlushDelta, schema: Any = None
    ) -> DeltaFlushReport:
        """Bring a previously loaded store up to date with a
        :class:`~repro.deploy.delta.FlushDelta` instead of a full reload.

        ``schema`` (a :class:`~repro.core.schema.SuperSchema`) enables
        the same multi-label tagging the full loader applies; without it
        added nodes get their type name as the only label.  Removals and
        in-place updates run first — structural savepoints assume
        insert-only mutation, so the insert batch alone is guarded: an
        integrity violation rolls the inserts back and re-raises, while
        the destructive half (which cannot violate integrity) stays.
        """
        report = DeltaFlushReport()
        for edge_id, source, target, label, properties in delta.removed_edges:
            if self.delete_relationship(source, target, label, properties):
                report.edges_removed += 1
            else:
                report.skipped += 1
        for node_id, _label, _properties in delta.removed_nodes:
            if self.delete_node(node_id):
                report.nodes_removed += 1
            else:
                report.skipped += 1
        for node_id, _label, properties, _old in delta.updated_nodes:
            if not self.graph.has_node(node_id):
                report.skipped += 1
                continue
            self.update_node_properties(node_id, properties)
            report.nodes_updated += 1
        savepoint = self.savepoint()
        try:
            for node_id, label, properties in delta.added_nodes:
                if self.graph.has_node(node_id):
                    report.skipped += 1
                    continue
                labels: Any = [label]
                if schema is not None and schema.has_node(label):
                    sm_node = schema.get_node(label)
                    labels = [sm_node.type_name] + [
                        a.type_name for a in schema.ancestors_of(sm_node)
                    ]
                self.create_node(node_id, labels, **properties)
                report.nodes_added += 1
            for _edge_id, source, target, label, properties in delta.added_edges:
                self.create_relationship(source, target, label, **properties)
                report.edges_added += 1
        except (DeploymentError, GraphError):
            # DeploymentError covers IntegrityError *and* the transient
            # class: an injected/transient fault mid-insert must roll the
            # partial batch back too, or a retry replays onto dirty state.
            self.rollback_to(savepoint)
            if self.tracer is not None:
                self.tracer.count("deploy.rollbacks", 1)
            raise
        finally:
            self.release(savepoint)
        if self.tracer is not None:
            self.tracer.count("incr.flushed_delta", report.applied)
        return report

    def labels_of(self, node_id: Any) -> Set[str]:
        return set(self._labels_by_node.get(node_id, set()))

    def nodes_with_label(self, label: str) -> Iterator[Node]:
        for node_id, labels in self._labels_by_node.items():
            if label in labels:
                yield self.graph.node(node_id)

    # ------------------------------------------------------------------
    # @input extraction (Source protocol)
    # ------------------------------------------------------------------
    def catalog(self) -> GraphCatalog:
        """Catalog derived from the deployed schema (declared order)."""
        catalog = GraphCatalog()
        for label, properties in self._node_properties.items():
            catalog.extend_node(label, sorted(properties))
        for name, variants in self._relationships.items():
            names: Set[str] = set()
            for _, _, declared in variants:
                names |= set(declared)
            catalog.extend_edge(name, sorted(names))
        return catalog

    def extract(self, query: str) -> Iterator[Tuple[Any, ...]]:
        """Execute an MTV-style extraction query."""
        query = query.strip()
        node_match = _NODE_QUERY_RE.match(query)
        catalog = self.catalog()
        if node_match:
            label = node_match.group(1)
            names = catalog.node_properties.get(label, [])
            for node in self.nodes_with_label(label):
                yield (node.id, *(node.properties.get(n) for n in names))
            return
        edge_match = _EDGE_QUERY_RE.match(query)
        if edge_match:
            label = edge_match.group(1)
            names = catalog.edge_properties.get(label, [])
            for edge in self.graph.edges(label):
                yield (
                    edge.id, edge.source, edge.target,
                    *(edge.properties.get(n) for n in names),
                )
            return
        raise DeploymentError(f"unsupported extraction query {query!r}")

    def __repr__(self) -> str:
        return (
            f"GraphStore({self.name!r}, nodes={self.graph.node_count}, "
            f"edges={self.graph.edge_count})"
        )
