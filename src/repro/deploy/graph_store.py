"""A schema-enforcing in-memory property-graph store.

Section 5: "for schema-less systems, like graph databases, schemas can
be enforced with ad-hoc methodologies [21]".  This store is such a
methodology in miniature: it accepts a translated
:class:`~repro.models.property_graph.PGSchema` and validates every
mutation against it — allowed labels, relationship endpoint labels,
declared properties, mandatory properties, and uniqueness constraints.

The store implements the ``@input`` :class:`~repro.vadalog.annotations.Source`
protocol using exactly the Cypher-like query shapes MTV emits
(Example 4.4): ``(n:Business) return n`` extracts node facts,
``(a)-[e:OWNS]->(b) return (e, a, b)`` extracts edge facts, laid out per
the store's catalog.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import DeploymentError, IntegrityError, ModelError
from repro.graph.property_graph import Edge, Node, PropertyGraph
from repro.metalog.analysis import GraphCatalog
from repro.models.property_graph import PGSchema
from repro.obs.tracer import Tracer

_NODE_QUERY_RE = re.compile(r"^\(\s*\w*\s*:\s*(\w+)\s*\)\s*return\s+\w+$", re.IGNORECASE)
_EDGE_QUERY_RE = re.compile(
    r"^\(\s*\w*\s*\)\s*-\s*\[\s*\w*\s*:\s*(\w+)\s*\]\s*->\s*\(\s*\w*\s*\)\s*"
    r"return\s*\(.*\)$",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class StructuralSavepoint:
    """A size watermark over the store's insertion-ordered state.

    The graph store only ever *inserts* (nodes, edges, unique-index
    entries), so a savepoint needs no per-mutation undo journal: rolling
    back pops each structure down to its recorded size.  Savepoints cost
    O(1) to open and nest trivially — an inner rollback restores a later
    watermark, the outer one an earlier watermark.

    The insert-only assumption is *checked*, not trusted: the graph mark
    embeds the underlying graph's mutation epoch, so if anything deleted
    from the graph behind the store's back, ``rollback_to`` raises
    :class:`~repro.errors.DeploymentError` instead of corrupting state.
    """

    graph_mark: Tuple[int, int, int]
    unique_marks: Tuple[Tuple[Tuple[str, str], int], ...]
    labels_mark: int


class GraphStore:
    """An in-memory graph database enforcing a PG-model schema."""

    def __init__(self, name: str = "graph-store", tracer: Optional[Tracer] = None):
        self.name = name
        self.tracer = tracer
        self.graph = PropertyGraph(name)
        self._schema: Optional[PGSchema] = None
        self._node_properties: Dict[str, Dict[str, Any]] = {}
        self._relationships: Dict[str, List[Tuple[Set[str], Set[str], Dict[str, Any]]]] = {}
        self._unique: Dict[Tuple[str, str], Dict[Any, Any]] = {}
        self._labels_by_node: Dict[Any, Set[str]] = {}

    # ------------------------------------------------------------------
    # Savepoint protocol (savepoint / rollback_to / release)
    # ------------------------------------------------------------------
    def savepoint(self) -> StructuralSavepoint:
        """Open a savepoint; pair with :meth:`rollback_to` / :meth:`release`."""
        return StructuralSavepoint(
            self.graph.insertion_mark(),
            tuple((key, len(index)) for key, index in self._unique.items()),
            len(self._labels_by_node),
        )

    def rollback_to(self, savepoint: StructuralSavepoint) -> int:
        """Undo every mutation made since ``savepoint``."""
        undone = self.graph.rollback_to_mark(savepoint.graph_mark)
        while len(self._labels_by_node) > savepoint.labels_mark:
            self._labels_by_node.popitem()
        for key, mark in savepoint.unique_marks:
            index = self._unique[key]
            while len(index) > mark:
                index.popitem()
        return undone

    def release(self, savepoint: StructuralSavepoint) -> None:
        """Commit a savepoint — nothing accumulates, so this is free."""

    # ------------------------------------------------------------------
    # Schema deployment
    # ------------------------------------------------------------------
    def deploy(self, schema: PGSchema) -> None:
        """Enforce a translated PG schema from now on."""
        if self._schema is not None:
            raise DeploymentError("a schema is already deployed")
        self._schema = schema
        for node_class in schema.node_classes:
            # Property declarations key off the class's own (primary)
            # label; the extra accumulated labels only mark membership.
            properties = {p.name: p for p in node_class.properties}
            self._node_properties[node_class.primary_label] = properties
            for label in node_class.labels[1:]:
                self._node_properties.setdefault(label, {})
        for relationship in schema.relationship_classes:
            try:
                source_labels = set(
                    schema.node_class_by_oid(relationship.source_oid).labels
                )
                target_labels = set(
                    schema.node_class_by_oid(relationship.target_oid).labels
                )
            except ModelError as exc:
                # A relationship class pointing at a node-class OID the
                # schema does not define is a broken translation, not a
                # constraint-free relationship.
                raise DeploymentError(
                    f"relationship {relationship.name!r} has a dangling "
                    f"endpoint OID: {exc}"
                ) from exc
            self._relationships.setdefault(relationship.name, []).append(
                (
                    source_labels,
                    target_labels,
                    {p.name: p for p in relationship.properties},
                )
            )
        for label, prop in schema.unique_constraints():
            self._unique[(label, prop)] = {}

    @property
    def schema(self) -> Optional[PGSchema]:
        return self._schema

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def create_node(
        self, node_id: Any, labels, **properties: Any
    ) -> Node:
        """Create a node with one or more labels (multi-tagging)."""
        if isinstance(labels, str):
            labels = [labels]
        labels = list(labels)
        if not labels:
            raise IntegrityError("a node needs at least one label")
        if self._schema is not None:
            for label in labels:
                if label not in self._node_properties:
                    raise IntegrityError(f"label {label!r} is not in the schema")
            declared: Dict[str, Any] = {}
            for label in labels:
                declared.update(self._node_properties[label])
            for name in properties:
                if name not in declared:
                    raise IntegrityError(
                        f"property {name!r} not declared for labels {labels}"
                    )
            for name, prop in declared.items():
                if prop.optional or prop.intensional:
                    continue  # intensional values appear after reasoning
                if name not in properties:
                    raise IntegrityError(
                        f"mandatory property {name!r} missing for {labels}"
                    )
            for (label, prop_name), index in self._unique.items():
                if label in labels and prop_name in properties:
                    value = properties[prop_name]
                    if value in index:
                        raise IntegrityError(
                            f"unique constraint on {label}.{prop_name} "
                            f"violated by {value!r}"
                        )
        node = self.graph.add_node(node_id, labels[0], **properties)
        self._labels_by_node[node.id] = set(labels)
        for (label, prop_name), index in self._unique.items():
            if label in labels and prop_name in properties:
                index[properties[prop_name]] = node.id
        if self.tracer is not None:
            self.tracer.count("deploy.nodes_written", 1)
        return node

    def create_relationship(
        self, source: Any, target: Any, name: str, **properties: Any
    ) -> Edge:
        if self._schema is not None:
            candidates = self._relationships.get(name)
            if not candidates:
                raise IntegrityError(f"relationship {name!r} is not in the schema")
            source_labels = self._labels_by_node.get(source, set())
            target_labels = self._labels_by_node.get(target, set())
            matched = None
            for allowed_source, allowed_target, declared in candidates:
                if (not allowed_source or source_labels & allowed_source) and (
                    not allowed_target or target_labels & allowed_target
                ):
                    matched = declared
                    break
            if matched is None:
                raise IntegrityError(
                    f"relationship {name!r} not allowed between "
                    f"{sorted(source_labels)} and {sorted(target_labels)}"
                )
            for prop_name in properties:
                if prop_name not in matched:
                    raise IntegrityError(
                        f"property {prop_name!r} not declared on {name!r}"
                    )
        edge = self.graph.add_edge(source, target, name, **properties)
        if self.tracer is not None:
            self.tracer.count("deploy.relationships_written", 1)
        return edge

    def labels_of(self, node_id: Any) -> Set[str]:
        return set(self._labels_by_node.get(node_id, set()))

    def nodes_with_label(self, label: str) -> Iterator[Node]:
        for node_id, labels in self._labels_by_node.items():
            if label in labels:
                yield self.graph.node(node_id)

    # ------------------------------------------------------------------
    # @input extraction (Source protocol)
    # ------------------------------------------------------------------
    def catalog(self) -> GraphCatalog:
        """Catalog derived from the deployed schema (declared order)."""
        catalog = GraphCatalog()
        for label, properties in self._node_properties.items():
            catalog.extend_node(label, sorted(properties))
        for name, variants in self._relationships.items():
            names: Set[str] = set()
            for _, _, declared in variants:
                names |= set(declared)
            catalog.extend_edge(name, sorted(names))
        return catalog

    def extract(self, query: str) -> Iterator[Tuple[Any, ...]]:
        """Execute an MTV-style extraction query."""
        query = query.strip()
        node_match = _NODE_QUERY_RE.match(query)
        catalog = self.catalog()
        if node_match:
            label = node_match.group(1)
            names = catalog.node_properties.get(label, [])
            for node in self.nodes_with_label(label):
                yield (node.id, *(node.properties.get(n) for n in names))
            return
        edge_match = _EDGE_QUERY_RE.match(query)
        if edge_match:
            label = edge_match.group(1)
            names = catalog.edge_properties.get(label, [])
            for edge in self.graph.edges(label):
                yield (
                    edge.id, edge.source, edge.target,
                    *(edge.properties.get(n) for n in names),
                )
            return
        raise DeploymentError(f"unsupported extraction query {query!r}")

    def __repr__(self) -> str:
        return (
            f"GraphStore({self.name!r}, nodes={self.graph.node_count}, "
            f"edges={self.graph.edge_count})"
        )
