"""Cypher-style schema enforcement scripts for PG targets.

Real property-graph systems are schema-less; Section 5 points to
"ad-hoc methodologies [21]" for enforcement.  The practical ad-hoc
methodology on Neo4J-like systems is a script of constraint DDL plus
existence checks; :func:`generate_cypher_constraints` emits it from a
translated :class:`~repro.models.property_graph.PGSchema`.
"""

from __future__ import annotations

from typing import List

from repro.models.property_graph import PGSchema


def generate_cypher_constraints(schema: PGSchema) -> str:
    """Render uniqueness and existence constraints for ``schema``."""
    statements: List[str] = []
    for label, prop in schema.unique_constraints():
        statements.append(
            f"CREATE CONSTRAINT unique_{label}_{prop} IF NOT EXISTS "
            f"FOR (n:{label}) REQUIRE n.{prop} IS UNIQUE;"
        )
    for node_class in schema.node_classes:
        label = node_class.primary_label
        for prop in node_class.properties:
            if prop.optional or prop.intensional:
                continue
            statements.append(
                f"CREATE CONSTRAINT exists_{label}_{prop.name} IF NOT EXISTS "
                f"FOR (n:{label}) REQUIRE n.{prop.name} IS NOT NULL;"
            )
    return "\n".join(statements) + "\n"


def generate_label_documentation(schema: PGSchema) -> str:
    """A human-readable summary of labels and relationship types."""
    lines: List[str] = ["// node classes (primary label: all labels)"]
    for node_class in schema.node_classes:
        properties = ", ".join(
            p.name + ("?" if p.optional else "") for p in node_class.properties
        )
        labels = ":".join(node_class.labels)
        lines.append(f"// (:{labels}) {{{properties}}}")
    lines.append("// relationship classes")
    seen = set()
    for relationship in schema.relationship_classes:
        properties = ", ".join(p.name for p in relationship.properties)
        key = (relationship.name, properties)
        if key in seen:
            continue
        seen.add(key)
        lines.append(f"// -[:{relationship.name} {{{properties}}}]->")
    return "\n".join(lines) + "\n"
