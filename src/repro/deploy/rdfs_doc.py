"""RDF-S document generation (Turtle syntax).

Section 5: "for RDF stores, schemas can be rendered as RDF-S (RDF
Schema) documents, to be validated by dedicated tools".
"""

from __future__ import annotations

from typing import List

from repro.models.rdf import RDFSchema

_XSD_TYPES = {
    "string": "xsd:string",
    "int": "xsd:integer",
    "float": "xsd:double",
    "bool": "xsd:boolean",
    "date": "xsd:date",
}


def generate_rdfs(schema: RDFSchema, prefix: str = "kg") -> str:
    """Render an RDF-S document in Turtle for a translated RDF schema."""
    lines: List[str] = [
        "@prefix rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .",
        "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .",
        "@prefix xsd:  <http://www.w3.org/2001/XMLSchema#> .",
        f"@prefix {prefix}:   <urn:kgmodel:{schema.schema_oid}#> .",
        "",
    ]
    for rdf_class in schema.classes:
        lines.append(f"{prefix}:{rdf_class.name} a rdfs:Class .")
    subclass_pairs = set(schema.subclass_of)
    for child, parent in sorted(subclass_pairs):
        lines.append(f"{prefix}:{child} rdfs:subClassOf {prefix}:{parent} .")
    lines.append("")
    for prop in schema.datatype_properties:
        xsd = _XSD_TYPES.get(prop.data_type, "xsd:string")
        lines.append(
            f"{prefix}:{prop.name} a rdf:Property ;\n"
            f"    rdfs:domain {prefix}:{prop.domain} ;\n"
            f"    rdfs:range  {xsd} ."
        )
    lines.append("")
    for prop in schema.object_properties:
        lines.append(
            f"{prefix}:{prop.name} a rdf:Property ;\n"
            f"    rdfs:domain {prefix}:{prop.domain} ;\n"
            f"    rdfs:range  {prefix}:{prop.range} ."
        )
    return "\n".join(lines) + "\n"
