"""SQL DDL generation (and a matching mini-parser) for relational schemas.

Section 5: translated schemas "can be rendered as DDL statements, which
include the respective constraints such as keys, foreign keys, domain
constraints".  :func:`generate_ddl` renders a
:class:`~repro.models.relational.RelationalSchema` as portable SQL;
:func:`parse_ddl` reads the same dialect back (useful for round-trip
tests and for deploying textual DDL into the in-memory engine).
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.errors import DeploymentError, ParseError
from repro.models.relational import Column, ForeignKey, RelationalSchema, Table

_SQL_TYPES = {
    "string": "VARCHAR(255)",
    "int": "INTEGER",
    "float": "DOUBLE PRECISION",
    "bool": "BOOLEAN",
    "date": "DATE",
}
_SQL_TYPES_BACK = {v: k for k, v in _SQL_TYPES.items()}


def generate_ddl(schema: RelationalSchema) -> str:
    """Render CREATE TABLE / ALTER TABLE statements for ``schema``."""
    statements: List[str] = []
    for name in sorted(schema.tables):
        table = schema.tables[name]
        lines: List[str] = []
        for column in table.columns:
            sql_type = _SQL_TYPES.get(column.data_type, "VARCHAR(255)")
            null = "" if column.optional else " NOT NULL"
            lines.append(f"    {column.name} {sql_type}{null}")
        pk = table.primary_key()
        if pk:
            lines.append(f"    PRIMARY KEY ({', '.join(pk)})")
        statements.append(
            f"CREATE TABLE {table.name} (\n" + ",\n".join(lines) + "\n);"
        )
    for fk in schema.foreign_keys:
        if not fk.source_columns:
            continue  # unkeyed target: constraint cannot be expressed
        statements.append(
            f"ALTER TABLE {fk.source_table} ADD CONSTRAINT {fk.name} "
            f"FOREIGN KEY ({', '.join(fk.source_columns)}) "
            f"REFERENCES {fk.target_table} ({', '.join(fk.target_columns)});"
        )
    return "\n\n".join(statements) + "\n"


_CREATE_RE = re.compile(
    r"CREATE\s+TABLE\s+(\w+)\s*\((.*?)\)\s*;", re.IGNORECASE | re.DOTALL
)
_FK_RE = re.compile(
    r"ALTER\s+TABLE\s+(\w+)\s+ADD\s+CONSTRAINT\s+(\w+)\s+FOREIGN\s+KEY\s*"
    r"\(([^)]*)\)\s*REFERENCES\s+(\w+)\s*\(([^)]*)\)\s*;",
    re.IGNORECASE,
)


def parse_ddl(text: str) -> RelationalSchema:
    """Parse the dialect produced by :func:`generate_ddl`."""
    schema = RelationalSchema(schema_oid="ddl")
    for match in _CREATE_RE.finditer(text):
        table_name, body = match.group(1), match.group(2)
        columns: List[Column] = []
        pk: List[str] = []
        for piece in _split_top_level(body):
            piece = piece.strip()
            if not piece:
                continue
            upper = piece.upper()
            if upper.startswith("PRIMARY KEY"):
                inner = piece[piece.index("(") + 1 : piece.rindex(")")]
                pk = [c.strip() for c in inner.split(",")]
                continue
            parts = piece.split()
            if len(parts) < 2:
                raise ParseError(f"bad column declaration {piece!r}")
            name = parts[0]
            type_tokens = parts[1:]
            optional = "NOT NULL" not in upper
            if not optional:
                type_tokens = type_tokens[:-2]  # strip NOT NULL
            sql_type = " ".join(type_tokens)
            if sql_type.upper().startswith("VARCHAR"):
                data_type = "string"
            else:
                data_type = _SQL_TYPES_BACK.get(sql_type.upper(), "string")
            columns.append(Column(name, data_type, optional=optional))
        for column in columns:
            if column.name in pk:
                column.is_pk = True
                column.optional = False
        schema.tables[table_name] = Table(table_name, columns)
    for match in _FK_RE.finditer(text):
        source, name, source_cols, target, target_cols = match.groups()
        schema.foreign_keys.append(
            ForeignKey(
                name,
                source,
                [c.strip() for c in source_cols.split(",") if c.strip()],
                target,
                [c.strip() for c in target_cols.split(",") if c.strip()],
            )
        )
    return schema


def _split_top_level(text: str) -> List[str]:
    """Split on commas that are not nested in parentheses."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts
