"""A small in-memory relational engine used as a deployment target.

Section 5: "for relational systems, [schemas] can be rendered as DDL
statements, which include the respective constraints such as keys,
foreign keys, domain constraints, and so on".  This engine *enforces*
what the SSST generates: primary keys, NOT NULL, UNIQUE, and foreign
keys, plus loose domain checking on the declared column types.

It also implements the :class:`repro.vadalog.annotations.Source`
protocol, so ``@input`` annotations can pull facts straight out of a
deployed database (``extract("Business")`` yields the rows of the
``Business`` table in column order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.deploy.transactions import SavepointMixin, UndoLog
from repro.errors import DeploymentError, IntegrityError
from repro.models.relational import Column, ForeignKey, RelationalSchema, Table
from repro.obs.tracer import Tracer

#: Loose domain checks per declared column type.
_TYPE_CHECKS = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "bool": lambda v: isinstance(v, bool),
    "string": lambda v: isinstance(v, str),
    "date": lambda v: isinstance(v, str),
}


@dataclass
class _StoredTable:
    table: Table
    rows: List[Dict[str, Any]] = field(default_factory=list)
    pk_index: Dict[Tuple[Any, ...], int] = field(default_factory=dict)
    unique_indexes: Dict[str, Dict[Any, int]] = field(default_factory=dict)


class RelationalEngine(SavepointMixin):
    """An in-memory RDBMS enforcing the translated schema."""

    def __init__(self, name: str = "rdbms", tracer: Optional[Tracer] = None):
        self.name = name
        self.tracer = tracer
        self._tables: Dict[str, _StoredTable] = {}
        self._foreign_keys: List[ForeignKey] = []
        self._deferred: bool = False
        self._undo = UndoLog()

    # ------------------------------------------------------------------
    # Schema deployment
    # ------------------------------------------------------------------
    def deploy(self, schema: RelationalSchema) -> None:
        """Create every table and register the foreign keys."""
        for table in schema.tables.values():
            self.create_table(table)
        for foreign_key in schema.foreign_keys:
            self.add_foreign_key(foreign_key)

    def create_table(self, table: Table) -> None:
        if table.name in self._tables:
            raise DeploymentError(f"table {table.name!r} already exists")
        self._tables[table.name] = _StoredTable(table)

    def add_foreign_key(self, foreign_key: ForeignKey) -> None:
        for table_name in (foreign_key.source_table, foreign_key.target_table):
            if table_name not in self._tables:
                raise DeploymentError(
                    f"foreign key {foreign_key.name!r} references unknown "
                    f"table {table_name!r}"
                )
        self._foreign_keys.append(foreign_key)

    def tables(self) -> List[str]:
        return sorted(self._tables)

    def foreign_keys(self) -> List[ForeignKey]:
        """The deployed foreign keys (delta appliers order deletes by
        them: referencing tables must empty out before referenced ones)."""
        return list(self._foreign_keys)

    def table_schema(self, name: str) -> Table:
        return self._stored(name).table

    # ------------------------------------------------------------------
    # Data manipulation
    # ------------------------------------------------------------------
    def insert(self, table_name: str, **values: Any) -> None:
        """Insert one row, enforcing every declared constraint."""
        stored = self._stored(table_name)
        table = stored.table
        row: Dict[str, Any] = {}
        known = {c.name for c in table.columns}
        for column_name in values:
            if column_name not in known:
                raise IntegrityError(
                    f"{table_name}: unknown column {column_name!r}"
                )
        for column in table.columns:
            value = values.get(column.name)
            if value is None:
                if column.is_pk or not column.optional:
                    raise IntegrityError(
                        f"{table_name}.{column.name}: NULL violates "
                        f"{'PRIMARY KEY' if column.is_pk else 'NOT NULL'}"
                    )
            else:
                check = _TYPE_CHECKS.get(column.data_type)
                if check is not None and not check(value):
                    raise IntegrityError(
                        f"{table_name}.{column.name}: value {value!r} "
                        f"violates domain {column.data_type!r}"
                    )
            row[column.name] = value
        pk_columns = table.primary_key()
        if pk_columns:
            key = tuple(row[c] for c in pk_columns)
            if key in stored.pk_index:
                raise IntegrityError(
                    f"{table_name}: duplicate primary key {key!r}"
                )
        if not self._deferred:
            self._check_row_references(table_name, row)
        stored.rows.append(row)
        pk_key = tuple(row[c] for c in pk_columns) if pk_columns else None
        if pk_columns:
            stored.pk_index[pk_key] = len(stored.rows) - 1
        if self._undo.active:
            self._undo.record(
                lambda s=stored, r=row, k=pk_key: self._undo_insert(s, r, k)
            )
        if self.tracer is not None:
            self.tracer.count("deploy.rows_written", 1)

    @staticmethod
    def _undo_insert(
        stored: _StoredTable, row: Dict[str, Any], pk_key: Optional[Tuple[Any, ...]]
    ) -> None:
        # Undo entries run newest-first, so the row is the table's last.
        if stored.rows and stored.rows[-1] is row:
            stored.rows.pop()
        else:  # pragma: no cover - defensive, reverse order guarantees tail
            stored.rows.remove(row)
        if pk_key is not None:
            stored.pk_index.pop(pk_key, None)

    def insert_many(self, table_name: str, rows: Iterable[Dict[str, Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(table_name, **row)
            count += 1
        return count

    def delete(self, table_name: str, **values: Any) -> int:
        """Delete every row matching the given column values exactly.

        Rows referenced by a foreign key from a remaining row raise
        :class:`~repro.errors.IntegrityError` (RESTRICT semantics), so a
        delta cannot silently orphan references.  Deletions are
        undo-logged — inside a savepoint a rollback restores the rows —
        and the positional primary-key index is rebuilt after each
        change.  Returns the number of rows removed.
        """
        stored = self._stored(table_name)
        survivors: List[Dict[str, Any]] = []
        removed: List[Dict[str, Any]] = []
        for row in stored.rows:
            if all(row.get(k) == v for k, v in values.items()):
                removed.append(row)
            else:
                survivors.append(row)
        if not removed:
            return 0
        previous = stored.rows
        stored.rows = survivors
        # Reference checks resolve targets through the pk index, so it
        # must reflect the removal before RESTRICT is evaluated.
        self._reindex(stored)
        try:
            for foreign_key in self._foreign_keys:
                if foreign_key.target_table != table_name:
                    continue
                source = self._stored(foreign_key.source_table)
                for row in source.rows:
                    self._check_reference(foreign_key, row)
        except IntegrityError:
            stored.rows = previous
            self._reindex(stored)
            raise
        if self._undo.active:
            self._undo.record(
                lambda s=stored, rows=previous: self._undo_delete(s, rows)
            )
        if self.tracer is not None:
            self.tracer.count("deploy.rows_removed", len(removed))
        return len(removed)

    def _undo_delete(
        self, stored: _StoredTable, rows: List[Dict[str, Any]]
    ) -> None:
        stored.rows = rows
        self._reindex(stored)

    @staticmethod
    def _reindex(stored: _StoredTable) -> None:
        """Rebuild the positional primary-key index after a deletion."""
        pk_columns = stored.table.primary_key()
        stored.pk_index = (
            {
                tuple(row[c] for c in pk_columns): position
                for position, row in enumerate(stored.rows)
            }
            if pk_columns
            else {}
        )

    def apply_flush_delta(
        self,
        added: Optional[Dict[str, List[Dict[str, Any]]]] = None,
        removed: Optional[Dict[str, List[Dict[str, Any]]]] = None,
    ) -> Dict[str, int]:
        """Apply a row-level delta (table name -> rows) transactionally.

        Removals run first (so a changed row expressed as remove+insert
        does not trip its own primary key), then the inserts — all under
        one savepoint: both mutation kinds are undo-logged, so any
        constraint violation rolls the whole delta back.  Returns
        ``{"inserted": n, "deleted": m}``.
        """
        counts = {"inserted": 0, "deleted": 0}
        savepoint = self.savepoint()
        try:
            for table_name, rows in (removed or {}).items():
                for row in rows:
                    counts["deleted"] += self.delete(table_name, **row)
            for table_name, rows in (added or {}).items():
                for row in rows:
                    self.insert(table_name, **row)
                    counts["inserted"] += 1
        except (IntegrityError, DeploymentError):
            self.rollback_to(savepoint)
            if self.tracer is not None:
                self.tracer.count("deploy.rollbacks", 1)
            raise
        finally:
            self.release(savepoint)
        if self.tracer is not None:
            self.tracer.count(
                "incr.flushed_delta", counts["inserted"] + counts["deleted"]
            )
        return counts

    class _DeferredConstraints:
        def __init__(self, engine: "RelationalEngine"):
            self.engine = engine

        def __enter__(self):
            self.engine._deferred = True
            return self.engine

        def __exit__(self, exc_type, exc, tb):
            self.engine._deferred = False
            if exc_type is None:
                self.engine.check_integrity()
            return False

    def deferred(self) -> "_DeferredConstraints":
        """Context manager deferring FK checks to the end of the block
        (needed for cyclic references and bulk loads)."""
        return RelationalEngine._DeferredConstraints(self)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def _check_row_references(self, table_name: str, row: Dict[str, Any]) -> None:
        for foreign_key in self._foreign_keys:
            if foreign_key.source_table != table_name:
                continue
            self._check_reference(foreign_key, row)

    def _check_reference(self, foreign_key: ForeignKey, row: Dict[str, Any]) -> None:
        values = tuple(row.get(c) for c in foreign_key.source_columns)
        if not values or any(v is None for v in values):
            return  # NULL references are permitted (optional edges)
        target = self._stored(foreign_key.target_table)
        pk_columns = target.table.primary_key()
        if pk_columns == foreign_key.target_columns and target.pk_index:
            if values in target.pk_index:
                return
        else:
            for candidate in target.rows:
                if tuple(candidate.get(c) for c in foreign_key.target_columns) == values:
                    return
        raise IntegrityError(
            f"{foreign_key.source_table}: foreign key {foreign_key.name!r} "
            f"value {values!r} has no match in {foreign_key.target_table!r}"
        )

    def check_integrity(self) -> None:
        """Re-validate every foreign key (used after deferred loads)."""
        for foreign_key in self._foreign_keys:
            stored = self._stored(foreign_key.source_table)
            for row in stored.rows:
                self._check_reference(foreign_key, row)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rows(self, table_name: str) -> List[Dict[str, Any]]:
        return [dict(r) for r in self._stored(table_name).rows]

    def count(self, table_name: str) -> int:
        return len(self._stored(table_name).rows)

    def select(
        self, table_name: str, **equals: Any
    ) -> Iterator[Dict[str, Any]]:
        for row in self._stored(table_name).rows:
            if all(row.get(k) == v for k, v in equals.items()):
                yield dict(row)

    def extract(self, query: str) -> Iterator[Tuple[Any, ...]]:
        """Source protocol: ``extract("Table")`` or
        ``extract("Table(col1, col2)")`` yields tuples."""
        query = query.strip()
        if "(" in query:
            name, _, rest = query.partition("(")
            columns = [c.strip() for c in rest.rstrip(")").split(",") if c.strip()]
        else:
            name = query
            columns = None
        stored = self._stored(name.strip())
        if columns is None:
            columns = [c.name for c in stored.table.columns]
        for row in stored.rows:
            yield tuple(row.get(c) for c in columns)

    def _stored(self, table_name: str) -> _StoredTable:
        stored = self._tables.get(table_name)
        if stored is None:
            raise DeploymentError(f"unknown table {table_name!r}")
        return stored

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}:{len(t.rows)}" for n, t in sorted(self._tables.items()))
        return f"RelationalEngine({self.name!r}, {parts})"
