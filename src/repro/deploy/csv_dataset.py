"""A CSV dataset target: serialize instances as plain CSV files.

Deployment target for the CSV model: one in-memory "file" per translated
``CSVFile`` with its declared header; rows are validated against the
header (extra keys rejected, everything else is stringly-typed — that is
the point of the CSV model).  Rendering produces standard RFC-4180-ish
text via :mod:`csv`; parsing reads it back; ``extract`` implements the
:class:`~repro.vadalog.annotations.Source` protocol.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import DeploymentError, IntegrityError
from repro.models.csvmodel import CSVSchema


class CSVDataset:
    """An in-memory collection of CSV files conforming to a CSV schema."""

    def __init__(self, name: str = "csv-dataset"):
        self.name = name
        self._schema: Optional[CSVSchema] = None
        self._rows: Dict[str, List[List[Any]]] = {}

    def deploy(self, schema: CSVSchema) -> None:
        if self._schema is not None:
            raise DeploymentError("a schema is already deployed")
        self._schema = schema
        for file_name in schema.files:
            self._rows[file_name] = []

    def _header(self, file_name: str) -> List[str]:
        if self._schema is None:
            raise DeploymentError("no schema deployed")
        return self._schema.file(file_name).header()

    # ------------------------------------------------------------------
    def append(self, file_name: str, **values: Any) -> None:
        """Add one row; unknown columns are rejected, missing ones empty."""
        header = self._header(file_name)
        unknown = set(values) - set(header)
        if unknown:
            raise IntegrityError(
                f"{file_name}: unknown columns {sorted(unknown)}"
            )
        self._rows[file_name].append([values.get(c) for c in header])

    def count(self, file_name: str) -> int:
        self._header(file_name)
        return len(self._rows[file_name])

    def rows(self, file_name: str) -> List[Dict[str, Any]]:
        header = self._header(file_name)
        return [dict(zip(header, row)) for row in self._rows[file_name]]

    # ------------------------------------------------------------------
    # Text rendering / parsing
    # ------------------------------------------------------------------
    def render(self, file_name: str) -> str:
        """The CSV text of one file, header first."""
        header = self._header(file_name)
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(header)
        for row in self._rows[file_name]:
            writer.writerow(["" if v is None else v for v in row])
        return buffer.getvalue()

    def render_all(self) -> Dict[str, str]:
        """Every file rendered, keyed by ``<name>.csv``."""
        if self._schema is None:
            raise DeploymentError("no schema deployed")
        return {
            f"{name}.csv": self.render(name) for name in sorted(self._schema.files)
        }

    def load_text(self, file_name: str, text: str) -> int:
        """Parse CSV text into a file; the header must match the schema."""
        header = self._header(file_name)
        reader = csv.reader(io.StringIO(text))
        rows = list(reader)
        if not rows:
            return 0
        if rows[0] != header:
            raise IntegrityError(
                f"{file_name}: header {rows[0]} does not match schema "
                f"{header}"
            )
        added = 0
        for row in rows[1:]:
            if len(row) != len(header):
                raise IntegrityError(
                    f"{file_name}: row width {len(row)} != {len(header)}"
                )
            self._rows[file_name].append(
                [None if cell == "" else cell for cell in row]
            )
            added += 1
        return added

    # ------------------------------------------------------------------
    def extract(self, query: str) -> Iterator[Tuple[Any, ...]]:
        """Source protocol: ``extract("File")`` yields row tuples."""
        file_name = query.strip()
        self._header(file_name)
        for row in self._rows[file_name]:
            yield tuple(row)

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}:{len(r)}" for n, r in sorted(self._rows.items()))
        return f"CSVDataset({self.name!r}, {parts})"
