"""SQL pushdown of (parts of) the intensional component.

Section 6, closing remark: "future optimized versions of our system
could delegate part of the reasoning rules to the underlying database
systems, when convenient.  However, this improvement requires care, as
intensional components typically involve ... a complex interplay of
recursion and existential quantification, which can be very laborious or
even impossible to express in target languages."

This module implements exactly that delegation for the expressible
fragment: given the relational translation of a MetaLog rule
(:mod:`repro.ssst.sigma_relational`), each **non-recursive** rule is
rendered as a ``CREATE VIEW`` over the translated tables — joins from
the body atoms, ``WHERE`` from constants and conditions, ``GROUP BY`` +
aggregate for the ``msum``-style assignments.  Rules involved in
recursion (the control fixpoint) are reported as *retained*: they stay
on the chase engine, as the paper predicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import TranslationError
from repro.vadalog.ast import (
    AggregateCall,
    Assignment,
    Atom,
    BinOp,
    Condition,
    FunctionCall,
    NegatedAtom,
    Program,
    Rule,
    TermExpr,
)
from repro.vadalog.stratify import recursive_predicates
from repro.vadalog.terms import Variable, is_variable

_SQL_OPS = {"==": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_AGG_SQL = {
    "sum": "SUM", "msum": "SUM", "count": "COUNT", "mcount": "COUNT",
    "min": "MIN", "mmin": "MIN", "max": "MAX", "mmax": "MAX", "avg": "AVG",
}


@dataclass
class PushdownResult:
    """Outcome of :func:`generate_sql_views`."""

    views: List[str] = field(default_factory=list)
    #: Rules that must stay on the reasoner (recursion or unsupported
    #: features), with the reason.
    retained: List[Tuple[Rule, str]] = field(default_factory=list)

    def sql(self) -> str:
        return "\n\n".join(self.views) + ("\n" if self.views else "")


def generate_sql_views(
    program: Program,
    relational_schema,
    view_prefix: str = "v_",
) -> PushdownResult:
    """Render the expressible rules of a table-level program as SQL views.

    ``program`` is the output of
    :func:`repro.ssst.sigma_relational.translate_sigma_for_relational`;
    ``relational_schema`` provides the column names per table.
    """
    result = PushdownResult()
    recursive = recursive_predicates(program)
    counters: Dict[str, int] = {}
    for rule in program.rules:
        heads = rule.head_predicates()
        if heads & recursive:
            result.retained.append(
                (rule, "recursive rule: not expressible as a plain view")
            )
            continue
        try:
            for head in rule.head:
                counters[head.predicate] = counters.get(head.predicate, 0) + 1
                suffix = (
                    f"_{counters[head.predicate]}"
                    if counters[head.predicate] > 1 else ""
                )
                result.views.append(
                    _render_view(
                        rule, head, relational_schema,
                        f"{view_prefix}{head.predicate}{suffix}",
                    )
                )
        except TranslationError as exc:
            result.retained.append((rule, str(exc)))
    return result


def _columns(relational_schema, table: str) -> List[str]:
    try:
        return [c.name for c in relational_schema.table(table).columns]
    except Exception:
        raise TranslationError(f"unknown table {table!r}") from None


def _render_view(rule: Rule, head: Atom, relational_schema, view_name: str) -> str:
    aliases: List[Tuple[str, str]] = []  # (alias, table)
    #: first SQL expression seen per variable.
    bound: Dict[Variable, str] = {}
    where: List[str] = []

    for i, atom in enumerate(rule.body_atoms()):
        alias = f"t{i}"
        aliases.append((alias, atom.predicate))
        columns = _columns(relational_schema, atom.predicate)
        if len(columns) != len(atom.terms):
            raise TranslationError(
                f"arity mismatch on {atom.predicate!r}"
            )
        for column, term in zip(columns, atom.terms):
            expression = f"{alias}.{column}"
            if is_variable(term):
                if term.name == "_":
                    continue
                if term in bound:
                    where.append(f"{expression} = {bound[term]}")
                else:
                    bound[term] = expression
            elif term is None:
                continue  # unconstrained position
            else:
                where.append(f"{expression} = {_sql_literal(term)}")

    for negated in rule.negated_atoms():
        where.append(_render_not_exists(negated, relational_schema, bound))

    aggregate: Optional[Tuple[Variable, AggregateCall]] = None
    having: List[str] = []
    for literal in rule.body:
        if isinstance(literal, Assignment):
            if literal.is_aggregate:
                call = _find_aggregate(literal.expression)
                aggregate = (literal.target, call)
            else:
                bound[literal.target] = _sql_expression(
                    literal.expression, bound
                )
        elif isinstance(literal, Condition):
            clause = _sql_condition(literal, bound, aggregate)
            if aggregate is not None and aggregate[0] in literal.variables():
                having.append(clause)
            else:
                where.append(clause)

    select: List[str] = []
    group_by: List[str] = []
    for position, term in enumerate(head.terms):
        column = _columns(relational_schema, head.predicate)[position] \
            if head.predicate in getattr(relational_schema, "tables", {}) \
            else f"c{position}"
        if is_variable(term):
            if aggregate is not None and term == aggregate[0]:
                select.append(
                    f"{_sql_aggregate(aggregate[1], bound)} AS {column}"
                )
                continue
            if term not in bound:
                raise TranslationError(
                    f"head variable {term.name!r} not bound by the body"
                )
            select.append(f"{bound[term]} AS {column}")
            if aggregate is not None:
                group_by.append(bound[term])
        elif term is None:
            select.append(f"NULL AS {column}")
        else:
            select.append(f"{_sql_literal(term)} AS {column}")

    lines = [f"CREATE VIEW {view_name} AS"]
    lines.append("SELECT " + ",\n       ".join(select))
    lines.append(
        "FROM " + ",\n     ".join(f"{table} {alias}" for alias, table in aliases)
    )
    if where:
        lines.append("WHERE " + "\n  AND ".join(where))
    if group_by:
        lines.append("GROUP BY " + ", ".join(group_by))
    if having:
        lines.append("HAVING " + "\n   AND ".join(having))
    return "\n".join(lines) + ";"


def _render_not_exists(negated: NegatedAtom, relational_schema, bound) -> str:
    atom = negated.atom
    alias = "n0"
    columns = _columns(relational_schema, atom.predicate)
    clauses: List[str] = []
    for column, term in zip(columns, atom.terms):
        if is_variable(term):
            if term.name == "_":
                continue
            if term not in bound:
                raise TranslationError(
                    f"negated variable {term.name!r} is not positively bound"
                )
            clauses.append(f"{alias}.{column} = {bound[term]}")
        elif term is not None:
            clauses.append(f"{alias}.{column} = {_sql_literal(term)}")
    condition = " AND ".join(clauses) if clauses else "1 = 1"
    return (
        f"NOT EXISTS (SELECT 1 FROM {atom.predicate} {alias} "
        f"WHERE {condition})"
    )


def _sql_condition(condition: Condition, bound, aggregate=None) -> str:
    """One comparison, with NULL semantics for None literals."""
    for side, other in (
        (condition.right, condition.left),
        (condition.left, condition.right),
    ):
        if isinstance(side, TermExpr) and side.term is None:
            rendered = _sql_expression(other, bound, aggregate)
            if condition.op == "==":
                return f"{rendered} IS NULL"
            if condition.op == "!=":
                return f"{rendered} IS NOT NULL"
            raise TranslationError("NULL only supports ==/!= comparisons")
    return (
        f"{_sql_expression(condition.left, bound, aggregate)} "
        f"{_SQL_OPS[condition.op]} "
        f"{_sql_expression(condition.right, bound, aggregate)}"
    )


def _sql_literal(value: Any) -> str:
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def _sql_expression(expression, bound, aggregate=None) -> str:
    if isinstance(expression, TermExpr):
        term = expression.term
        if is_variable(term):
            if aggregate is not None and term == aggregate[0]:
                return _sql_aggregate(aggregate[1], bound)
            if term not in bound:
                raise TranslationError(
                    f"variable {term.name!r} not bound in SQL context"
                )
            return bound[term]
        return _sql_literal(term)
    if isinstance(expression, BinOp):
        return (
            f"({_sql_expression(expression.left, bound, aggregate)} "
            f"{expression.op} "
            f"{_sql_expression(expression.right, bound, aggregate)})"
        )
    if isinstance(expression, AggregateCall):
        return _sql_aggregate(expression, bound)
    if isinstance(expression, FunctionCall):
        raise TranslationError(
            f"function {expression.name!r} has no SQL rendering"
        )
    raise TranslationError(f"unsupported expression {expression!r}")


def _sql_aggregate(call: AggregateCall, bound) -> str:
    sql_name = _AGG_SQL.get(call.function)
    if sql_name is None:
        raise TranslationError(f"aggregate {call.function!r} has no SQL form")
    inner = _sql_expression(call.value, bound)
    # Distinct contributors: the <z> tuple; SQL's closest faithful form
    # sums one value per contributor, which DISTINCT approximates when
    # the value is functionally determined by the contributors.
    if call.contributors:
        return f"{sql_name}(DISTINCT {inner})"
    return f"{sql_name}({inner})"


def _find_aggregate(expression) -> AggregateCall:
    if isinstance(expression, AggregateCall):
        return expression
    if isinstance(expression, BinOp):
        for side in (expression.left, expression.right):
            try:
                return _find_aggregate(side)
            except TranslationError:
                continue
    raise TranslationError("no aggregate in expression")
