"""A small in-memory triple store with RDFS semantics.

Deployment target for the RDF model (Section 5 mentions rendering
schemas "as RDF-S documents, to be validated by dedicated tools" — here
the store itself is the dedicated tool).  It materializes the standard
RDFS entailments needed for validation and querying:

- ``rdfs:subClassOf`` transitivity and type inheritance (rdfs9/rdfs11);
- ``rdfs:domain`` / ``rdfs:range`` typing of subjects/objects
  (rdfs2/rdfs3).

Validation mode rejects statements whose predicate is not declared by
the deployed schema, or whose inferred subject/object classes are not
subsumed by the declared domain/range.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.deploy.transactions import SavepointMixin, UndoLog
from repro.errors import DeploymentError, IntegrityError
from repro.models.rdf import RDFSchema
from repro.obs.tracer import Tracer

Triple = Tuple[Any, str, Any]

RDF_TYPE = "rdf:type"
RDFS_SUBCLASS = "rdfs:subClassOf"


class TripleStore(SavepointMixin):
    """An RDFS-aware triple store."""

    def __init__(self, name: str = "triple-store", tracer: Optional[Tracer] = None):
        self.name = name
        self.tracer = tracer
        self._triples: Set[Triple] = set()
        self._undo = UndoLog()
        self._schema: Optional[RDFSchema] = None
        self._superclasses: Dict[str, Set[str]] = {}
        self._domains: Dict[str, str] = {}
        self._ranges: Dict[str, str] = {}
        self._datatype_properties: Set[str] = set()

    # ------------------------------------------------------------------
    def deploy(self, schema: RDFSchema) -> None:
        """Load the translated RDF-S schema (classes, properties, axioms)."""
        if self._schema is not None:
            raise DeploymentError("a schema is already deployed")
        self._schema = schema
        for child, parent in schema.subclass_of:
            self._triples.add((child, RDFS_SUBCLASS, parent))
        for prop in schema.object_properties:
            self._domains[prop.name] = prop.domain
            self._ranges[prop.name] = prop.range
        for prop in schema.datatype_properties:
            self._domains[prop.name] = prop.domain
            self._datatype_properties.add(prop.name)
        # Reflexive-transitive closure of subClassOf.
        closure: Dict[str, Set[str]] = {
            c.name: {c.name} for c in schema.classes
        }
        changed = True
        while changed:
            changed = False
            for child, parent in schema.subclass_of:
                before = len(closure.setdefault(child, {child}))
                closure[child] |= closure.get(parent, {parent})
                if len(closure[child]) != before:
                    changed = True
        self._superclasses = closure

    def superclasses_of(self, class_name: str) -> Set[str]:
        """Reflexive-transitive superclasses of a class."""
        return set(self._superclasses.get(class_name, {class_name}))

    # ------------------------------------------------------------------
    def add(self, subject: Any, predicate: str, obj: Any, validate: bool = True) -> None:
        """Assert a triple, applying RDFS entailment (and validation)."""
        if validate and self._schema is not None:
            self._validate(subject, predicate, obj)
        self._assert((subject, predicate, obj))
        # rdfs9/rdfs11: propagate types along the subclass hierarchy.
        if predicate == RDF_TYPE:
            for ancestor in self.superclasses_of(obj):
                self._assert((subject, RDF_TYPE, ancestor))
        # rdfs2/rdfs3: domain/range typing.
        domain = self._domains.get(predicate)
        if domain is not None:
            self.add(subject, RDF_TYPE, domain, validate=False)
        range_ = self._ranges.get(predicate)
        if range_ is not None and predicate not in self._datatype_properties:
            self.add(obj, RDF_TYPE, range_, validate=False)

    def _assert(self, triple: Triple) -> None:
        """Insert a triple, counting only genuinely new assertions.

        ``add`` recurses for RDFS entailment, so the write counter lives
        here — behind a membership test — rather than in ``add`` itself.
        """
        if triple in self._triples:
            return
        self._triples.add(triple)
        if self._undo.active:
            self._undo.record(lambda t=triple: self._triples.discard(t))
        if self.tracer is not None:
            self.tracer.count("deploy.triples_written", 1)

    def _validate(self, subject: Any, predicate: str, obj: Any) -> None:
        if predicate in (RDF_TYPE, RDFS_SUBCLASS):
            if predicate == RDF_TYPE and self._schema is not None:
                if obj not in self._superclasses:
                    raise IntegrityError(f"unknown class {obj!r}")
            return
        if predicate not in self._domains:
            raise IntegrityError(f"undeclared predicate {predicate!r}")
        declared_types = {
            o for s, p, o in self._triples if s == subject and p == RDF_TYPE
        }
        domain = self._domains[predicate]
        if declared_types and domain not in declared_types:
            # Allow when some declared type is a subclass of the domain.
            if not any(domain in self.superclasses_of(t) for t in declared_types):
                raise IntegrityError(
                    f"subject {subject!r} of {predicate!r} is not a "
                    f"{domain!r} (types: {sorted(map(str, declared_types))})"
                )

    def retract(self, subject: Any, predicate: str, obj: Any) -> bool:
        """Retract one asserted triple; returns False when absent.

        Entailed triples are *not* withdrawn: a type asserted via
        rdfs9/rdfs2/rdfs3 for this statement may also be supported by
        other statements, and the store keeps no provenance to decide.
        Callers that need exact semantics retract the base triples of an
        element and re-assert what remains (the delta-flush path does).
        Retraction is undo-logged, so it participates in savepoints.
        """
        triple = (subject, predicate, obj)
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        if self._undo.active:
            self._undo.record(lambda t=triple: self._triples.add(t))
        if self.tracer is not None:
            self.tracer.count("deploy.triples_removed", 1)
        return True

    def apply_flush_delta(self, delta, schema: Any = None):
        """Apply a :class:`~repro.deploy.delta.FlushDelta` transactionally.

        Removed and updated records carry their old property values, so
        the exact previously asserted triples can be retracted.  A node
        removal also retracts the subject's *entailed* supertype triples
        (rdfs9): the node's incident edges travel in the same delta, so
        after the flush no surviving statement supports them — leaving
        them behind would make a stream-maintained store drift from a
        full reload.  Assertions
        and retractions are both undo-logged, so the whole delta applies
        under one savepoint: any integrity violation rolls everything
        back.  ``schema`` (a super-schema) filters node properties to
        the declared attributes, mirroring the full loader; edge
        properties are dropped as in the full loader (no reification).
        """
        from repro.deploy.delta import DeltaFlushReport

        def node_triples(
            node_id, label, properties, with_entailed: bool = False
        ) -> List[Triple]:
            triples: List[Triple] = [(node_id, RDF_TYPE, label)]
            if with_entailed:
                triples.extend(
                    (node_id, RDF_TYPE, ancestor)
                    for ancestor in sorted(self.superclasses_of(label))
                    if ancestor != label
                )
            declared = None
            if schema is not None and schema.has_node(label):
                sm_node = schema.get_node(label)
                declared = {a.name for a in schema.inherited_attributes(sm_node)}
            for name, value in properties.items():
                if declared is not None and name not in declared:
                    continue
                if value is not None:
                    triples.append((node_id, name, value))
            return triples

        report = DeltaFlushReport()
        savepoint = self.savepoint()
        try:
            for node_id, label, properties in delta.removed_nodes:
                hits = sum(
                    self.retract(s, p, o)
                    for s, p, o in node_triples(
                        node_id, label, properties, with_entailed=True
                    )
                )
                if hits:
                    report.nodes_removed += 1
                else:
                    report.skipped += 1
            for _eid, source, target, label, _props in delta.removed_edges:
                if self.retract(source, label, target):
                    report.edges_removed += 1
                else:
                    report.skipped += 1
            for node_id, label, new, old in delta.updated_nodes:
                for triple in node_triples(node_id, label, old):
                    self.retract(*triple)
                for s, p, o in node_triples(node_id, label, new):
                    self.add(s, p, o)
                report.nodes_updated += 1
            for node_id, label, properties in delta.added_nodes:
                for s, p, o in node_triples(node_id, label, properties):
                    self.add(s, p, o)
                report.nodes_added += 1
            for _eid, source, target, label, _props in delta.added_edges:
                self.add(source, label, target)
                report.edges_added += 1
        except (IntegrityError, DeploymentError):
            self.rollback_to(savepoint)
            if self.tracer is not None:
                self.tracer.count("deploy.rollbacks", 1)
            raise
        finally:
            self.release(savepoint)
        if self.tracer is not None:
            self.tracer.count("incr.flushed_delta", report.applied)
        return report

    # ------------------------------------------------------------------
    def triples(
        self,
        subject: Any = None,
        predicate: Optional[str] = None,
        obj: Any = None,
    ) -> Iterator[Triple]:
        """Pattern-match triples (None is a wildcard)."""
        for triple in self._triples:
            if subject is not None and triple[0] != subject:
                continue
            if predicate is not None and triple[1] != predicate:
                continue
            if obj is not None and triple[2] != obj:
                continue
            yield triple

    def has(self, subject: Any, predicate: str, obj: Any) -> bool:
        """O(1) membership test (used for idempotent replay detection)."""
        return (subject, predicate, obj) in self._triples

    def instances_of(self, class_name: str) -> Set[Any]:
        """Subjects typed (directly or by inference) with the class."""
        return {s for s, p, o in self._triples if p == RDF_TYPE and o == class_name}

    def count(self) -> int:
        return len(self._triples)

    def extract(self, query: str) -> Iterator[Tuple[Any, ...]]:
        """Source protocol: ``extract("predicate")`` yields (s, o) pairs;
        ``extract("rdf:type ClassName")`` yields the instances."""
        query = query.strip()
        if query.startswith(RDF_TYPE):
            class_name = query[len(RDF_TYPE):].strip()
            for subject in sorted(self.instances_of(class_name), key=str):
                yield (subject,)
            return
        for subject, _, obj in sorted(
            self.triples(predicate=query), key=lambda t: (str(t[0]), str(t[2]))
        ):
            yield (subject, obj)

    def __repr__(self) -> str:
        return f"TripleStore({self.name!r}, {len(self._triples)} triples)"
