"""Savepoint/rollback support for the in-memory deployment stores.

The paper's deployment story (Section 5) assumes targets that accept a
load atomically or reject it cleanly; our stores mutate record by
record, so without help a mid-load failure strands a half-written
instance.  This module provides the shared primitive that fixes that: an
:class:`UndoLog` of closures.  Each store records, for every successful
mutation, a callable that undoes it — but only while at least one
savepoint is open, so steady-state writes outside a transaction cost a
single attribute check.

Savepoints nest: an inner rollback leaves the outer savepoint intact,
and the log is truncated only when the outermost savepoint is released.
:func:`transaction` wraps the common pattern (savepoint, roll back on
any exception, always release) as a context manager usable with any
object exposing the three-method savepoint protocol
(``savepoint`` / ``rollback_to`` / ``release``).

The undo log suits stores whose mutations have side effects beyond
simple insertion (RDFS entailment in the triple store, index/foreign-key
bookkeeping in the relational engine).  The graph store instead
implements the same three-method protocol with size watermarks over its
insertion-ordered state (:class:`~repro.deploy.graph_store.StructuralSavepoint`)
— O(1) savepoints with zero per-mutation cost on the load fast path.
Structural savepoints assume insert-only mutation between mark and
rollback; the underlying graph enforces the assumption with a mutation
epoch and raises :class:`~repro.errors.DeploymentError` on a stale mark,
so an interleaved deletion surfaces as a clean transaction failure
instead of silent store corruption.  Stores that legitimately delete
inside transactions must use the :class:`UndoLog` protocol instead.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, List


@dataclass(frozen=True)
class Savepoint:
    """An opaque marker into a store's undo log."""

    mark: int


class UndoLog:
    """A stack of undo closures, active only inside savepoints."""

    __slots__ = ("_entries", "_depth")

    def __init__(self):
        self._entries: List[Callable[[], None]] = []
        self._depth = 0

    @property
    def active(self) -> bool:
        """True while at least one savepoint is open."""
        return self._depth > 0

    def record(self, undo: Callable[[], None]) -> None:
        """Register the inverse of a mutation that just succeeded."""
        if self._depth:
            self._entries.append(undo)

    def savepoint(self) -> Savepoint:
        """Open a savepoint at the current position of the log."""
        self._depth += 1
        return Savepoint(len(self._entries))

    def rollback_to(self, savepoint: Savepoint) -> int:
        """Undo every mutation recorded after the savepoint.

        Entries run in reverse order (edges before the nodes they hang
        off, index entries before rows).  Returns how many were undone.
        """
        undone = 0
        while len(self._entries) > savepoint.mark:
            undo = self._entries.pop()
            undo()
            undone += 1
        return undone

    def release(self, savepoint: Savepoint) -> None:
        """Close a savepoint; the outermost release clears the log."""
        if self._depth == 0:
            return
        self._depth -= 1
        if self._depth == 0:
            self._entries.clear()

    def __repr__(self) -> str:
        return f"UndoLog(entries={len(self._entries)}, depth={self._depth})"


class SavepointMixin:
    """The store-facing face of the protocol.

    A store mixes this in and exposes ``self._undo`` (an
    :class:`UndoLog`); mutation methods guard journaling on
    ``self._undo.active`` so the non-transactional path stays free.
    """

    _undo: UndoLog

    def savepoint(self) -> Savepoint:
        """Open a savepoint; pair with :meth:`rollback_to` / :meth:`release`."""
        return self._undo.savepoint()

    def rollback_to(self, savepoint: Savepoint) -> int:
        """Undo every mutation made since ``savepoint``."""
        return self._undo.rollback_to(savepoint)

    def release(self, savepoint: Savepoint) -> None:
        """Commit (forget) a savepoint without undoing anything."""
        self._undo.release(savepoint)


@contextmanager
def transaction(store) -> Iterator[Savepoint]:
    """All-or-nothing block over any store with the savepoint protocol.

    On a clean exit the savepoint is released (mutations kept); on any
    exception every mutation made inside the block is rolled back before
    the exception propagates.
    """
    savepoint = store.savepoint()
    try:
        yield savepoint
    except BaseException:
        store.rollback_to(savepoint)
        raise
    finally:
        store.release(savepoint)
