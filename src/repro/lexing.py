"""Shared tokenizer for the Vadalog and MetaLog concrete syntaxes.

Both languages share the same lexical ground: identifiers, numbers,
double-quoted strings, punctuation, and ``%`` / ``//`` line comments.
The parsers interpret the token stream differently (e.g. ``.`` is both the
rule terminator and the path-concatenation operator in MetaLog).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import ParseError

#: Multi-character punctuation, longest-match-first.
_MULTI_PUNCT = ["->", "==", "!=", "<=", ">=", "<-"]
_SINGLE_PUNCT = set("()[]{},.;:<>=+-*/%@#|!?~")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str  # IDENT | NUMBER | STRING | PUNCT | EOF
    value: object
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` and return the token list, ending with EOF."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(text)

    def error(message: str) -> ParseError:
        return ParseError(message, line, column)

    while i < n:
        ch = text[i]
        # Whitespace
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        # Comments: % ... or // ...
        if ch == "%" or text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        # Strings
        if ch == '"':
            start_line, start_col = line, column
            i += 1
            column += 1
            buf = []
            while i < n and text[i] != '"':
                c = text[i]
                if c == "\\" and i + 1 < n:
                    escape = text[i + 1]
                    buf.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(escape, escape))
                    i += 2
                    column += 2
                    continue
                if c == "\n":
                    raise error("unterminated string literal")
                buf.append(c)
                i += 1
                column += 1
            if i >= n:
                raise error("unterminated string literal")
            i += 1  # closing quote
            column += 1
            tokens.append(Token("STRING", "".join(buf), start_line, start_col))
            continue
        # Numbers (integers and decimals). A leading digit is required; a
        # dot is consumed only when followed by a digit, so the rule
        # terminator after a number still lexes as punctuation.
        if ch.isdigit():
            start_line, start_col = line, column
            j = i
            while j < n and text[j].isdigit():
                j += 1
            is_float = False
            if j < n - 1 and text[j] == "." and text[j + 1].isdigit():
                is_float = True
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
            literal = text[i:j]
            value = float(literal) if is_float else int(literal)
            column += j - i
            i = j
            tokens.append(Token("NUMBER", value, start_line, start_col))
            continue
        # Identifiers
        if ch.isalpha() or ch == "_":
            start_line, start_col = line, column
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            column += j - i
            i = j
            tokens.append(Token("IDENT", word, start_line, start_col))
            continue
        # Punctuation
        matched = None
        for punct in _MULTI_PUNCT:
            if text.startswith(punct, i):
                matched = punct
                break
        if matched is None and ch in _SINGLE_PUNCT:
            matched = ch
        if matched is None:
            raise error(f"unexpected character {ch!r}")
        tokens.append(Token("PUNCT", matched, line, column))
        i += len(matched)
        column += len(matched)

    tokens.append(Token("EOF", None, line, column))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual parser conveniences."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    @classmethod
    def from_text(cls, text: str) -> "TokenStream":
        return cls(tokenize(text))

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self._pos += 1
        return token

    def at(self, kind: str, value: object = None) -> bool:
        token = self.current
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def at_punct(self, value: str) -> bool:
        return self.at("PUNCT", value)

    def at_ident(self, value: Optional[str] = None) -> bool:
        return self.at("IDENT", value)

    def accept(self, kind: str, value: object = None) -> Optional[Token]:
        if self.at(kind, value):
            return self.advance()
        return None

    def accept_punct(self, value: str) -> Optional[Token]:
        return self.accept("PUNCT", value)

    def expect(self, kind: str, value: object = None) -> Token:
        if not self.at(kind, value):
            token = self.current
            wanted = f"{kind} {value!r}" if value is not None else kind
            raise ParseError(
                f"expected {wanted}, found {token.kind} {token.value!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def expect_punct(self, value: str) -> Token:
        return self.expect("PUNCT", value)

    def error(self, message: str) -> ParseError:
        token = self.current
        return ParseError(message, token.line, token.column)

    def save(self) -> int:
        """Checkpoint the cursor for backtracking."""
        return self._pos

    def restore(self, checkpoint: int) -> None:
        self._pos = checkpoint

    def at_eof(self) -> bool:
        return self.current.kind == "EOF"
