"""A thread-safe LRU result cache keyed by ``(epoch, request)``.

Epochs make invalidation structural: a cached entry can never serve a
stale answer because the key embeds the epoch the answer was computed
against, and the epoch is taken from the same snapshot the answer was
computed from.  On every epoch swap the cache additionally drops all
entries from superseded epochs (via :meth:`ServeState.subscribe`), so
memory is bounded by one epoch's working set plus the LRU capacity.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple

__all__ = ["ResultCache"]


class ResultCache:
    """LRU over ``(epoch, key)`` with hit/miss accounting."""

    def __init__(self, capacity: int = 1024):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[int, Hashable], Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, epoch: int, key: Hashable) -> Optional[Any]:
        with self._lock:
            entry = self._entries.get((epoch, key))
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end((epoch, key))
            self.hits += 1
            return entry

    def put(self, epoch: int, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[(epoch, key)] = value
            self._entries.move_to_end((epoch, key))
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def on_epoch(self, snapshot) -> None:
        """Drop entries computed against superseded epochs."""
        epoch = snapshot.epoch
        with self._lock:
            stale = [k for k in self._entries if k[0] != epoch]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "invalidations": self.invalidations,
            }
