"""Serving state: a retained materialization behind immutable snapshots.

Thread model
------------

One writer, many readers.  :class:`ServeState` owns the retained chase
state (which :func:`repro.vadalog.incremental.apply_delta` mutates in
place — the live database, the ``edb`` buckets, the aggregate
accumulators are all writer-private).  After the base run and after
every delta the writer *freezes* the world into a :class:`StateSnapshot`
and publishes it with a single attribute assignment.  Attribute reads
are atomic in CPython, so readers grab a coherent epoch with
``state.snapshot`` and never block, no matter how long a delta takes.

Zero-copy epochs
----------------

Freezing used to build one frozenset per predicate — O(total facts)
tuple boxing on *every* epoch, which dominated delta latency once the
model outgrew the delta.  Columnar relations now freeze into
:class:`FrozenColumnBlock` views instead, which is sound because of
three append-only invariants of the storage layer
(:mod:`repro.vadalog.columnar`):

- appends extend the code columns *in place*; a block pins the row
  count at freeze time (``islice``) so later appends stay invisible;
- removals only tombstone the live mask in place; a block copies the
  mask bytes (only when dead rows exist — the common all-live case
  shares everything);
- ``compact()``/``spill()``/``reset()`` *replace* the column list
  objects rather than mutating them, so a block holding the old lists
  keeps the old epoch's bytes alive and correct.

The relation's monotonic ``_version`` counter keys a copy-on-write
cache: predicates untouched by a delta reuse the previous epoch's
block outright, so freeze cost tracks the delta, not the model.  The
tuple (non-columnar) backend still freezes to frozensets and acts as
the differential oracle.

Metrics are shared across threads, so unlike the engine-internal
:class:`~repro.obs.metrics.MetricsRegistry` (lockless by design, single
writer per run) the serve layer wraps one registry behind a lock.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Set as _AbstractSet
from dataclasses import dataclass, field
from itertools import compress as _compress, islice as _islice
from typing import (
    AbstractSet,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.obs.metrics import MetricsRegistry
from repro.vadalog.ast import Program
from repro.vadalog.columnar import ColumnarRelation
from repro.vadalog.database import Fact
from repro.vadalog.engine import Engine, EvaluationResult
from repro.vadalog.magic import GoalDirectedEvaluator
from repro.vadalog.parser import parse_program

__all__ = ["FrozenColumnBlock", "ServeMetrics", "ServeState", "StateSnapshot"]

#: Latency buckets for request histograms (milliseconds).
LATENCY_BUCKETS_MS = (
    0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)


class ServeMetrics:
    """A thread-safe facade over :class:`MetricsRegistry`."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry or MetricsRegistry()
        self._lock = threading.Lock()

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.registry.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.registry.histogram(name, buckets=LATENCY_BUCKETS_MS).observe(
                value
            )

    def set_gauge(self, name: str, value: int) -> None:
        """Counters double as gauges for monotone values (epoch)."""
        with self._lock:
            counter = self.registry.counter(name)
            if value > counter.value:
                counter.inc(value - counter.value)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return self.registry.snapshot()


class FrozenColumnBlock(_AbstractSet):
    """An immutable set-of-facts view over shared interned columns.

    Holds *references* to a :class:`ColumnarRelation`'s code columns
    plus the row count at freeze time — no per-fact tuples are built
    until somebody iterates.  The only bytes copied at freeze are the
    live mask, and only when the relation carries tombstones.  Safe to
    share across threads and epochs: the columns are append-only, the
    row-count cap hides later appends, and in-place tombstoning cannot
    reach the copied mask (see the module docstring for the full
    invariant list).

    Subclasses :class:`collections.abc.Set`, so ``block == {...}``
    comparisons against literal sets/frozensets behave exactly like the
    frozensets these blocks replaced.  Membership is a linear scan —
    snapshot queries filter by iteration, so nothing hot needs hashed
    probes; avoid comparing two large blocks directly (convert one to
    a set first).
    """

    __slots__ = ("_cols", "_nrows", "_count", "_live", "_values")

    def __init__(self, relation: ColumnarRelation):
        relation._ensure_resident()
        self._cols = list(relation._cols)  # snapshot of column *refs*
        self._nrows = relation._nrows
        self._count = relation._nrows - relation._ndead
        self._live = (
            bytes(relation._live[: relation._nrows])
            if relation._ndead
            else None
        )
        self._values = relation._interner.values

    @classmethod
    def _from_iterable(cls, iterable):
        # Set-algebra results (|, &, -) materialize as plain frozensets.
        return frozenset(iterable)

    def __len__(self) -> int:
        return self._count

    def __iter__(self):
        cols = self._cols
        if not cols:  # arity-0 (propositional) extension
            return iter([()] * self._count)
        getitem = self._values.__getitem__
        rows = _islice(zip(*[map(getitem, col) for col in cols]), self._nrows)
        if self._live is not None:
            return _compress(rows, self._live)
        return rows

    def __contains__(self, fact) -> bool:
        return any(row == fact for row in self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        arity = len(self._cols)
        return f"FrozenColumnBlock(rows={self._count}, arity={arity})"


@dataclass(frozen=True)
class StateSnapshot:
    """One immutable epoch of the materialized model.

    ``facts`` holds every predicate of the model (extensional and
    derived) as immutable fact sets — :class:`FrozenColumnBlock` views
    for columnar relations, plain frozensets for the tuple backend;
    ``edb`` holds the extensional slice as plain tuples, ready to be
    fed to a private per-request engine run (``inputs=`` builds a fresh
    database, sharing no storage — safe under concurrency, unlike
    handing the live columnar relations to another thread).
    """

    epoch: int
    facts: Mapping[str, AbstractSet[Fact]]
    edb: Mapping[str, Tuple[Fact, ...]]
    created_at: float = field(default_factory=time.time)

    def predicates(self) -> List[str]:
        return sorted(self.facts)

    def count(self, predicate: str) -> int:
        return len(self.facts.get(predicate, ()))

    def arity(self, predicate: str) -> Optional[int]:
        for fact in self.facts.get(predicate, ()):
            return len(fact)
        return None

    def total_facts(self) -> int:
        return sum(len(v) for v in self.facts.values())


class ServeState:
    """The writer side: retained chase state + snapshot publication."""

    def __init__(
        self,
        program,
        inputs: Optional[Mapping[str, Iterable[Fact]]] = None,
        *,
        columnar: bool = True,
        use_plans: bool = True,
        check_wardedness: bool = True,
        metrics: Optional[ServeMetrics] = None,
        engine: Optional[Engine] = None,
    ):
        if isinstance(program, str):
            program = parse_program(program)
        self.program: Program = program
        self.metrics = metrics or ServeMetrics()
        self.engine = engine or Engine(
            columnar=columnar,
            use_plans=use_plans,
            check_wardedness=check_wardedness,
        )
        self.evaluator = GoalDirectedEvaluator(
            program, columnar=columnar, use_plans=use_plans
        )
        self._write_lock = threading.Lock()
        self._listeners: List[Any] = []
        #: COW cache: predicate -> (relation, version, block).  A block
        #: is reused verbatim while the relation object and its
        #: monotonic mutation counter both still match.
        self._block_cache: Dict[
            str, Tuple[ColumnarRelation, int, FrozenColumnBlock]
        ] = {}
        self._snapshot: Optional[StateSnapshot] = None

        start = time.perf_counter()
        self._result: EvaluationResult = self.engine.run(
            program,
            inputs=dict(inputs) if inputs else None,
            retain_state=True,
        )
        self._snapshot = self._freeze(epoch=0)
        self.metrics.observe(
            "serve.materialize_ms", (time.perf_counter() - start) * 1000.0
        )
        self.metrics.set_gauge("serve.epoch", 0)

    # -- snapshot construction (writer thread only) -------------------

    def _freeze(
        self, epoch: int, touched: Optional[Set[str]] = None
    ) -> StateSnapshot:
        db = self._result.database
        cache = self._block_cache
        facts: Dict[str, AbstractSet[Fact]] = {}
        for predicate in db.predicates():
            relation = db.relation(predicate)
            if not isinstance(relation, ColumnarRelation):
                # Tuple backend: eager frozenset (the oracle path).
                facts[predicate] = frozenset(relation)
                continue
            entry = cache.get(predicate)
            if (
                entry is not None
                and entry[0] is relation
                and entry[1] == relation._version
            ):
                facts[predicate] = entry[2]
                continue
            block = FrozenColumnBlock(relation)
            # Read the version *after* construction: rehydrating a
            # spilled relation bumps it.
            cache[predicate] = (relation, relation._version, block)
            facts[predicate] = block
        prev = self._snapshot
        state = self._result.state
        if state is not None:
            if prev is not None and touched is not None:
                # Delta freeze: only re-tuple the extensional buckets
                # the delta named; everything else aliases the previous
                # epoch's tuples (buckets are writer-private and only
                # mutated for touched predicates).
                prev_edb = prev.edb
                edb = {
                    predicate: (
                        prev_edb[predicate]
                        if predicate not in touched and predicate in prev_edb
                        else tuple(bucket)
                    )
                    for predicate, bucket in state.edb.items()
                    if bucket
                }
            else:
                edb = {
                    predicate: tuple(bucket)
                    for predicate, bucket in state.edb.items()
                    if bucket
                }
        else:  # pragma: no cover - retained runs always carry state
            idb = self.program.idb_predicates()
            edb = {
                predicate: tuple(bucket)
                for predicate, bucket in facts.items()
                if predicate not in idb
            }
        return StateSnapshot(epoch=epoch, facts=facts, edb=edb)

    # -- reader API ---------------------------------------------------

    @property
    def snapshot(self) -> StateSnapshot:
        """The current epoch; a single atomic attribute read."""
        return self._snapshot

    # -- writer API ---------------------------------------------------

    def subscribe(self, listener) -> None:
        """``listener(snapshot)`` runs after every epoch swap (used by
        the result cache to drop superseded entries)."""
        self._listeners.append(listener)

    def apply_delta(
        self,
        added: Optional[Mapping[str, Iterable[Fact]]] = None,
        removed: Optional[Mapping[str, Iterable[Fact]]] = None,
    ):
        """Apply an extensional delta and publish the next epoch."""
        with self._write_lock:
            start = time.perf_counter()
            delta = self.engine.apply_delta(
                self._result,
                added=dict(added) if added else None,
                removed=dict(removed) if removed else None,
            )
            touched = set(added or ()) | set(removed or ())
            snapshot = self._freeze(
                epoch=self._snapshot.epoch + 1, touched=touched
            )
            self._snapshot = snapshot  # atomic publication
            elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.metrics.observe("serve.delta_ms", elapsed_ms)
        self.metrics.inc("serve.deltas")
        self.metrics.set_gauge("serve.epoch", snapshot.epoch)
        for listener in self._listeners:
            listener(snapshot)
        return delta
