"""Serving state: a retained materialization behind immutable snapshots.

Thread model
------------

One writer, many readers.  :class:`ServeState` owns the retained chase
state (which :func:`repro.vadalog.incremental.apply_delta` mutates in
place — the live database, the ``edb`` buckets, the aggregate
accumulators are all writer-private).  After the base run and after
every delta the writer *freezes* the world into a :class:`StateSnapshot`
— plain dicts of frozensets/tuples with no reference into any mutable
engine structure — and publishes it with a single attribute assignment.
Attribute reads are atomic in CPython, so readers grab a coherent epoch
with ``state.snapshot`` and never block, no matter how long a delta
takes.

Metrics are shared across threads, so unlike the engine-internal
:class:`~repro.obs.metrics.MetricsRegistry` (lockless by design, single
writer per run) the serve layer wraps one registry behind a lock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.vadalog.ast import Program
from repro.vadalog.database import Fact
from repro.vadalog.engine import Engine, EvaluationResult
from repro.vadalog.magic import GoalDirectedEvaluator
from repro.vadalog.parser import parse_program

__all__ = ["ServeMetrics", "ServeState", "StateSnapshot"]

#: Latency buckets for request histograms (milliseconds).
LATENCY_BUCKETS_MS = (
    0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)


class ServeMetrics:
    """A thread-safe facade over :class:`MetricsRegistry`."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry or MetricsRegistry()
        self._lock = threading.Lock()

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.registry.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.registry.histogram(name, buckets=LATENCY_BUCKETS_MS).observe(
                value
            )

    def set_gauge(self, name: str, value: int) -> None:
        """Counters double as gauges for monotone values (epoch)."""
        with self._lock:
            counter = self.registry.counter(name)
            if value > counter.value:
                counter.inc(value - counter.value)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return self.registry.snapshot()


@dataclass(frozen=True)
class StateSnapshot:
    """One immutable epoch of the materialized model.

    ``facts`` holds every predicate of the model (extensional and
    derived) as frozensets; ``edb`` holds the extensional slice as plain
    tuples, ready to be fed to a private per-request engine run
    (``inputs=`` builds a fresh database, sharing no storage — safe
    under concurrency, unlike handing the live columnar relations to
    another thread).
    """

    epoch: int
    facts: Mapping[str, FrozenSet[Fact]]
    edb: Mapping[str, Tuple[Fact, ...]]
    created_at: float = field(default_factory=time.time)

    def predicates(self) -> List[str]:
        return sorted(self.facts)

    def count(self, predicate: str) -> int:
        return len(self.facts.get(predicate, ()))

    def arity(self, predicate: str) -> Optional[int]:
        for fact in self.facts.get(predicate, ()):
            return len(fact)
        return None

    def total_facts(self) -> int:
        return sum(len(v) for v in self.facts.values())


class ServeState:
    """The writer side: retained chase state + snapshot publication."""

    def __init__(
        self,
        program,
        inputs: Optional[Mapping[str, Iterable[Fact]]] = None,
        *,
        columnar: bool = True,
        use_plans: bool = True,
        check_wardedness: bool = True,
        metrics: Optional[ServeMetrics] = None,
        engine: Optional[Engine] = None,
    ):
        if isinstance(program, str):
            program = parse_program(program)
        self.program: Program = program
        self.metrics = metrics or ServeMetrics()
        self.engine = engine or Engine(
            columnar=columnar,
            use_plans=use_plans,
            check_wardedness=check_wardedness,
        )
        self.evaluator = GoalDirectedEvaluator(
            program, columnar=columnar, use_plans=use_plans
        )
        self._write_lock = threading.Lock()
        self._listeners: List[Any] = []

        start = time.perf_counter()
        self._result: EvaluationResult = self.engine.run(
            program,
            inputs=dict(inputs) if inputs else None,
            retain_state=True,
        )
        self._snapshot = self._freeze(epoch=0)
        self.metrics.observe(
            "serve.materialize_ms", (time.perf_counter() - start) * 1000.0
        )
        self.metrics.set_gauge("serve.epoch", 0)

    # -- snapshot construction (writer thread only) -------------------

    def _freeze(self, epoch: int) -> StateSnapshot:
        db = self._result.database
        facts = {
            predicate: frozenset(db.relation(predicate))
            for predicate in db.predicates()
        }
        state = self._result.state
        if state is not None:
            edb = {
                predicate: tuple(bucket)
                for predicate, bucket in state.edb.items()
                if bucket
            }
        else:  # pragma: no cover - retained runs always carry state
            idb = self.program.idb_predicates()
            edb = {
                predicate: tuple(bucket)
                for predicate, bucket in facts.items()
                if predicate not in idb
            }
        return StateSnapshot(epoch=epoch, facts=facts, edb=edb)

    # -- reader API ---------------------------------------------------

    @property
    def snapshot(self) -> StateSnapshot:
        """The current epoch; a single atomic attribute read."""
        return self._snapshot

    # -- writer API ---------------------------------------------------

    def subscribe(self, listener) -> None:
        """``listener(snapshot)`` runs after every epoch swap (used by
        the result cache to drop superseded entries)."""
        self._listeners.append(listener)

    def apply_delta(
        self,
        added: Optional[Mapping[str, Iterable[Fact]]] = None,
        removed: Optional[Mapping[str, Iterable[Fact]]] = None,
    ):
        """Apply an extensional delta and publish the next epoch."""
        with self._write_lock:
            start = time.perf_counter()
            delta = self.engine.apply_delta(
                self._result,
                added=dict(added) if added else None,
                removed=dict(removed) if removed else None,
            )
            snapshot = self._freeze(epoch=self._snapshot.epoch + 1)
            self._snapshot = snapshot  # atomic publication
            elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.metrics.observe("serve.delta_ms", elapsed_ms)
        self.metrics.inc("serve.deltas")
        self.metrics.set_gauge("serve.epoch", snapshot.epoch)
        for listener in self._listeners:
            listener(snapshot)
        return delta
