"""`kgmodel serve`: a long-lived, concurrent KG query service.

The serving model is read-mostly: a single writer thread owns the
retained materialization (:class:`~repro.vadalog.incremental.MaterializedState`)
and, after every delta, publishes an immutable epoch-stamped
:class:`StateSnapshot` by atomically swapping one attribute reference.
Readers never take the write lock and never touch the live database —
they see exactly one epoch per request, so there are no torn reads by
construction.

Point queries default to a snapshot scan of the materialized model;
``engine=magic`` re-derives the answer goal-directedly through the
magic-sets rewrite (:mod:`repro.vadalog.magic`) and ``engine=full``
re-runs the whole chase — both against the snapshot's extensional
facts, which makes them the built-in differential oracles for the
snapshot path.
"""

from repro.serve.cache import ResultCache
from repro.serve.handlers import RequestError, ServiceHandlers
from repro.serve.server import KGModelServer, build_server
from repro.serve.state import ServeMetrics, ServeState, StateSnapshot

__all__ = [
    "KGModelServer",
    "RequestError",
    "ResultCache",
    "ServeMetrics",
    "ServeState",
    "ServiceHandlers",
    "StateSnapshot",
    "build_server",
]
