"""HTTP plumbing for `kgmodel serve` (stdlib only).

:class:`ThreadingHTTPServer` gives one thread per connection; all shared
state lives behind :class:`~repro.serve.state.ServeState`'s snapshot
swap and the locked cache/metrics, so handler threads never coordinate
directly.  :func:`build_server` binds (port 0 picks a free port) without
serving, which is what the tests and the smoke script use.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.serve.handlers import ServiceHandlers

__all__ = ["KGModelServer", "build_server"]

_MAX_BODY = 32 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Thin adapter: parse the request, delegate, write JSON."""

    handlers: ServiceHandlers  # set on the dynamically-built subclass
    protocol_version = "HTTP/1.1"
    # Keep-alive latency: headers and body go out in separate writes;
    # with Nagle on, the body write stalls behind the client's delayed
    # ACK (~40ms per request on an otherwise idle connection).
    disable_nagle_algorithm = True

    def _respond(self, status: int, payload) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _run(self, method: str, body=None) -> None:
        parts = urlsplit(self.path)
        params = dict(parse_qsl(parts.query))
        try:
            status, payload = self.handlers.handle(
                method, parts.path, params, body
            )
        except Exception as exc:  # defensive: a handler bug must not
            status, payload = 500, {"error": f"internal error: {exc}"}
        self._respond(status, payload)

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._run("GET")

    def do_POST(self) -> None:  # noqa: N802
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            # The unread body would be parsed as the next request on a
            # kept-alive socket; drop the connection instead of draining
            # up to _MAX_BODY of garbage.
            self.close_connection = True
            self._respond(413, {"error": "body too large"})
            return
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw.decode("utf-8")) if raw else None
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._respond(400, {"error": "body must be valid JSON"})
            return
        self._run("POST", body)

    def log_message(self, format: str, *args) -> None:
        """Silence stderr access logs; metrics carry request counts."""


class KGModelServer:
    """A started/stoppable HTTP server around :class:`ServiceHandlers`."""

    def __init__(
        self,
        handlers: ServiceHandlers,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        handler_cls = type("BoundHandler", (_Handler,), {"handlers": handlers})
        self.handlers = handlers
        self.httpd = ThreadingHTTPServer((host, port), handler_cls)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "KGModelServer":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
            name="kgmodel-serve",
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "KGModelServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def build_server(
    handlers: ServiceHandlers,
    host: str = "127.0.0.1",
    port: int = 0,
) -> KGModelServer:
    """Bind (but do not start) a server; port 0 picks a free port."""
    return KGModelServer(handlers, host=host, port=port)
