"""Endpoint logic for `kgmodel serve`, independent of the HTTP plumbing.

Every handler works against exactly one :class:`StateSnapshot`, grabbed
once at the top of the request — the epoch it reports is therefore
guaranteed consistent with every fact in the response.  Handlers return
``(status, payload)`` pairs; :mod:`repro.serve.server` turns them into
HTTP responses, and the tests drive them directly without sockets.

Resource budgets: engine-backed queries run under a per-request
:class:`~repro.obs.governor.ResourceGovernor` (graceful mode), and graph
traversals count visited nodes against ``max_visited``.  A tripped
budget yields ``503`` with the partial result and its stats, mirroring
the CLI's exit-3 convention for truncated runs.
"""

from __future__ import annotations

import time
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.errors import KGModelError, ResourceLimitError
from repro.obs.governor import ResourceGovernor
from repro.serve.cache import ResultCache
from repro.serve.state import ServeState, StateSnapshot
from repro.vadalog.magic import parse_query
from repro.vadalog.terms import Null, SkolemValue, fact_sort_key

__all__ = ["RequestError", "ServiceHandlers", "encode_value", "encode_fact"]

_ENGINE_MODES = ("snapshot", "magic", "full")


class RequestError(Exception):
    """A client error with an HTTP status.

    ``details`` (machine-readable fields — e.g. which predicate failed
    an arity check, and why) are merged into the JSON error payload next
    to the human-readable ``error`` message.
    """

    def __init__(self, status: int, message: str, **details: Any):
        super().__init__(message)
        self.status = status
        self.message = message
        self.details = details


def encode_value(value: Any) -> Any:
    """JSON-encode one fact value; nulls and Skolem values get tagged
    objects so distinct invented values stay distinguishable."""
    if isinstance(value, Null):
        return {"$null": f"{value.label}#{value.ordinal}"}
    if isinstance(value, SkolemValue):
        return {
            "$skolem": value.functor,
            "args": [encode_value(a) for a in value.arguments],
        }
    return value


def encode_fact(fact: Tuple[Any, ...]) -> List[Any]:
    return [encode_value(v) for v in fact]


def _decode_facts(payload: Any, what: str) -> Dict[str, List[Tuple[Any, ...]]]:
    if payload is None:
        return {}
    if not isinstance(payload, dict):
        raise RequestError(400, f"{what} must be an object of fact lists")
    out: Dict[str, List[Tuple[Any, ...]]] = {}
    for predicate, facts in payload.items():
        if not isinstance(facts, list):
            raise RequestError(400, f"{what}[{predicate!r}] must be a list")
        rows: List[Tuple[Any, ...]] = []
        for fact in facts:
            if not isinstance(fact, (list, tuple)):
                raise RequestError(
                    400, f"{what}[{predicate!r}] entries must be arrays"
                )
            if any(isinstance(v, (dict, list)) for v in fact):
                raise RequestError(
                    400,
                    f"{what}[{predicate!r}] values must be scalars "
                    "(derived values cannot be asserted)",
                )
            rows.append(tuple(fact))
        out[predicate] = rows
    return out


def _int_param(params: Mapping[str, str], name: str, default: int,
               minimum: int = 0, maximum: Optional[int] = None) -> int:
    raw = params.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise RequestError(400, f"{name} must be an integer") from None
    if value < minimum or (maximum is not None and value > maximum):
        raise RequestError(400, f"{name} out of range")
    return value


def _float_param(params: Mapping[str, str], name: str,
                 default: Optional[float]) -> Optional[float]:
    raw = params.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise RequestError(400, f"{name} must be a number") from None


class ServiceHandlers:
    """Routes requests over one :class:`ServeState`."""

    def __init__(
        self,
        state: ServeState,
        *,
        cache: Optional[ResultCache] = None,
        readonly: bool = False,
        default_budget_ms: Optional[float] = None,
        default_max_facts: Optional[int] = None,
        max_visited: int = 100_000,
        max_answers: int = 10_000,
        tracer=None,
        stream=None,
    ):
        self.state = state
        #: Optional attached DeltaStream; surfaces under GET /stats.
        self.stream = stream
        self.metrics = state.metrics
        self.cache = cache if cache is not None else ResultCache()
        self.readonly = readonly
        self.default_budget_ms = default_budget_ms
        self.default_max_facts = default_max_facts
        self.max_visited = max_visited
        self.max_answers = max_answers
        self.tracer = tracer
        self.started_at = time.time()
        state.subscribe(self.cache.on_epoch)

    # -- dispatch -----------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        params: Mapping[str, str],
        body: Any = None,
    ) -> Tuple[int, Dict[str, Any]]:
        route = (method.upper(), path.rstrip("/") or "/")
        start = time.perf_counter()
        endpoint = path.strip("/") or "root"
        span = (
            self.tracer.span("serve.request", method=route[0], path=path)
            if self.tracer is not None
            else None
        )
        try:
            status, payload = self._dispatch(route, params, body)
        except RequestError as exc:
            status, payload = exc.status, {"error": exc.message, **exc.details}
        except KGModelError as exc:
            status, payload = 400, {"error": str(exc)}
        finally:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            self.metrics.inc(f"serve.requests.{endpoint}")
            self.metrics.observe(f"serve.latency_ms.{endpoint}", elapsed_ms)
            if span is not None:
                span.set(endpoint=endpoint)
                span.__exit__(None, None, None)
        self.metrics.inc(f"serve.status.{status}")
        return status, payload

    def _dispatch(self, route, params, body):
        method, path = route
        if method == "GET":
            if path == "/healthz":
                return self.healthz()
            if path == "/schema":
                return self.schema()
            if path == "/stats":
                return self.stats()
            if path == "/query":
                return self.query(params)
            if path == "/neighborhood":
                return self.neighborhood(params)
            if path == "/path":
                return self.path_query(params)
            raise RequestError(404, f"unknown endpoint {path}")
        if method == "POST":
            if path == "/delta":
                return self.delta(body)
            raise RequestError(404, f"unknown endpoint {path}")
        raise RequestError(405, f"method {method} not allowed")

    # -- endpoints ----------------------------------------------------

    def healthz(self):
        snap = self.state.snapshot
        return 200, {"status": "ok", "epoch": snap.epoch}

    def schema(self):
        snap = self.state.snapshot
        idb = self.state.program.idb_predicates()
        predicates = [
            {
                "name": predicate,
                "arity": snap.arity(predicate),
                "facts": snap.count(predicate),
                "derived": predicate in idb,
            }
            for predicate in snap.predicates()
        ]
        return 200, {
            "epoch": snap.epoch,
            "predicates": predicates,
            "rules": len(self.state.program.rules),
            "total_facts": snap.total_facts(),
        }

    def stats(self):
        snap = self.state.snapshot
        payload = {
            "epoch": snap.epoch,
            "uptime_seconds": time.time() - self.started_at,
            "cache": self.cache.stats(),
            "metrics": self.metrics.snapshot(),
        }
        if self.stream is not None:
            payload["stream"] = self.stream.stats_summary()
        return 200, payload

    def query(self, params):
        text = params.get("q")
        if not text:
            raise RequestError(400, "missing query parameter q")
        mode = params.get("engine", "snapshot")
        if mode not in _ENGINE_MODES:
            raise RequestError(
                400, f"engine must be one of {', '.join(_ENGINE_MODES)}"
            )
        limit = _int_param(params, "limit", self.max_answers, minimum=1)
        budget_ms = _float_param(params, "budget_ms", self.default_budget_ms)
        max_facts = _int_param(
            params, "max_facts", self.default_max_facts or 0, minimum=0
        ) or None

        snap = self.state.snapshot  # the one atomic read for this request
        cache_key = (text, mode, limit, budget_ms, max_facts)
        cached = self.cache.get(snap.epoch, cache_key)
        if cached is not None:
            self.metrics.inc("serve.cache.hits")
            status, payload = cached
            return status, dict(payload, cached=True)
        self.metrics.inc("serve.cache.misses")

        query = parse_query(text)
        started = time.perf_counter()
        if mode == "snapshot":
            facts = snap.facts.get(query.predicate, frozenset())
            answers = sorted(
                (fact for fact in facts if query.matches(fact)),
                key=fact_sort_key,
            )
            status, result = 200, {
                "status": "fixpoint",
                "engine_stats": None,
                "answers": answers,
                "mode": "snapshot",
            }
        else:
            status, result = self._engine_query(query, mode, snap,
                                                budget_ms, max_facts)
        elapsed_ms = (time.perf_counter() - started) * 1000.0

        answers = result.pop("answers")
        truncated_by_limit = len(answers) > limit
        payload = {
            "epoch": snap.epoch,
            "query": str(query),
            "engine": mode,
            "status": result["status"],
            "answers": [encode_fact(f) for f in answers[:limit]],
            "answer_count": len(answers),
            "limited": truncated_by_limit,
            "elapsed_ms": elapsed_ms,
            "cached": False,
        }
        if result.get("engine_stats") is not None:
            payload["engine_stats"] = result["engine_stats"]
        if result["status"] != "fixpoint":
            payload["error"] = "resource budget exceeded; partial result"
            status = 503
        self.cache.put(snap.epoch, cache_key, (status, payload))
        self.metrics.observe(f"serve.query_ms.{mode}", elapsed_ms)
        return status, payload

    def _engine_query(self, query, mode, snap: StateSnapshot,
                      budget_ms, max_facts):
        governor = None
        if budget_ms is not None or max_facts is not None:
            governor = ResourceGovernor(
                budget_seconds=(budget_ms / 1000.0)
                if budget_ms is not None
                else None,
                max_facts=max_facts,
                graceful=True,
            )
        evaluate = (
            self.state.evaluator.answer
            if mode == "magic"
            else self.state.evaluator.full_answer
        )
        try:
            answer = evaluate(query, inputs=snap.edb, governor=governor)
        except ResourceLimitError as exc:  # strict governors only
            raise RequestError(503, str(exc)) from None
        stats = answer.stats
        return 200, {
            "status": answer.status,
            "answers": sorted(answer.facts, key=fact_sort_key),
            "engine_stats": {
                "iterations": stats.iterations,
                "facts_derived": stats.facts_derived,
                "elapsed_seconds": stats.elapsed_seconds,
            },
        }

    # -- graph traversals over a binary projection --------------------

    def _edges(self, snap: StateSnapshot, predicate: str):
        facts = snap.facts.get(predicate)
        if facts is None:
            raise RequestError(404, f"unknown predicate {predicate!r}")
        arity = snap.arity(predicate)
        if arity is not None and arity < 2:
            raise RequestError(
                400, f"predicate {predicate!r} is not at least binary"
            )
        return facts

    def neighborhood(self, params):
        node = params.get("node")
        predicate = params.get("predicate")
        if not node or not predicate:
            raise RequestError(400, "missing node or predicate parameter")
        depth = _int_param(params, "depth", 1, minimum=1, maximum=16)
        direction = params.get("direction", "out")
        if direction not in ("out", "in", "both"):
            raise RequestError(400, "direction must be out, in or both")
        max_visited = _int_param(
            params, "max_visited", self.max_visited, minimum=1
        )
        snap = self.state.snapshot
        facts = self._edges(snap, predicate)

        forward: Dict[Any, List[Any]] = {}
        backward: Dict[Any, List[Any]] = {}
        for fact in facts:
            forward.setdefault(fact[0], []).append(fact[1])
            backward.setdefault(fact[1], []).append(fact[0])

        layers: List[List[Any]] = [[node]]
        seen = {node}
        edges: List[List[Any]] = []
        truncated = False
        for _ in range(depth):
            frontier: List[Any] = []
            for current in layers[-1]:
                neighbors: List[Any] = []
                if direction in ("out", "both"):
                    neighbors += forward.get(current, ())
                if direction in ("in", "both"):
                    neighbors += backward.get(current, ())
                for neighbor in neighbors:
                    edges.append(
                        [encode_value(current), encode_value(neighbor)]
                    )
                    if neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
                        if len(seen) > max_visited:
                            truncated = True
                            break
                if truncated:
                    break
            if truncated or not frontier:
                break
            layers.append(frontier)
        payload = {
            "epoch": snap.epoch,
            "node": node,
            "predicate": predicate,
            "depth": depth,
            "direction": direction,
            "layers": [
                [encode_value(n) for n in layer] for layer in layers
            ],
            "edges": edges,
            "visited": len(seen),
            "truncated": truncated,
        }
        if truncated:
            payload["error"] = "max_visited exceeded; partial neighborhood"
            return 503, payload
        return 200, payload

    def path_query(self, params):
        source = params.get("from")
        target = params.get("to")
        predicate = params.get("predicate")
        if not source or not target or not predicate:
            raise RequestError(400, "missing from, to or predicate parameter")
        max_depth = _int_param(params, "max_depth", 16, minimum=1, maximum=64)
        max_visited = _int_param(
            params, "max_visited", self.max_visited, minimum=1
        )
        snap = self.state.snapshot
        facts = self._edges(snap, predicate)
        forward: Dict[Any, List[Any]] = {}
        for fact in facts:
            forward.setdefault(fact[0], []).append(fact[1])

        parents: Dict[Any, Any] = {source: None}
        frontier = [source]
        found = source == target
        truncated = False
        for _ in range(max_depth):
            if found or truncated or not frontier:
                break
            next_frontier: List[Any] = []
            for current in frontier:
                for neighbor in forward.get(current, ()):
                    if neighbor in parents:
                        continue
                    parents[neighbor] = current
                    if len(parents) > max_visited:
                        truncated = True
                        break
                    if neighbor == target:
                        found = True
                        break
                    next_frontier.append(neighbor)
                if found or truncated:
                    break
            frontier = next_frontier
        payload: Dict[str, Any] = {
            "epoch": snap.epoch,
            "from": source,
            "to": target,
            "predicate": predicate,
            "visited": len(parents),
            "truncated": truncated,
        }
        if truncated and not found:
            payload["error"] = "max_visited exceeded; partial search"
            return 503, payload
        if found:
            path = [target]
            while path[-1] != source:
                path.append(parents[path[-1]])
            payload["path"] = [encode_value(n) for n in reversed(path)]
            payload["length"] = len(path) - 1
        else:
            payload["path"] = None
        return 200, payload

    # -- writes -------------------------------------------------------

    def delta(self, body):
        if self.readonly:
            raise RequestError(403, "server is read-only")
        if not isinstance(body, dict):
            raise RequestError(400, "delta body must be a JSON object")
        added = _decode_facts(body.get("added"), "added")
        removed = _decode_facts(body.get("removed"), "removed")
        if not added and not removed:
            raise RequestError(400, "empty delta")
        idb = self.state.program.idb_predicates()
        for predicate in list(added) + list(removed):
            if predicate in idb:
                raise RequestError(
                    400,
                    f"{predicate!r} is derived; deltas may only touch "
                    "extensional predicates",
                    kind="derived_predicate",
                    predicate=predicate,
                )
        snap = self.state.snapshot
        for predicate, rows in list(added.items()) + list(removed.items()):
            arity = snap.arity(predicate)
            if arity is None:
                continue  # a brand-new predicate sets its own arity
            for fact in rows:
                if len(fact) != arity:
                    raise RequestError(
                        400,
                        f"arity mismatch for {predicate!r}: expected "
                        f"{arity}, got {len(fact)}",
                        kind="arity_mismatch",
                        predicate=predicate,
                        expected=arity,
                        got=len(fact),
                    )
        delta = self.state.apply_delta(added=added, removed=removed)
        snap = self.state.snapshot
        return 200, {
            "epoch": snap.epoch,
            "added": {p: len(v) for p, v in delta.added.items()},
            "removed": {p: len(v) for p, v in delta.removed.items()},
            "strata": {
                "skipped": delta.strata_skipped,
                "incremental": delta.strata_incremental,
                "recomputed": delta.strata_recomputed,
            },
            "elapsed_seconds": delta.elapsed_seconds,
        }
