"""E-STREAM — sustained CDC streaming ingestion over the company KG.

Builds shareholding registries (``Business``/``PhysicalPerson`` nodes,
``OWNS`` stakes) at several sizes, bootstraps the full company-control
materialization once, then drives a synthetic CDC feed (stake adds with
periodic churn removals) through the crash-safe :class:`DeltaStream`
pipeline into a deployed graph store.  Reported per size: sustained
updates/sec after bootstrap, p50/p99 staleness (feed arrival to applied
batch), the window coalesce ratio, and a differential check — the
streamed store must be byte-identical to a from-scratch batch
materialization of the final registry.

Usage::

    PYTHONPATH=src python benchmarks/bench_stream.py
    PYTHONPATH=src python benchmarks/bench_stream.py \
        --sizes 300 --updates 60 --out BENCH_STREAM.json
    PYTHONPATH=src python benchmarks/bench_stream.py --check BENCH_STREAM.json
"""

import argparse
import json
import os
import sys
import tempfile
import time

try:
    import repro  # noqa: F401 — installed package (CI) or PYTHONPATH=src
except ImportError:
    sys.path.insert(
        0,
        os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        ),
    )

from repro.deploy import GraphStore, RetryPolicy
from repro.deploy.loaders import load_graph_store
from repro.deploy.resilience import graph_store_state
from repro.finkg import programs
from repro.finkg.company_schema import company_super_schema
from repro.finkg.generator import ShareholdingConfig, generate_shareholding_data
from repro.graph.property_graph import PropertyGraph
from repro.metalog import parse_metalog
from repro.ssst import SSST, IntensionalMaterializer
from repro.stream import DeltaStream, GeneratorFeed, MaterializerSink


def business_registry(companies: int, seed: int = 42) -> PropertyGraph:
    data = generate_shareholding_data(
        ShareholdingConfig(companies=companies, seed=seed)
    )
    graph = PropertyGraph("registry")
    for pid in data.persons:
        graph.add_node(
            pid, "PhysicalPerson",
            fiscalCode=f"FC-{pid}", name=f"Person {pid}", gender="female",
        )
    for cid in data.companies:
        graph.add_node(
            cid, "Business",
            fiscalCode=f"FC-{cid}", businessName=f"{cid} SpA",
            legalNature="spa", shareholdingCapital=1000.0,
        )
    for index, stake in enumerate(data.stakes):
        graph.add_edge(
            stake.owner, stake.company, "OWNS",
            edge_id=f"stake-{index}", percentage=stake.percentage,
        )
    return graph


def change_feed(registry: PropertyGraph, updates: int) -> list:
    """A deterministic CDC trace: stake adds with periodic churn
    removals of earlier additions (so windows contain genuine
    add/remove interplay for the coalescer to fold)."""
    businesses = sorted(
        (node.id for node in registry.nodes("Business")), key=str
    )
    records = []
    live = []
    seq = 0
    for i in range(updates):
        owner = businesses[(7 * i + 3) % len(businesses)]
        target = businesses[(11 * i + 41) % len(businesses)]
        if owner == target:
            target = businesses[(11 * i + 42) % len(businesses)]
        seq += 1
        records.append({
            "seq": seq, "op": "add_edge", "id": f"cdc-stake-{i}",
            "source": owner, "target": target, "type": "OWNS",
            "properties": {"percentage": 0.5 + (i % 40) / 100.0},
        })
        live.append(i)
        if i % 3 == 2 and len(live) > 1:
            victim = live.pop(0)
            seq += 1
            records.append({
                "seq": seq, "op": "remove_edge", "id": f"cdc-stake-{victim}",
            })
    return records


def apply_changes(registry: PropertyGraph, records: list) -> PropertyGraph:
    final = registry.copy()
    for record in records:
        if record["op"] == "add_edge":
            final.add_edge(
                record["source"], record["target"], record["type"],
                edge_id=record["id"], **record["properties"],
            )
        elif record["op"] == "remove_edge":
            final.remove_edge(record["id"])
        else:
            raise ValueError(f"unexpected op {record['op']!r}")
    return final


def deployed_store() -> GraphStore:
    store = GraphStore()
    store.deploy(
        SSST().translate(company_super_schema(), "property-graph").target_schema
    )
    return store


def run_size(
    companies: int, updates: int, seed: int, batch_window: int,
    fsync: bool, verify: bool,
) -> dict:
    schema = company_super_schema()
    sigma = parse_metalog(programs.CONTROL_PROGRAM)
    base = business_registry(companies, seed=seed)
    records = change_feed(base, updates)

    sink = MaterializerSink(
        schema, sigma, base.copy(), instance_oid=9,
        retry=RetryPolicy(sleep=lambda _s: None),
    )
    store = deployed_store()
    sink.attach_graph_store(store)

    timings = {}
    original_bootstrap = sink.bootstrap

    def timed_bootstrap():
        start = time.perf_counter()
        original_bootstrap()
        timings["bootstrap"] = time.perf_counter() - start

    sink.bootstrap = timed_bootstrap

    with tempfile.TemporaryDirectory(prefix="bench_stream_") as log_dir:
        stream = DeltaStream(
            GeneratorFeed(records), sink, log_dir,
            batch_window=batch_window, fsync=fsync,
        )
        start = time.perf_counter()
        report = stream.run()
        total_seconds = time.perf_counter() - start

    bootstrap_seconds = timings.get("bootstrap", 0.0)
    stream_seconds = max(total_seconds - bootstrap_seconds, 1e-9)
    applied = (
        report.records_seen
        - report.records_quarantined
        - report.duplicates_skipped
    )

    ok = True
    if verify:
        final = apply_changes(base, records)
        reference = IntensionalMaterializer().materialize(
            schema, final, sigma, instance_oid=9
        )
        reference_store = deployed_store()
        load_graph_store(schema, reference.instance.data, reference_store)
        ok = graph_store_state(store) == graph_store_state(reference_store)

    return {
        "companies": companies,
        "registry_nodes": base.node_count,
        "registry_edges": base.edge_count,
        "feed_records": len(records),
        "records_applied": applied,
        "records_quarantined": report.records_quarantined,
        "records_cancelled": report.records_cancelled,
        "batches_applied": report.batches_applied,
        "coalesce_ratio": round(report.coalesce_ratio(), 4),
        "bootstrap_seconds": round(bootstrap_seconds, 4),
        "stream_seconds": round(stream_seconds, 4),
        "apply_seconds": round(report.apply_seconds, 4),
        "sustained_updates_per_sec": round(applied / stream_seconds, 2),
        "staleness_p50_seconds": round(report.staleness_p50(), 4),
        "staleness_p99_seconds": round(report.staleness_p99(), 4),
        "differential_ok": ok,
    }


REQUIRED_ROW_KEYS = {
    "companies", "registry_nodes", "registry_edges", "feed_records",
    "records_applied", "records_quarantined", "records_cancelled",
    "batches_applied", "coalesce_ratio", "bootstrap_seconds",
    "stream_seconds", "apply_seconds", "sustained_updates_per_sec",
    "staleness_p50_seconds", "staleness_p99_seconds", "differential_ok",
}


def check_payload(path: str) -> int:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["experiment"] == "E-STREAM", payload.get("experiment")
    assert payload["results"], "no benchmark rows"
    for key in ("program", "batch_window", "fsync", "seed"):
        assert key in payload, f"missing payload key {key!r}"
    for row in payload["results"]:
        missing = REQUIRED_ROW_KEYS - set(row)
        assert not missing, f"missing keys: {sorted(missing)}"
        assert row["differential_ok"] is True, row
        assert row["sustained_updates_per_sec"] > 0, row
        assert row["staleness_p99_seconds"] >= row["staleness_p50_seconds"]
        assert 0.0 < row["coalesce_ratio"] <= 1.0, row
    print(f"schema OK: {len(payload['results'])} size(s)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[1000, 5000])
    parser.add_argument("--updates", type=int, default=200,
                        help="CDC stake additions per size (churn removals extra)")
    parser.add_argument("--batch-window", type=int, default=32)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", default="BENCH_STREAM.json")
    parser.add_argument("--no-fsync", action="store_true",
                        help="skip per-record fsync of the delta log")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the from-scratch differential check")
    parser.add_argument("--check", metavar="JSON",
                        help="validate an existing payload against the schema")
    args = parser.parse_args()

    if args.check:
        return check_payload(args.check)

    rows = []
    for companies in args.sizes:
        row = run_size(
            companies, args.updates, args.seed, args.batch_window,
            not args.no_fsync, not args.no_verify,
        )
        rows.append(row)
        print(
            f"E-STREAM {companies} companies: bootstrap "
            f"{row['bootstrap_seconds']:.2f}s, {row['records_applied']} records "
            f"in {row['stream_seconds']:.2f}s -> "
            f"{row['sustained_updates_per_sec']:.0f} updates/s, staleness "
            f"p50 {row['staleness_p50_seconds']:.3f}s / "
            f"p99 {row['staleness_p99_seconds']:.3f}s, coalesce "
            f"{row['coalesce_ratio']:.2f}, differential "
            f"{'OK' if row['differential_ok'] else 'MISMATCH'}"
        )

    payload = {
        "experiment": "E-STREAM",
        "program": "CONTROL_PROGRAM",
        "batch_window": args.batch_window,
        "fsync": not args.no_fsync,
        "seed": args.seed,
        "results": rows,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    return 1 if any(not row["differential_ok"] for row in rows) else 0


if __name__ == "__main__":
    sys.exit(main())
