"""E-GRAPHCOL — columnar vs object property-graph backing store.

The chase went columnar (E-COL) and the graph/dictionary boundary went
column-wise (E-DICT); after that the *graph itself* — one slotted Node/
Edge object plus one dict per element — became the largest resident
allocation of the control pipeline.  This bench runs E-CTRL (the
CONTROL_PROGRAM materialization over a generated registry) with the
graph backend switched between :class:`ColumnarPropertyGraph` (interned
code columns, lazy views) and the object oracle, measuring:

- wall time per phase (build / extract / chase / flush) per backend;
- the Python-heap peak (``tracemalloc``) per backend, and the columnar
  reduction — the headline number;
- the serve layer's snapshot-freeze cost, cold (every column block
  rebuilt) vs warm (pure copy-on-write reuse) — the zero-copy epoch
  claim in numbers;
- a differential gate: both backends must derive the identical facts
  and land the identical graph (sha256 over repr-sorted derivations
  plus post-flush element counts).

The pipeline here is the direct one — ``compile_metalog`` →
``graph_to_database`` → ``Engine.run`` → ``materialize_into_graph`` —
rather than :class:`IntensionalMaterializer`: the materializer carries
a large backend-independent transient (schema instance assembly) that
buries the graph's contribution to the peak; the direct pipeline's peak
is graph-dominated, so the reduction is attributable to the backend
under test.

Sizes above ``--object-cap`` run columnar-only (the object backend
would not fit the memory budget — which is the point), so the sweep can
carry an honest ≥250k-company E-CTRL row.  The emitted JSON is
validated against an inline schema before writing; ``--check FILE``
re-validates an existing payload (the CI ``graph-smoke`` job uses it).

Usage::

    PYTHONPATH=src python benchmarks/bench_graphcol.py
    PYTHONPATH=src python benchmarks/bench_graphcol.py \
        --sizes 5000 50000 --out BENCH_GRAPHCOL.json \
        --require-heap-reduction 0.30
    PYTHONPATH=src python benchmarks/bench_graphcol.py \
        --check BENCH_GRAPHCOL.json
"""

import argparse
import hashlib
import json
import os
import resource
import sys
import time
import tracemalloc

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.cli import demo_serve_inputs
from repro.finkg import programs
from repro.finkg.generator import ShareholdingConfig, generate_shareholding_data
from repro.graph import make_graph
from repro.metalog import (
    GraphCatalog,
    compile_metalog,
    graph_to_database,
    parse_metalog,
)
from repro.metalog.mtv import materialize_into_graph
from repro.serve import ServeState
from repro.vadalog import Engine


def build_registry(companies: int, seed: int, columnar: bool):
    """The bench_incremental business registry on a chosen backend."""
    data = generate_shareholding_data(
        ShareholdingConfig(companies=companies, seed=seed)
    )
    graph = make_graph("registry", columnar=columnar)
    for pid in data.persons:
        graph.add_node(pid, "PhysicalPerson", fiscalCode=f"FC-{pid}")
    for cid in data.companies:
        graph.add_node(
            cid, "Business",
            fiscalCode=f"FC-{cid}", businessName=f"{cid} SpA",
        )
    for index, stake in enumerate(data.stakes):
        graph.add_edge(
            stake.owner, stake.company, "OWNS",
            edge_id=f"stake-{index}", percentage=stake.percentage,
        )
    return graph


def _materialize(companies: int, seed: int, columnar: bool, digest=True):
    """Direct E-CTRL pipeline on a chosen graph backend.

    The relation backend stays columnar on both rows: only the graph
    backing store varies, so speedups/heap deltas are attributable.
    Derived facts are flushed back into the registry itself (no copy),
    matching how the serve layer materializes in place.  The memory
    pass sets ``digest=False``: the differential digest's repr-sort is
    bench instrumentation, not pipeline, and its transient would land
    on both backends' peaks equally, diluting the relative reduction.
    """
    start = time.perf_counter()
    registry = build_registry(companies, seed, columnar)
    build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    sigma = parse_metalog(programs.CONTROL_PROGRAM)
    compiled = compile_metalog(sigma, GraphCatalog.from_graph(registry))
    database = graph_to_database(
        registry, compiled.catalog,
        node_labels=compiled.input_node_labels,
        edge_labels=compiled.input_edge_labels,
        columnar=True, bulk=True,
    )
    extract_seconds = time.perf_counter() - start

    start = time.perf_counter()
    result = Engine(columnar=True).run(compiled.program, database=database)
    chase_seconds = time.perf_counter() - start

    start = time.perf_counter()
    new_nodes, new_edges = materialize_into_graph(
        result, compiled, registry, bulk=True
    )
    flush_seconds = time.perf_counter() - start

    # Backend-differential digest: repr-sorted derivations per label
    # plus the post-flush element counts.  A hash keeps the row small
    # enough to live in the JSON payload at any sweep size.
    fingerprint = hashlib.sha256()
    if digest:
        for label in sorted(
            compiled.derived_node_labels | compiled.derived_edge_labels
        ):
            for line in sorted(map(repr, result.facts(label))):
                fingerprint.update(line.encode("utf-8"))
                fingerprint.update(b"\n")
        fingerprint.update(
            f"nodes={registry.node_count} "
            f"edges={registry.edge_count}".encode()
        )
    phases = {
        "build_seconds": round(build_seconds, 4),
        "total_seconds": round(
            extract_seconds + chase_seconds + flush_seconds, 4
        ),
        "extract_seconds": round(extract_seconds, 4),
        "chase_seconds": round(chase_seconds, 4),
        "flush_seconds": round(flush_seconds, 4),
        "controls_derived": new_nodes + new_edges,
    }
    return phases, fingerprint.hexdigest()


def _backend_row(
    companies: int, seed: int, columnar: bool, memory: bool
) -> dict:
    phases, digest = _materialize(companies, seed, columnar)
    row = {"backend": "columnar" if columnar else "object"}
    row.update(phases)
    row["digest"] = digest
    if memory:
        # Separate pass: tracemalloc distorts wall time, so timing and
        # memory never share a run.
        tracemalloc.start()
        _materialize(companies, seed, columnar, digest=False)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        row["peak_heap_bytes"] = peak
    return row


def _freeze_row(companies: int, seed: int, repeat: int = 3) -> dict:
    """Cold vs copy-on-write snapshot-freeze cost, white-box.

    Deliberately reaches into ``ServeState`` internals: clearing the
    block cache forces every column block to be rebuilt (cold), a
    second freeze with nothing mutated is a pure COW sweep (warm).
    """
    program_text, inputs = demo_serve_inputs(companies, seed)
    state = ServeState(program_text, inputs=inputs, check_wardedness=False)
    cold = warm = eager = float("inf")
    for _ in range(repeat):
        state._block_cache.clear()
        start = time.perf_counter()
        snap = state._freeze(epoch=0)
        cold = min(cold, time.perf_counter() - start)
        start = time.perf_counter()
        state._freeze(epoch=0)
        warm = min(warm, time.perf_counter() - start)
        # Pre-PR baseline: materialize every relation into an eager
        # frozenset (what freezing cost before column blocks existed).
        db = state._result.database
        start = time.perf_counter()
        for predicate in db.predicates():
            frozenset(db.relation(predicate))
        eager = min(eager, time.perf_counter() - start)
    return {
        "facts": snap.total_facts(),
        "cold_ms": round(cold * 1000.0, 3),
        "warm_ms": round(warm * 1000.0, 3),
        "eager_ms": round(eager * 1000.0, 3),
        "reuse_speedup": round(cold / max(warm, 1e-9), 1),
        "block_speedup": round(eager / max(cold, 1e-9), 1),
    }


def run_size(
    companies: int, seed: int, memory: bool, verify: bool,
    columnar_only: bool = False, freeze: bool = True,
) -> dict:
    col = _backend_row(companies, seed, columnar=True, memory=memory)
    result = {"companies": companies}
    if columnar_only:
        # Sweep-extension mode for sizes where the object backend would
        # blow the memory budget: no twin, no cross-backend deltas; the
        # differential gate is carried by the smaller two-backend rows.
        result["columnar"] = col
    else:
        obj = _backend_row(companies, seed, columnar=False, memory=memory)
        ok = True
        if verify:
            ok = col["digest"] == obj["digest"]
        result.update(
            columnar=col,
            object=obj,
            build_speedup=round(
                obj["build_seconds"] / max(col["build_seconds"], 1e-9), 2
            ),
            total_speedup=round(
                obj["total_seconds"] / max(col["total_seconds"], 1e-9), 2
            ),
            differential_ok=ok,
        )
        if memory:
            result["heap_reduction"] = round(
                1.0 - col["peak_heap_bytes"] / max(obj["peak_heap_bytes"], 1),
                3,
            )
    if freeze:
        result["freeze"] = _freeze_row(companies, seed)
    return result


# ---------------------------------------------------------------------------
# Payload schema (kept dependency-free: no jsonschema in the image)
# ---------------------------------------------------------------------------

_BACKEND_FIELDS = {
    "backend": str,
    "build_seconds": (int, float),
    "total_seconds": (int, float),
    "extract_seconds": (int, float),
    "chase_seconds": (int, float),
    "flush_seconds": (int, float),
    "controls_derived": int,
    "digest": str,
}
_FREEZE_FIELDS = {
    "facts": int,
    "cold_ms": (int, float),
    "warm_ms": (int, float),
    "eager_ms": (int, float),
    "reuse_speedup": (int, float),
    "block_speedup": (int, float),
}
_ROW_FIELDS = {
    "companies": int,
    "columnar": dict,
}
_TOP_FIELDS = {
    "experiment": str,
    "program": str,
    "seed": int,
    "peak_rss_kb": int,
    "results": list,
}


def validate(payload: dict) -> list:
    """Structural check of a BENCH_GRAPHCOL payload; returns problems."""
    problems = []

    def check(obj, fields, where):
        for field, types in fields.items():
            if field not in obj:
                problems.append(f"{where}: missing field '{field}'")
            elif not isinstance(obj[field], types):
                problems.append(
                    f"{where}: field '{field}' has type "
                    f"{type(obj[field]).__name__}"
                )

    check(payload, _TOP_FIELDS, "payload")
    if payload.get("experiment") != "E-GRAPHCOL":
        problems.append("payload: experiment must be 'E-GRAPHCOL'")
    two_backend_rows = 0
    for i, row in enumerate(payload.get("results") or []):
        where = f"results[{i}]"
        if not isinstance(row, dict):
            problems.append(f"{where}: not an object")
            continue
        check(row, _ROW_FIELDS, where)
        for backend in ("columnar", "object"):
            sub = row.get(backend)
            if isinstance(sub, dict):
                check(sub, _BACKEND_FIELDS, f"{where}.{backend}")
        if "object" in row:
            two_backend_rows += 1
            if not row.get("differential_ok", False):
                problems.append(f"{where}: differential_ok is not true")
        freeze = row.get("freeze")
        if isinstance(freeze, dict):
            check(freeze, _FREEZE_FIELDS, f"{where}.freeze")
    if not payload.get("results"):
        problems.append("payload: results is empty")
    elif not two_backend_rows:
        problems.append(
            "payload: no two-backend row carries the differential gate"
        )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[5000, 20000])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--no-memory", action="store_true",
                        help="skip the tracemalloc pass (halves runtime)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the cross-backend differential gate")
    parser.add_argument("--no-freeze", action="store_true",
                        help="skip the snapshot-freeze section")
    parser.add_argument("--object-cap", type=int, default=100_000,
                        help="sizes above this run columnar-only")
    parser.add_argument("--freeze-cap", type=int, default=50_000,
                        help="skip the freeze section above this size")
    parser.add_argument("--require-heap-reduction", type=float, default=None,
                        help="fail unless every two-backend memory row "
                             "clears this fractional heap reduction")
    parser.add_argument("--out", default="BENCH_GRAPHCOL.json")
    parser.add_argument("--check", metavar="FILE", default=None,
                        help="validate an existing payload and exit")
    args = parser.parse_args()

    if args.check is not None:
        with open(args.check, "r", encoding="utf-8") as handle:
            problems = validate(json.load(handle))
        for problem in problems:
            print(f"schema: {problem}", file=sys.stderr)
        print(f"{args.check}: {'INVALID' if problems else 'schema OK'}")
        return 1 if problems else 0

    rows = []
    for companies in args.sizes:
        row = run_size(
            companies, args.seed,
            memory=not args.no_memory,
            verify=not args.no_verify,
            columnar_only=companies > args.object_cap,
            freeze=not args.no_freeze and companies <= args.freeze_cap,
        )
        rows.append(row)
        line = (
            f"E-GRAPHCOL {companies} companies: columnar total "
            f"{row['columnar']['total_seconds']:.1f}s"
        )
        if "object" in row:
            line += (
                f" vs object {row['object']['total_seconds']:.1f}s "
                f"({row['total_speedup']:.2f}x)"
            )
            if "heap_reduction" in row:
                line += f", heap -{row['heap_reduction'] * 100:.0f}%"
            line += (
                ", differential "
                f"{'OK' if row['differential_ok'] else 'MISMATCH'}"
            )
        if "freeze" in row:
            line += (
                f"; freeze cold {row['freeze']['cold_ms']:.1f}ms / warm "
                f"{row['freeze']['warm_ms']:.2f}ms vs eager "
                f"{row['freeze']['eager_ms']:.1f}ms "
                f"({row['freeze']['block_speedup']:.0f}x block)"
            )
        print(line)

    payload = {
        "experiment": "E-GRAPHCOL",
        "program": "CONTROL_PROGRAM",
        "seed": args.seed,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "results": rows,
    }
    problems = validate(payload)
    for problem in problems:
        print(f"schema: {problem}", file=sys.stderr)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if problems:
        return 1
    if args.require_heap_reduction is not None:
        gated = [
            row for row in rows
            if "heap_reduction" in row
            and row["heap_reduction"] < args.require_heap_reduction
        ]
        if gated:
            print(
                f"heap reduction below required "
                f"{args.require_heap_reduction:.0%}: "
                f"{[(r['companies'], r['heap_reduction']) for r in gated]}"
            )
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
