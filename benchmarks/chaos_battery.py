"""CI fault-injection smoke: a seeded chaos battery over the deploy stack.

Every scenario drives the resilient loaders through injected faults —
transient errors, crashes, dirty records — and asserts the recovery
invariant that matters for each: faulty loads converge on the clean
state, crash replays are byte-identical, strict violations leave the
store pristine, graceful loads quarantine exactly the dirty records,
and an interrupted materialization resumes from its checkpoint to the
unbudgeted result.

Standalone on purpose — no pytest-benchmark — so the CI job stays a
plain ``python benchmarks/chaos_battery.py``.  All faults come from
seeded :class:`~repro.deploy.FaultInjector` streams and every retry
backoff goes through a no-op sleep: the battery is deterministic and
never waits on a real clock.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

try:
    import repro  # noqa: F401 — installed package (CI) or PYTHONPATH=src
except ImportError:
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro.deploy import (
    GRACEFUL,
    CrashFault,
    FaultInjector,
    GraphStore,
    QuarantineReport,
    RetryPolicy,
    TripleStore,
    graph_store_state,
    load_graph_store,
    load_triple_store,
)
from repro.errors import IntegrityError
from repro.finkg import programs
from repro.finkg.company_schema import company_super_schema
from repro.finkg.generator import ShareholdingConfig, generate_company_kg
from repro.graph.property_graph import PropertyGraph
from repro.metalog import parse_metalog
from repro.obs import ResourceGovernor
from repro.ssst import SSST, IntensionalMaterializer, MaterializationCheckpoint
from repro.stream import (
    DeltaStream,
    FeedFaultInjector,
    GeneratorFeed,
    MaterializerSink,
    ServeStateSink,
)
from repro.vadalog.engine import Engine

COMPANIES = 1000
FAULT_RATE = 0.10
SEED = 42

_failures: list[str] = []


def check(name: str, condition: bool, detail: str = "") -> None:
    status = "ok" if condition else "FAIL"
    print(f"chaos: {name}: {status}" + (f" ({detail})" if detail else ""))
    if not condition:
        _failures.append(name)


def fresh_graph_store() -> GraphStore:
    store = GraphStore()
    store.deploy(
        SSST().translate(company_super_schema(), "property-graph").target_schema
    )
    return store


def fresh_triple_store() -> TripleStore:
    store = TripleStore()
    store.deploy(SSST().translate(company_super_schema(), "rdf").target_schema)
    return store


def quiet_policy(**kwargs) -> RetryPolicy:
    return RetryPolicy(sleep=lambda _s: None, **kwargs)


def main() -> int:
    schema = company_super_schema()
    data = generate_company_kg(ShareholdingConfig(companies=COMPANIES, seed=SEED))
    print(
        f"chaos: battery over {data.node_count} nodes / {data.edge_count} edges "
        f"({COMPANIES} companies, seed {SEED})"
    )

    # -- baseline: a clean load, also the wall-clock reference ----------
    clean_store = fresh_graph_store()
    t0 = time.perf_counter()
    clean_report = load_graph_store(schema, data, clean_store)
    clean_seconds = time.perf_counter() - t0
    clean_state = graph_store_state(clean_store)
    check(
        "clean load",
        clean_report.nodes == data.node_count
        and clean_report.edges == data.edge_count,
        f"{clean_report.summary()}, {clean_seconds:.2f}s",
    )

    # -- transient faults at 10%: the default policy rides them out ----
    store = fresh_graph_store()
    injector = FaultInjector(store, fault_rate=FAULT_RATE, seed=SEED)
    t0 = time.perf_counter()
    report = load_graph_store(schema, data, injector, policy=quiet_policy())
    faulty_seconds = time.perf_counter() - t0
    check(
        "10% transient faults converge on the clean state",
        report.retries > 0 and graph_store_state(store) == clean_state,
        f"{report.retries} retries, overhead "
        f"{faulty_seconds / max(clean_seconds, 1e-9):.2f}x",
    )

    # -- crash mid-load, then idempotent replay ------------------------
    store = fresh_graph_store()
    injector = FaultInjector(store, crash_after=data.node_count // 2)
    crashed = False
    try:
        load_graph_store(schema, data, injector, batch_size=100)
    except CrashFault:
        crashed = True
    partial = store.graph.node_count
    replay = load_graph_store(schema, data, store)
    check(
        "crash + replay is byte-identical to the clean load",
        crashed
        and 0 < partial < data.node_count
        and replay.replayed > 0
        and graph_store_state(store) == clean_state,
        f"crashed at {partial} nodes, replayed {replay.replayed} records",
    )

    # -- strict mode: a dirty record rolls the whole load back ---------
    dirty = data.copy()
    victim = next(n for n in data.nodes() if n.label == "Business")
    dirty.add_node(
        "chaos-dup", "Business",
        fiscalCode=victim.properties["fiscalCode"],
        businessName="Chaos SpA", legalNature="spa", shareholdingCapital=1.0,
    )
    store = fresh_graph_store()
    pristine = graph_store_state(store)
    strict_raised = False
    try:
        load_graph_store(schema, dirty, store)
    except IntegrityError:
        strict_raised = True
    check(
        "strict mode leaves the store pristine on violation",
        strict_raised and graph_store_state(store) == pristine,
        "duplicate fiscalCode rejected",
    )

    # -- graceful mode: quarantine the dirty record, load the rest -----
    store = fresh_graph_store()
    quarantine = QuarantineReport()
    report = load_graph_store(
        schema, dirty, store, mode=GRACEFUL, quarantine=quarantine
    )
    check(
        "graceful mode quarantines exactly the dirty record",
        len(quarantine) == 1
        and report.nodes == data.node_count
        and graph_store_state(store) == clean_state,
        f"{report.summary()}",
    )

    # -- triple store: same convergence under faults -------------------
    small = generate_company_kg(ShareholdingConfig(companies=60, seed=SEED))
    clean_triples = fresh_triple_store()
    load_triple_store(schema, small, clean_triples)
    store = fresh_triple_store()
    injector = FaultInjector(store, fault_rate=FAULT_RATE, seed=SEED)
    report = load_triple_store(schema, small, injector, policy=quiet_policy())
    check(
        "triple-store faulty load converges on the clean state",
        report.retries > 0
        and frozenset(store.triples()) == frozenset(clean_triples.triples()),
        f"{report.summary()}",
    )

    # -- checkpointed materialization: interrupt, then resume ----------
    chain = PropertyGraph("chain")
    for i in range(45):
        chain.add_node(f"C{i}", "Business", fiscalCode=f"F{i}",
                       businessName=f"C{i}", legalNature="spa",
                       shareholdingCapital=1.0)
    for i in range(44):
        chain.add_edge(f"C{i}", f"C{i+1}", "OWNS", percentage=0.8)
    sigma = parse_metalog(programs.CONTROL_PROGRAM)
    baseline = IntensionalMaterializer().materialize(
        company_super_schema(), chain, sigma, instance_oid=9
    )
    directory = tempfile.mkdtemp(prefix="chaos_ckpt_")
    interrupted = IntensionalMaterializer(
        engine=Engine(governor=ResourceGovernor(max_facts=800, graceful=True))
    ).materialize(
        company_super_schema(), chain, sigma, instance_oid=9,
        checkpoint=MaterializationCheckpoint(directory),
    )
    resumed = IntensionalMaterializer().materialize(
        company_super_schema(), chain, sigma, instance_oid=9,
        checkpoint=MaterializationCheckpoint(directory),
    )

    def canon(report):
        graph = report.instance.data
        return (
            sorted((str(n.id), n.label) for n in graph.nodes()),
            sorted((str(e.source), str(e.target), e.label)
                   for e in graph.edges()),
        )

    check(
        "interrupted materialization resumes to the unbudgeted result",
        interrupted.truncated
        and resumed.resumed_from == "load"
        and not resumed.truncated
        and canon(resumed) == canon(baseline)
        and resumed.derived_counts == baseline.derived_counts,
        f"resumed from {resumed.resumed_from!r}, "
        f"derived {resumed.derived_counts}",
    )

    # -- streaming: store crash mid-flush, resume from the delta log ---
    registry = PropertyGraph("registry")
    for i in range(30):
        registry.add_node(
            f"p{i}", "PhysicalPerson",
            fiscalCode=f"FC-P{i}", name=f"P{i}", gender="female",
        )
        registry.add_node(
            f"c{i}", "Business",
            fiscalCode=f"FC-C{i}", businessName=f"C{i} SpA",
            legalNature="spa", shareholdingCapital=1.0,
        )
        registry.add_edge(
            f"p{i}", f"c{i}", "OWNS", edge_id=f"stake-{i}", percentage=0.8,
        )
    changes = []
    for i in range(12):
        changes.append({
            "seq": 2 * i + 1, "op": "add_edge", "id": f"chaos-stake-{i}",
            "source": f"p{i}", "target": f"c{(i + 7) % 30}", "type": "OWNS",
            "properties": {"percentage": 0.55},
        })
        changes.append({"seq": 2 * i + 2, "op": "remove_edge", "id": f"stake-{i}"})
    final = registry.copy()
    for i in range(12):
        final.add_edge(
            f"p{i}", f"c{(i + 7) % 30}", "OWNS",
            edge_id=f"chaos-stake-{i}", percentage=0.55,
        )
        final.remove_edge(f"stake-{i}")
    reference = IntensionalMaterializer().materialize(
        company_super_schema(), final, sigma, instance_oid=9
    )
    reference_store = fresh_graph_store()
    load_graph_store(company_super_schema(), reference.instance.data,
                     reference_store)
    reference_state = graph_store_state(reference_store)

    def stream_sink(store):
        sink = MaterializerSink(
            company_super_schema(), sigma, registry.copy(), instance_oid=9,
            retry=quiet_policy(),
        )
        sink.attach_graph_store(store)
        return sink

    log_dir = tempfile.mkdtemp(prefix="chaos_stream_")
    store = fresh_graph_store()
    injector = FaultInjector(store)
    sink = stream_sink(injector)
    original_apply = sink.apply

    def crashing_apply(batch, quarantine):
        # Arm only after bootstrap: crash the very next store mutation.
        injector.crash_after = injector.mutations_applied
        return original_apply(batch, quarantine)

    sink.apply = crashing_apply
    crashed = False
    try:
        DeltaStream(
            GeneratorFeed(changes), sink, log_dir, batch_window=4,
            fsync=False, checkpoint_every=1,
        ).run()
    except CrashFault:
        crashed = True
    store = fresh_graph_store()
    report = DeltaStream(
        GeneratorFeed(changes), stream_sink(store), log_dir, batch_window=4,
        fsync=False,
    ).run(resume=True)
    check(
        "stream crash mid-flush resumes bit-identical to the batch run",
        crashed
        and report.replayed_records > 0
        and graph_store_state(store) == reference_state,
        f"replayed {report.replayed_records} records, "
        f"{report.batches_applied} batches",
    )

    # -- streaming: torn/duplicated/reordered feed converges -----------
    entries = [
        {"seq": i, "op": "assert", "predicate": "e",
         "fact": [f"n{i}", f"n{i + 1}"]}
        for i in range(60)
    ]
    faulty = FeedFaultInjector(
        GeneratorFeed(entries), seed=SEED,
        torn_rate=0.1, duplicate_rate=0.1, reorder_rate=0.1,
    )
    program = "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
    sink = ServeStateSink(program=program, inputs={"e": [("a", "b")]})
    report = DeltaStream(
        faulty, sink, tempfile.mkdtemp(prefix="chaos_stream_"),
        batch_window=8, fsync=False,
    ).run()
    accounted = (
        report.records_quarantined + report.duplicates_skipped
        == faulty.torn + faulty.duplicated
    )
    check(
        "torn/duplicated/reordered feed converges with exact accounting",
        faulty.torn > 0 and faulty.duplicated > 0 and faulty.reordered > 0
        and accounted
        and sink.state.snapshot.count("e") == 61 - faulty.torn,
        f"{faulty.torn} torn, {faulty.duplicated} duplicated, "
        f"{faulty.reordered} reordered; "
        f"{report.records_quarantined} quarantined, "
        f"{report.duplicates_skipped} deduplicated",
    )

    if _failures:
        print(f"chaos: {len(_failures)} scenario(s) failed: {_failures}",
              file=sys.stderr)
        return 1
    print("chaos: all scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
