"""E-FIG3 — regenerate Figure 3: the super-model dictionary and the
tabular Gamma_SM rendering function."""

from conftest import banner

from repro.core import SUPER_MODEL_DICTIONARY, supermodel_table
from repro.core.metamodel import META_CONSTRUCTS


def test_fig3_supermodel_table(benchmark):
    table = benchmark(supermodel_table)
    banner("Figure 3 — the super-model dictionary / Gamma_SM")
    print(table)
    names = {e.name for e in SUPER_MODEL_DICTIONARY}
    # The element and link super-constructs of the paper's table.
    assert {
        "SM_Node", "SM_Edge", "SM_Type", "SM_Attribute",
        "SM_AttributeModifier", "SM_Generalization",
        "SM_HAS_NODE_PROPERTY", "SM_HAS_EDGE_PROPERTY", "SM_FROM", "SM_TO",
        "SM_HAS_NODE_TYPE", "SM_HAS_EDGE_TYPE", "SM_PARENT", "SM_CHILD",
        "SM_HAS_MODIFIER",
    } <= names
    assert all(e.specializes in META_CONSTRUCTS for e in SUPER_MODEL_DICTIONARY)
    # Four generalization grapheme variants (total x disjoint).
    generalization_rows = [
        e for e in SUPER_MODEL_DICTIONARY if e.name == "SM_Generalization"
    ]
    assert len(generalization_rows) == 4
