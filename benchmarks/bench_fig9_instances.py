"""E-FIG9 — regenerate Figure 9: instance-level constructs and their
round-trip through the extended super-model dictionary."""

from conftest import banner

from repro.core import GraphDictionary, SuperInstance
from repro.finkg.company_schema import company_super_schema
from repro.finkg.generator import ShareholdingConfig, generate_company_kg


def test_fig9_instance_constructs(benchmark):
    schema = company_super_schema()
    data = generate_company_kg(ShareholdingConfig(companies=40, seed=4))

    def round_trip():
        dictionary = GraphDictionary()
        dictionary.store(schema)
        SuperInstance.from_plain_graph(schema, data, 234).to_dictionary(
            dictionary.graph
        )
        back = SuperInstance.from_dictionary(dictionary.graph, schema, 234)
        return dictionary, back

    dictionary, back = benchmark.pedantic(round_trip, rounds=3, iterations=1)
    banner("Figure 9 — instance-level constructs (I_SM_*)")
    counts = {
        label: sum(1 for _ in dictionary.graph.nodes(label))
        for label in ("I_SM_Node", "I_SM_Edge", "I_SM_Attribute")
    }
    link_counts = {
        label: sum(1 for _ in dictionary.graph.edges(label))
        for label in ("SM_REFERENCES", "I_SM_FROM", "I_SM_TO",
                      "I_SM_HAS_NODE_PROPERTY", "I_SM_HAS_EDGE_PROPERTY")
    }
    for label, count in {**counts, **link_counts}.items():
        print(f"  {label:<26}{count}")

    assert counts["I_SM_Node"] == data.node_count
    assert counts["I_SM_Edge"] == data.edge_count
    assert counts["I_SM_Attribute"] > 0
    # Every instance construct references its schema twin.
    assert link_counts["SM_REFERENCES"] == (
        counts["I_SM_Node"] + counts["I_SM_Edge"] + counts["I_SM_Attribute"]
    )
    # Lossless round-trip.
    assert back.data.node_count == data.node_count
    assert back.data.edge_count == data.edge_count
