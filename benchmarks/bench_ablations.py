"""E-ABL — ablations over the design choices DESIGN.md calls out:

(a) PG generalization tactic: multi-label vs child-edges;
(b) engine evaluation: semi-naive vs naive;
(c) control: MetaLog reasoner vs direct baseline (the reasoning-overhead
    factor);
(d) integrated-ownership unrolling depth vs truncation error;
(e) engine matching: compiled join plans vs the interpreted matcher.
"""

import pytest
from conftest import banner

from repro.finkg.company_schema import company_super_schema
from repro.finkg.control import control_pairs, stakes_from_graph
from repro.finkg.generator import ShareholdingConfig, generate_shareholding_data, stakes_as_tuples
from repro.finkg.ownership import integrated_ownership, integrated_ownership_series
from repro.metalog import parse_metalog
from repro.ssst import SSST
from repro.vadalog import Engine, parse_program


@pytest.mark.parametrize("strategy", ["multi-label", "child-edges"])
def test_abl_pg_strategy(benchmark, strategy):
    def translate():
        return SSST().translate(
            company_super_schema(), "property-graph", strategy=strategy
        )

    result = benchmark.pedantic(translate, rounds=2, iterations=1)
    schema = result.target_schema
    banner(f"Ablation (a) — PG generalization tactic: {strategy}")
    print(f"  node classes: {len(schema.node_classes)}, "
          f"relationship classes: {len(schema.relationship_classes)}")
    if strategy == "multi-label":
        assert "IS_A" not in schema.relationship_names()
        assert len(schema.relationship_classes) > 11  # inherited copies
    else:
        assert "IS_A" in schema.relationship_names()
        # Only declared relationships plus IS_A: no inherited copies.
        assert len(schema.relationship_classes) == 11 + 6


@pytest.mark.parametrize("semi_naive", [True, False])
def test_abl_semi_naive(benchmark, shareholding_graphs, semi_naive):
    graph = shareholding_graphs[1000]
    edges = [
        (e.source, e.target)
        for e in graph.edges("OWNS")
    ]
    program = parse_program(
        "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
    )
    engine = Engine(semi_naive=semi_naive)

    def reason():
        return engine.run(program, inputs={"e": edges})

    result = benchmark.pedantic(reason, rounds=2, iterations=1)
    banner(f"Ablation (b) — semi-naive={semi_naive}")
    print(f"  tc facts: {result.database.count('tc')}, "
          f"iterations: {result.stats.iterations}, "
          f"firings: {result.stats.rule_firings}")
    assert result.database.count("tc") > 0


@pytest.mark.parametrize("use_plans", [True, False])
def test_abl_compiled_plans(benchmark, shareholding_graphs, use_plans):
    graph = shareholding_graphs[1000]
    edges = [
        (e.source, e.target)
        for e in graph.edges("OWNS")
    ]
    program = parse_program(
        "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
    )
    engine = Engine(use_plans=use_plans)

    def reason():
        return engine.run(program, inputs={"e": edges})

    result = benchmark.pedantic(reason, rounds=2, iterations=1)
    banner(f"Ablation (e) — compiled plans={use_plans}")
    print(f"  tc facts: {result.database.count('tc')}, "
          f"iterations: {result.stats.iterations}, "
          f"plans cached: {len(engine._plan_cache)}")
    assert result.database.count("tc") > 0
    # Plans are cached per engine, so only the first round compiles.
    assert (len(engine._plan_cache) > 0) == use_plans


def test_abl_reasoner_vs_baseline(benchmark, shareholding_graphs):
    from repro.finkg.control import run_control_metalog

    graph = shareholding_graphs[1000]
    stakes = stakes_from_graph(graph)

    import time

    t0 = time.perf_counter()
    baseline = control_pairs(stakes)
    baseline_seconds = time.perf_counter() - t0

    def metalog():
        return run_control_metalog(graph, node_label="Company")

    outcome = benchmark.pedantic(metalog, rounds=2, iterations=1)
    metalog_seconds = outcome.result.stats.elapsed_seconds
    factor = metalog_seconds / max(baseline_seconds, 1e-9)
    banner("Ablation (c) — control: MetaLog reasoner vs direct baseline")
    print(f"  baseline: {baseline_seconds * 1000:8.1f} ms "
          f"({len(baseline)} pairs incl. persons)")
    print(f"  reasoner: {metalog_seconds * 1000:8.1f} ms  "
          f"(overhead factor ~{factor:.0f}x)")
    # The declarative pipeline costs more — that is the expected shape —
    # but must stay within a sane factor at this scale.
    assert factor > 1


@pytest.mark.parametrize("depth", [2, 4, 6, 8])
def test_abl_iown_depth(benchmark, depth):
    # The truncation error is measured against the series' own limit
    # (depth 48 is numerically converged at spectral radius <= 0.95);
    # against the absorbing-root exact value the residual gap on cyclic
    # pairs is a semantic difference, not a truncation artifact.
    stakes = stakes_as_tuples(
        generate_shareholding_data(
            ShareholdingConfig(companies=400, seed=31, cycle_probability=0.0)
        )
    )
    exact = integrated_ownership_series(stakes, depth=48)

    def truncated():
        return integrated_ownership_series(stakes, depth=depth)

    series = benchmark.pedantic(truncated, rounds=2, iterations=1)
    error = max(
        abs(exact[key] - series.get(key, 0.0)) for key in exact
    )
    banner(f"Ablation (d) — integrated-ownership unrolling depth {depth}")
    print(f"  pairs: exact {len(exact)} vs depth-{depth} {len(series)}; "
          f"max abs error {error:.2e}")
    # Error decays with depth; by 8 levels it is negligible on the
    # mostly-acyclic registry.
    if depth >= 8:
        assert error < 1e-2
