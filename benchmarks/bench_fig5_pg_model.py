"""E-FIG5 — regenerate Figure 5: the PG model as super-model constructs."""

from conftest import banner

from repro.models import PROPERTY_GRAPH_MODEL


def test_fig5_pg_model_table(benchmark):
    table = benchmark(PROPERTY_GRAPH_MODEL.construct_table)
    banner("Figure 5 — the essential PG model (construct: super-construct)")
    print(table)
    specializations = {c.name: c.specializes for c in PROPERTY_GRAPH_MODEL.constructs}
    assert specializations == {
        "Node": "SM_Node",
        "Label": "SM_Type",
        "Relationship": "SM_Edge",
        "Property": "SM_Attribute",
        "UniquePropertyModifier": "SM_UniqueAttributeModifier",
        "HAS_LABEL": "SM_HAS_NODE_TYPE",
        "FROM": "SM_FROM",
        "TO": "SM_TO",
        "HAS_PROPERTY": "SM_HAS_NODE_PROPERTY",
        "HAS_MODIFIER": "SM_HAS_MODIFIER",
    }
