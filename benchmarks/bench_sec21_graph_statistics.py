"""E-STATS — regenerate the Section 2.1 graph-statistics table on the
synthetic shareholding registry, side by side with the paper's values.

Absolute counts differ (the paper's registry has 11.97M nodes; we run at
laptop scale), so the assertions target the *shape*: edge/node ratio,
degenerate SCCs, a giant WCC, hub-dominated degrees, scale-free tail.
"""

import pytest
from conftest import banner

from repro.graph import PAPER_STATISTICS, summarize


@pytest.mark.parametrize("companies", [1000, 5000, 20000])
def test_sec21_statistics_table(benchmark, shareholding_graphs, companies):
    graph = shareholding_graphs[companies]

    def compute():
        return summarize(graph)

    stats = benchmark.pedantic(compute, rounds=2, iterations=1)
    banner(f"Section 2.1 statistics — synthetic registry, {companies} companies")
    print(stats.format_table())

    paper_edge_ratio = PAPER_STATISTICS["edges"] / PAPER_STATISTICS["nodes"]
    measured_edge_ratio = stats.edges / stats.nodes
    print(f"\n  edges/nodes: paper {paper_edge_ratio:.2f} vs "
          f"measured {measured_edge_ratio:.2f}")

    # Shape assertions mirroring the paper's characterization:
    # "11.96M SCCs composed on average of one node"
    assert stats.avg_scc_size < 1.05
    assert stats.largest_scc < 0.01 * stats.nodes
    # "the largest WCC has more than six million nodes" (~50%)
    assert stats.largest_wcc > 0.30 * stats.nodes
    # "average in-degree 3.12, out-degree 1.78": in exceeds out
    assert stats.avg_in_degree > stats.avg_out_degree
    # "maximum in-degree more than 16.9k": hubs far above the average
    assert stats.max_in_degree > 4 * stats.avg_in_degree
    # "the degree distribution follows a power-law"
    assert stats.power_law is not None
    assert stats.power_law.is_plausibly_scale_free
    assert 1.5 < stats.power_law.alpha < 4.5
    # "average clustering coefficient ~ 0.0086": small
    assert stats.avg_clustering < 0.08
