"""E-FIG6 — regenerate Figure 6: the Company KG translated to the PG
model through SSST Algorithm 1 (Eliminate + Copy MetaLog mappings)."""

from conftest import banner

from repro.finkg.company_schema import company_super_schema
from repro.ssst import SSST


def test_fig6_pg_translation(benchmark):
    def regenerate():
        return SSST().translate(company_super_schema(), "property-graph")

    result = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    schema = result.target_schema
    banner("Figure 6 — the Company KG translated to the PG model")
    print(schema.summary())
    for node_class in schema.node_classes:
        properties = ", ".join(
            p.name + ("?" if p.optional else "") for p in node_class.properties
        )
        print(f"  (:{':'.join(node_class.labels)}) {{{properties}}}")
    print(f"  {len(schema.relationship_classes)} relationship classes, "
          f"{len(schema.unique_constraints())} unique constraints")

    # The Figure 6 content: generalizations erased via type accumulation,
    # attribute and edge inheritance.
    listed = schema.node_class_by_label("PublicListedCompany")
    assert set(listed.labels) == {
        "PublicListedCompany", "Business", "LegalPerson", "Person",
    }
    assert {"fiscalCode", "businessName", "shareholdingCapital",
            "stockExchange"} <= {p.name for p in listed.properties}
    holds_sources = set()
    for relationship in schema.relationship_classes:
        if relationship.name == "HOLDS":
            holds_sources.add(
                schema.node_class_by_oid(relationship.source_oid).primary_label
            )
    assert "PhysicalPerson" in holds_sources and "Business" in holds_sources
    assert len(schema.node_classes) == 11
