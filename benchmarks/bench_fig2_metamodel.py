"""E-FIG2 — regenerate Figure 2: the meta-model and its rendering."""

from conftest import banner

from repro.core import metamodel_dictionary, render_metamodel


def test_fig2_metamodel(benchmark):
    def regenerate():
        graph = metamodel_dictionary()
        return graph, render_metamodel()

    graph, graphemes = benchmark(regenerate)
    banner("Figure 2 — the meta-model (Gamma_MM rendering)")
    for grapheme in graphemes:
        print(" ", grapheme)
    assert graph.node_count == 3
    assert graph.edge_count == 4
    assert sum(1 for g in graphemes if g.kind == "node-box") == 3
