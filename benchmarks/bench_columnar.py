"""E-COL — columnar fact storage vs the tuple-at-a-time backend.

Materializes the company-control pipeline over generated shareholding
registries with both storage backends (``Engine(columnar=True)`` — the
default — and ``Engine(columnar=False)``), records per-phase wall time
(load / reason / flush) and the Python-heap peak (``tracemalloc``), and
verifies the two enriched instances are fact-set identical up to
labeled-null renaming.  Process-level peak RSS (``resource.ru_maxrss``)
is recorded once per run for context; it is monotonic per process, so
only tracemalloc peaks are comparable across backends.

The emitted JSON is validated against an inline schema before it is
written, and ``--check FILE`` re-validates an existing payload (used by
the CI ``col-smoke`` job).

Usage::

    PYTHONPATH=src python benchmarks/bench_columnar.py
    PYTHONPATH=src python benchmarks/bench_columnar.py \
        --sizes 1000 50000 --out BENCH_COL.json
    PYTHONPATH=src python benchmarks/bench_columnar.py --check BENCH_COL.json
"""

import argparse
import json
import os
import resource
import sys
import time
import tracemalloc

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.finkg import programs
from repro.finkg.company_schema import company_super_schema
from repro.metalog import parse_metalog
from repro.ssst import IntensionalMaterializer
from repro.vadalog import Engine

from bench_incremental import business_registry, canon_instance


def _materialize(companies: int, seed: int, columnar: bool):
    registry = business_registry(companies, seed=seed)
    schema = company_super_schema()
    sigma = parse_metalog(programs.CONTROL_PROGRAM)
    materializer = IntensionalMaterializer(engine=Engine(columnar=columnar))
    start = time.perf_counter()
    report = materializer.materialize(schema, registry, sigma, instance_oid=9)
    total = time.perf_counter() - start
    return report, total


def _backend_row(companies: int, seed: int, columnar: bool, memory: bool) -> dict:
    report, total = _materialize(companies, seed, columnar)
    row = {
        "backend": "columnar" if columnar else "tuple",
        "total_seconds": round(total, 4),
        "load_seconds": round(report.load_seconds, 4),
        "reason_seconds": round(report.reason_seconds, 4),
        "flush_seconds": round(report.flush_seconds, 4),
        "controls_derived": report.derived_counts.get("CONTROLS", 0),
        "instance": report.instance,
    }
    if memory:
        # Separate pass: tracemalloc distorts wall time, so timing and
        # memory never share a run.
        tracemalloc.start()
        _materialize(companies, seed, columnar)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        row["peak_heap_bytes"] = peak
    return row


def run_size(
    companies: int, seed: int, memory: bool, verify: bool,
    columnar_only: bool = False,
) -> dict:
    col = _backend_row(companies, seed, columnar=True, memory=memory)
    if columnar_only:
        # Sweep-extension mode (large sizes, repeat-min protocols): no
        # tuple twin, no cross-backend speedups, differential carried by
        # the full two-backend runs at the smaller sizes.
        del col["instance"]
        return {"companies": companies, "columnar": col}
    tup = _backend_row(companies, seed, columnar=False, memory=memory)
    ok = True
    if verify:
        ok = canon_instance(col["instance"].data) == canon_instance(
            tup["instance"].data
        )
    for row in (col, tup):
        del row["instance"]
    result = {
        "companies": companies,
        "columnar": col,
        "tuple": tup,
        "load_speedup": round(
            tup["load_seconds"] / max(col["load_seconds"], 1e-9), 2
        ),
        "total_speedup": round(
            tup["total_seconds"] / max(col["total_seconds"], 1e-9), 2
        ),
        "differential_ok": ok,
    }
    if memory:
        result["heap_reduction"] = round(
            1.0 - col["peak_heap_bytes"] / max(tup["peak_heap_bytes"], 1), 3
        )
    return result


# ---------------------------------------------------------------------------
# Payload schema (kept dependency-free: no jsonschema in the image)
# ---------------------------------------------------------------------------

_BACKEND_FIELDS = {
    "backend": str,
    "total_seconds": (int, float),
    "load_seconds": (int, float),
    "reason_seconds": (int, float),
    "flush_seconds": (int, float),
    "controls_derived": int,
}
_ROW_FIELDS = {
    "companies": int,
    "columnar": dict,
    "tuple": dict,
    "load_speedup": (int, float),
    "total_speedup": (int, float),
    "differential_ok": bool,
}
_TOP_FIELDS = {
    "experiment": str,
    "program": str,
    "seed": int,
    "peak_rss_kb": int,
    "results": list,
}


def validate(payload: dict) -> list:
    """Structural check of a BENCH_COL payload; returns problem strings."""
    problems = []

    def check(obj, fields, where):
        for field, types in fields.items():
            if field not in obj:
                problems.append(f"{where}: missing field '{field}'")
            elif not isinstance(obj[field], types):
                problems.append(
                    f"{where}: field '{field}' has type "
                    f"{type(obj[field]).__name__}"
                )

    check(payload, _TOP_FIELDS, "payload")
    if payload.get("experiment") != "E-COL":
        problems.append("payload: experiment must be 'E-COL'")
    for i, row in enumerate(payload.get("results") or []):
        where = f"results[{i}]"
        if not isinstance(row, dict):
            problems.append(f"{where}: not an object")
            continue
        check(row, _ROW_FIELDS, where)
        for backend in ("columnar", "tuple"):
            sub = row.get(backend)
            if isinstance(sub, dict):
                check(sub, _BACKEND_FIELDS, f"{where}.{backend}")
        if not row.get("differential_ok", False):
            problems.append(f"{where}: differential_ok is not true")
    if not payload.get("results"):
        problems.append("payload: results is empty")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[1000])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", default="BENCH_COL.json")
    parser.add_argument("--no-memory", action="store_true",
                        help="skip the tracemalloc pass (halves runtime)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the columnar-vs-tuple differential check")
    parser.add_argument("--columnar-only", action="store_true",
                        help="skip the tuple backend (sweep extension; "
                        "payload is not E-COL-schema complete)")
    parser.add_argument("--require-load-speedup", type=float, default=None,
                        help="fail unless every size clears this load speedup")
    parser.add_argument("--check", metavar="FILE", default=None,
                        help="validate an existing payload and exit")
    args = parser.parse_args()

    if args.check is not None:
        with open(args.check, "r", encoding="utf-8") as handle:
            problems = validate(json.load(handle))
        for problem in problems:
            print(f"schema: {problem}", file=sys.stderr)
        print(f"{args.check}: {'INVALID' if problems else 'schema OK'}")
        return 1 if problems else 0

    rows = []
    for companies in args.sizes:
        row = run_size(
            companies, args.seed, not args.no_memory, not args.no_verify,
            columnar_only=args.columnar_only,
        )
        rows.append(row)
        if args.columnar_only:
            col = row["columnar"]
            print(
                f"E-COL {companies} companies (columnar only): load "
                f"{col['load_seconds']:.2f}s, reason "
                f"{col['reason_seconds']:.2f}s, flush "
                f"{col['flush_seconds']:.2f}s, total "
                f"{col['total_seconds']:.2f}s"
            )
            continue
        mem = (
            f", heap -{row['heap_reduction'] * 100:.0f}%"
            if "heap_reduction" in row
            else ""
        )
        print(
            f"E-COL {companies} companies: load "
            f"{row['tuple']['load_seconds']:.2f}s -> "
            f"{row['columnar']['load_seconds']:.2f}s "
            f"({row['load_speedup']:.1f}x), total {row['total_speedup']:.1f}x"
            f"{mem}, differential "
            f"{'OK' if row['differential_ok'] else 'MISMATCH'}"
        )

    payload = {
        "experiment": "E-COL",
        "program": "CONTROL_PROGRAM",
        "seed": args.seed,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "results": rows,
    }
    problems = [] if args.columnar_only else validate(payload)
    for problem in problems:
        print(f"schema: {problem}", file=sys.stderr)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if problems:
        return 1
    if args.require_load_speedup is not None and any(
        row["load_speedup"] < args.require_load_speedup for row in rows
    ):
        print(f"load speedup below required {args.require_load_speedup}x")
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
