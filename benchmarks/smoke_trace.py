"""CI smoke check: a traced reasoning run must emit a schema-valid trace.

Runs the Example 4.1 control program over a small synthetic shareholding
graph with a :class:`~repro.obs.RecordingTracer` attached, writes the
JSONL trace, validates every record against the trace schema, and exits
non-zero on any problem.  Standalone on purpose — no pytest-benchmark —
so the CI job stays a plain ``python benchmarks/smoke_trace.py``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.finkg.control import controls_pairs_from_graph, run_control_metalog
from repro.finkg.generator import ShareholdingConfig, generate_shareholding_graph
from repro.obs import (
    RecordingTracer,
    profile_summary,
    validate_trace_file,
    write_trace,
)
from repro.vadalog.engine import Engine


def main(out_path: str | None = None) -> int:
    graph = generate_shareholding_graph(ShareholdingConfig(companies=200, seed=7))
    tracer = RecordingTracer()
    outcome = run_control_metalog(
        graph, node_label="Company", engine=Engine(tracer=tracer)
    )
    pairs = controls_pairs_from_graph(outcome.graph)
    if not pairs:
        print("smoke: no CONTROLS edges derived", file=sys.stderr)
        return 1
    if tracer.open_spans():
        print(f"smoke: unclosed spans: {tracer.open_spans()}", file=sys.stderr)
        return 1

    if out_path is None:
        out_path = str(Path(tempfile.mkdtemp(prefix="smoke_trace_")) / "trace.jsonl")
    records = write_trace(tracer, out_path)
    problems = validate_trace_file(out_path)
    if problems:
        for problem in problems:
            print(f"smoke: invalid trace: {problem}", file=sys.stderr)
        return 1

    expected = {"engine.run", "engine.stratum", "engine.rule", "mtv.compile"}
    seen = {span.name for span in tracer.spans}
    missing = expected - seen
    if missing:
        print(f"smoke: expected spans missing: {sorted(missing)}", file=sys.stderr)
        return 1

    print(f"smoke: {records} schema-valid trace records at {out_path}")
    print(f"smoke: {len(pairs)} control pairs derived")
    print(profile_summary(tracer))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else None))
