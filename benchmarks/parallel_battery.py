"""Parallel-vs-serial differential smoke battery (CI gate).

Runs the full 52-program randomized battery — the same generators the
serial differential suite uses — through ``Engine.run(workers=N)`` and
compares every output predicate against the interpreted serial oracle,
up to labeled-null identity.  Exit status is non-zero on any mismatch.

Usage::

    PYTHONPATH=src python benchmarks/parallel_battery.py --workers 2
"""

import argparse
import os
import random
import sys
import time

# The battery reuses the program generators of tests/test_engine_plans.py;
# make the repo root importable regardless of how the script is invoked.
sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.vadalog import Engine, parse_program


def graph_boundary_differential(companies: int = 400) -> int:
    """Bulk vs per-object graph boundary, both storage backends.

    Extracts a business registry through ``graph_to_database`` with
    ``bulk=True`` and ``bulk=False`` and requires bit-identical relation
    content *and order* (stable extraction order), then runs the control
    program and requires the materialized graphs to match, for both the
    tuple and the columnar backend.  Returns the mismatch count.
    """
    from benchmarks.bench_incremental import business_registry
    from repro.metalog import (
        GraphCatalog, compile_metalog, graph_to_database, parse_metalog,
    )
    from repro.metalog.mtv import materialize_into_graph

    control = (
        "(x: Business)[:OWNS; percentage: w](y: Business),"
        " v = msum(w, <x>), v > 0.5"
        " -> exists c : (x)[c: CONTROLS](y)."
    )
    graph = business_registry(companies)
    catalog = GraphCatalog.from_graph(graph)
    compiled = compile_metalog(parse_metalog(control), catalog)
    mismatches = 0
    for columnar in (False, True):
        fast = graph_to_database(
            graph, compiled.catalog, columnar=columnar, bulk=True
        )
        slow = graph_to_database(
            graph, compiled.catalog, columnar=columnar, bulk=False
        )
        if fast.predicates() != slow.predicates() or any(
            list(fast.relation(p)) != list(slow.relation(p))
            for p in fast.predicates()
        ):
            mismatches += 1
            print(f"MISMATCH graph extraction columnar={columnar}")
            continue
        result = Engine().run(compiled.program, database=fast)
        targets = []
        for bulk in (True, False):
            target = graph.copy()
            materialize_into_graph(result, compiled, target, bulk=bulk)
            targets.append(target)
        fast_graph, slow_graph = targets
        fast_snap = (
            [(n.id, n.label, sorted(n.properties.items(), key=repr))
             for n in fast_graph.nodes()],
            [(e.id, e.source, e.target, e.label,
              sorted(e.properties.items(), key=repr))
             for e in fast_graph.edges()],
        )
        slow_snap = (
            [(n.id, n.label, sorted(n.properties.items(), key=repr))
             for n in slow_graph.nodes()],
            [(e.id, e.source, e.target, e.label,
              sorted(e.properties.items(), key=repr))
             for e in slow_graph.edges()],
        )
        if fast_snap != slow_snap:
            mismatches += 1
            print(f"MISMATCH graph write-back columnar={columnar}")
    return mismatches


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--backend", default=None, choices=["process", "thread", "serial"]
    )
    parser.add_argument(
        "--min-partition", type=int, default=1,
        help="fan-out threshold (default 1: dispatch everything)",
    )
    args = parser.parse_args()

    import repro.vadalog.parallel as parallel

    parallel.DEFAULT_MIN_PARTITION = args.min_partition

    from tests.test_engine_plans import (
        _aggregate_case,
        _canon,
        _existential_case,
        _recursion_case,
    )

    cases = []
    for seed in range(20):
        cases.append(("recursion", seed, _recursion_case(random.Random(1000 + seed))))
    for seed in range(16):
        cases.append(("aggregate", seed, _aggregate_case(random.Random(2000 + seed))))
    for seed in range(16):
        cases.append(("existential", seed, _existential_case(random.Random(3000 + seed))))

    start = time.perf_counter()
    mismatches = 0
    for kind, seed, (text, predicates, inputs) in cases:
        program = parse_program(text)
        oracle = Engine(use_plans=False).run(program, inputs=inputs)
        result = Engine(
            workers=args.workers, parallel_backend=args.backend
        ).run(program, inputs=inputs)
        for predicate in predicates:
            if _canon(oracle.facts(predicate)) != _canon(result.facts(predicate)):
                mismatches += 1
                print(f"MISMATCH {kind} seed={seed} predicate={predicate}")
                break
    boundary_mismatches = graph_boundary_differential()
    mismatches += boundary_mismatches
    elapsed = time.perf_counter() - start
    print(
        f"parallel battery: {len(cases)} programs, workers={args.workers}, "
        f"backend={args.backend or 'auto'}, mismatches={mismatches} "
        f"(graph boundary: {boundary_mismatches}), {elapsed:.1f}s"
    )
    return 1 if mismatches else 0


if __name__ == "__main__":
    sys.exit(main())
