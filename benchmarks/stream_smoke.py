"""CI smoke for crash-safe streaming: crash/resume bit-identity vs batch.

Drives a CDC change feed over a small shareholding registry through the
:class:`DeltaStream` pipeline twice — once to completion, once killed
after the first batch and resumed from the durable delta log — and
checks both runs against a from-scratch batch materialization of the
final registry on *all three* deployed backends (property graph, RDF
triple store, relational engine).  A serve-mode (fact stream) crash is
replayed the same way against the incremental Vadalog engine.

Exit codes: 0 success, 1 any divergence.

Usage::

    PYTHONPATH=src python benchmarks/stream_smoke.py
    PYTHONPATH=src python benchmarks/stream_smoke.py --companies 200
"""

import argparse
import os
import sys
import tempfile

try:
    import repro  # noqa: F401 — installed package (CI) or PYTHONPATH=src
except ImportError:
    sys.path.insert(
        0,
        os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        ),
    )

from repro.deploy import GraphStore, RetryPolicy, TripleStore
from repro.deploy.loaders import load_graph_store, load_triple_store
from repro.deploy.relational_engine import RelationalEngine
from repro.deploy.resilience import graph_store_state
from repro.finkg import programs
from repro.finkg.company_schema import company_super_schema
from repro.metalog import parse_metalog
from repro.ssst import SSST, IntensionalMaterializer
from repro.ssst.inverse import graph_instance_to_relational
from repro.stream import DeltaStream, GeneratorFeed, MaterializerSink, ServeStateSink

from bench_stream import apply_changes, business_registry, change_feed

_failures = []


def check(name, condition, detail=""):
    status = "ok" if condition else "FAIL"
    print(f"stream smoke: {name}: {status}" + (f" ({detail})" if detail else ""))
    if not condition:
        _failures.append(name)


def make_targets():
    schema = company_super_schema()
    graph_store = GraphStore()
    graph_store.deploy(SSST().translate(schema, "property-graph").target_schema)
    triple_store = TripleStore()
    triple_store.deploy(SSST().translate(schema, "rdf").target_schema)
    engine = RelationalEngine()
    engine.deploy(SSST().translate(schema, "relational").target_schema)
    return graph_store, triple_store, engine


def make_sink(registry):
    sink = MaterializerSink(
        company_super_schema(),
        parse_metalog(programs.CONTROL_PROGRAM),
        registry,
        instance_oid=9,
        retry=RetryPolicy(sleep=lambda _s: None),
    )
    targets = make_targets()
    sink.attach_graph_store(targets[0])
    sink.attach_triple_store(targets[1])
    sink.attach_relational_engine(targets[2])
    return sink, targets


def backend_states(graph_store, triple_store, engine):
    rows = {
        table: sorted(
            map(repr, (tuple(sorted(r.items())) for r in engine.rows(table)))
        )
        for table in engine.tables()
    }
    return (
        graph_store_state(graph_store),
        frozenset(triple_store.triples()),
        rows,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--companies", type=int, default=120)
    parser.add_argument("--updates", type=int, default=30)
    parser.add_argument("--batch-window", type=int, default=4)
    args = parser.parse_args()

    base = business_registry(args.companies)
    records = change_feed(base, args.updates)
    print(
        f"stream smoke: {base.node_count} nodes / {base.edge_count} edges, "
        f"{len(records)} CDC records, window {args.batch_window}"
    )

    # Batch reference: materialize the final registry from scratch and
    # load every backend.
    final = apply_changes(base, records)
    reference = IntensionalMaterializer().materialize(
        company_super_schema(), final,
        parse_metalog(programs.CONTROL_PROGRAM), instance_oid=9,
    )
    ref_targets = make_targets()
    load_graph_store(company_super_schema(), reference.instance.data, ref_targets[0])
    load_triple_store(company_super_schema(), reference.instance.data, ref_targets[1])
    graph_instance_to_relational(
        company_super_schema(), reference.instance.data, ref_targets[2]
    )
    reference_states = backend_states(*ref_targets)

    # Uninterrupted stream.
    with tempfile.TemporaryDirectory(prefix="stream_smoke_") as log_dir:
        sink, targets = make_sink(base.copy())
        report = DeltaStream(
            GeneratorFeed(records), sink, log_dir,
            batch_window=args.batch_window, fsync=False,
        ).run()
        check(
            "straight stream matches the batch run on all 3 backends",
            backend_states(*targets) == reference_states,
            f"{report.batches_applied} batches, "
            f"coalesce {report.coalesce_ratio():.2f}",
        )

    # Crash after the first batch, then resume from the durable log.
    with tempfile.TemporaryDirectory(prefix="stream_smoke_") as log_dir:
        crashed_sink, _ = make_sink(base.copy())
        DeltaStream(
            GeneratorFeed(records), crashed_sink, log_dir,
            batch_window=args.batch_window, fsync=False,
            checkpoint_every=1, max_batches=1,
        ).run()
        resumed_sink, targets = make_sink(base.copy())
        report = DeltaStream(
            GeneratorFeed(records), resumed_sink, log_dir,
            batch_window=args.batch_window, fsync=False,
        ).run(resume=True)
        check(
            "crash/resume stream is bit-identical on all 3 backends",
            report.replayed_records > 0
            and backend_states(*targets) == reference_states,
            f"replayed {report.replayed_records} records, "
            f"{report.batches_applied} batches after resume",
        )

    # Serve-mode fact stream: crash and resume against the incremental
    # engine must equal the uninterrupted run.
    program = "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
    entries = [
        {"seq": i, "op": "assert", "predicate": "e",
         "fact": [f"n{i}", f"n{i + 1}"]}
        for i in range(16)
    ]
    straight = ServeStateSink(program=program, inputs={"e": [("a", "b")]})
    with tempfile.TemporaryDirectory(prefix="stream_smoke_") as log_dir:
        DeltaStream(
            GeneratorFeed(entries), straight, log_dir, batch_window=4,
            fsync=False,
        ).run()
    with tempfile.TemporaryDirectory(prefix="stream_smoke_") as log_dir:
        crashed = ServeStateSink(program=program, inputs={"e": [("a", "b")]})
        DeltaStream(
            GeneratorFeed(entries), crashed, log_dir, batch_window=4,
            fsync=False, checkpoint_every=1, max_batches=2,
        ).run()
        resumed = ServeStateSink(program=program, inputs={"e": [("a", "b")]})
        DeltaStream(
            GeneratorFeed(entries), resumed, log_dir, batch_window=4,
            fsync=False,
        ).run(resume=True)
    check(
        "serve-mode crash/resume matches the uninterrupted fact stream",
        dict(resumed.state.snapshot.facts) == dict(straight.state.snapshot.facts),
        f"{resumed.state.snapshot.total_facts()} facts",
    )

    if _failures:
        print(
            f"stream smoke: {len(_failures)} check(s) failed: {_failures}",
            file=sys.stderr,
        )
        return 1
    print("stream smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
