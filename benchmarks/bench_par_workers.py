"""E-PAR — partition-parallel chase: E-CTRL company control at 5k
companies across worker counts, with serial output as the correctness
oracle.

Speedup is hardware-dependent: on a single-core container the process
pool adds fork/IPC overhead and cannot beat serial, so the matrix
records honest numbers either way.  The assertion is the part that must
always hold — every worker count produces exactly the serial result.
"""

import os

import pytest
from conftest import banner

from repro.finkg.control import (
    controls_pairs_from_graph,
    run_control_metalog,
)
from repro.vadalog.engine import Engine


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_epar_control_workers(benchmark, shareholding_graphs, workers):
    graph = shareholding_graphs[5000]
    serial = run_control_metalog(graph, node_label="Company")
    expected = controls_pairs_from_graph(serial.graph)

    engine = Engine(workers=workers)

    def reason():
        return run_control_metalog(graph, node_label="Company", engine=engine)

    outcome = benchmark.pedantic(reason, rounds=2, iterations=1)
    banner(
        f"E-PAR company control, 5k companies — workers={workers} "
        f"(host cores: {os.cpu_count()})"
    )
    stats = outcome.result.stats
    print(f"  chase: {stats.iterations} iterations, "
          f"{stats.facts_derived} facts, {stats.elapsed_seconds:.2f}s")
    assert controls_pairs_from_graph(outcome.graph) == expected
