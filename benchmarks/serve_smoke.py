"""Smoke test for `kgmodel serve`: a real HTTP server under concurrent
read/write load.

Starts :class:`KGModelServer` on a loopback port over a transitive-
closure chain, then runs reader threads (mixing snapshot, magic and
cached requests plus graph traversals) against a writer posting deltas
that extend the chain.  Every reader response is checked against the
exact expected answer set for the epoch it reports — any torn read,
non-200/503 status, or cross-epoch inconsistency fails the script.

Exit codes: 0 success, 1 consistency or status failure.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py
    PYTHONPATH=src python benchmarks/serve_smoke.py --readers 12 --deltas 30
"""

import argparse
import json
import os
import sys
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.serve import ResultCache, ServeState, ServiceHandlers, build_server

PROGRAM = "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
BASE = 6  # chain a0 -> ... -> a6 at epoch 0


def fetch(url, body=None, timeout=30):
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode() if body is not None else None,
        headers={"Content-Type": "application/json"} if body else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--readers", type=int, default=8)
    parser.add_argument("--deltas", type=int, default=24)
    parser.add_argument("--delta-sleep", type=float, default=0.01)
    args = parser.parse_args()

    edges = [(f"a{i}", f"a{i + 1}") for i in range(BASE)]
    state = ServeState(PROGRAM, inputs={"e": edges}, check_wardedness=False)
    handlers = ServiceHandlers(state, cache=ResultCache(256))
    expected = {
        epoch: sorted(
            [["a0", f"a{i}"] for i in range(1, BASE + epoch + 1)]
        )
        for epoch in range(args.deltas + 1)
    }

    stop = threading.Event()
    errors = []
    reads = [0] * args.readers
    query = urllib.parse.quote('tc("a0", Y)?')

    with build_server(handlers) as server:
        def reader(index):
            mode = ("snapshot", "magic")[index % 2]
            url = f"{server.url}/query?q={query}&engine={mode}"
            while not stop.is_set() or reads[index] < 3:
                try:
                    status, payload = fetch(url)
                except Exception as exc:  # noqa: BLE001 - report and fail
                    errors.append((index, "transport", repr(exc)))
                    return
                if status != 200:
                    errors.append((index, "status", status, payload))
                    return
                if sorted(payload["answers"]) != expected.get(payload["epoch"]):
                    errors.append((index, "torn", payload["epoch"]))
                    return
                reads[index] += 1

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in range(args.readers)
        ]
        for thread in threads:
            thread.start()

        for i in range(args.deltas):
            status, payload = fetch(
                f"{server.url}/delta",
                {"added": {"e": [[f"a{BASE + i}", f"a{BASE + i + 1}"]]}},
            )
            if status != 200 or payload["epoch"] != i + 1:
                errors.append(("writer", status, payload))
                break
            time.sleep(args.delta_sleep)

        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        alive = sum(thread.is_alive() for thread in threads)
        status, stats = fetch(f"{server.url}/stats")

    for error in errors[:5]:
        print(f"FAIL: {error}", file=sys.stderr)
    if alive:
        print(f"FAIL: {alive} reader thread(s) hung", file=sys.stderr)
        return 1
    if errors:
        return 1
    cache = stats["cache"]
    print(
        f"serve smoke OK: {sum(reads)} reads across {args.readers} readers, "
        f"{args.deltas} deltas, final epoch "
        f"{state.snapshot.epoch}, cache hit rate {cache['hit_rate']:.2f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
