"""E-FAULT — resilience under injected faults: the fault-rate x
retry-policy matrix.

For each (transient fault rate, retry budget) cell the harness loads the
same synthetic Company KG into a fresh graph store through a seeded
:class:`~repro.deploy.FaultInjector` and reports the success rate over a
seed battery, the retry volume, and the wall-clock overhead against the
fault-free load.  Backoff goes through a no-op sleep, so the overhead
measured is pure bookkeeping (savepoints, retries, replay detection) —
the floor a real deployment pays on top of its actual sleep schedule.

EXPERIMENTS.md records the matrix; the invariant asserted here is the
one the paper's deployment story needs: whenever a load under faults
completes, its final state is byte-identical to the clean load.
"""

import pytest
from conftest import banner

from repro.deploy import (
    FaultInjector,
    GraphStore,
    RetryPolicy,
    graph_store_state,
    load_graph_store,
)
from repro.errors import RetryExhaustedError
from repro.finkg.company_schema import company_super_schema
from repro.finkg.generator import ShareholdingConfig, generate_company_kg
from repro.ssst import SSST

COMPANIES = 300
SEED_BATTERY = (11, 23, 37, 41, 53)


@pytest.fixture(scope="module")
def target_schema():
    return SSST().translate(company_super_schema(), "property-graph").target_schema


@pytest.fixture(scope="module")
def instance():
    return generate_company_kg(ShareholdingConfig(companies=COMPANIES, seed=3))


@pytest.fixture(scope="module")
def clean_state(target_schema, instance):
    store = GraphStore()
    store.deploy(target_schema)
    load_graph_store(company_super_schema(), instance, store)
    return graph_store_state(store)


def _load_under_faults(target_schema, instance, fault_rate, max_attempts, seed):
    """One cell sample: returns (succeeded, retries, state)."""
    store = GraphStore()
    store.deploy(target_schema)
    injector = FaultInjector(store, fault_rate=fault_rate, seed=seed)
    policy = RetryPolicy(max_attempts=max_attempts, sleep=lambda _s: None)
    try:
        report = load_graph_store(
            company_super_schema(), instance, injector, policy=policy
        )
    except RetryExhaustedError:
        return False, injector.faults_injected, None
    return True, report.retries, graph_store_state(store)


def test_fault_free_baseline(benchmark, target_schema, instance, clean_state):
    """The zero-fault load through the transactional path (the overhead
    reference for every matrix cell)."""

    def load():
        store = GraphStore()
        store.deploy(target_schema)
        return load_graph_store(company_super_schema(), instance, store), store

    report, store = benchmark(load)
    banner(f"E-FAULT baseline — {COMPANIES} companies, no faults")
    print(f"  {report.summary()}")
    assert report.retries == 0
    assert graph_store_state(store) == clean_state


@pytest.mark.parametrize("fault_rate", [0.05, 0.10, 0.20])
@pytest.mark.parametrize("max_attempts", [2, 5])
def test_fault_matrix_cell(benchmark, target_schema, instance, clean_state,
                           fault_rate, max_attempts):
    successes = 0
    retries = []
    for seed in SEED_BATTERY:
        ok, n_retries, state = _load_under_faults(
            target_schema, instance, fault_rate, max_attempts, seed
        )
        if ok:
            successes += 1
            retries.append(n_retries)
            # The resilience invariant: a completed load under faults is
            # indistinguishable from a clean one.
            assert state == clean_state

    ok, _, _ = benchmark(
        lambda: _load_under_faults(
            target_schema, instance, fault_rate, max_attempts, SEED_BATTERY[0]
        )
    )

    rate = successes / len(SEED_BATTERY)
    banner(
        f"E-FAULT cell — fault rate {fault_rate:.0%}, "
        f"max_attempts={max_attempts}"
    )
    print(f"  success rate: {successes}/{len(SEED_BATTERY)} ({rate:.0%})")
    if retries:
        print(f"  retries per successful load: "
              f"min={min(retries)} max={max(retries)}")
    # The default budget (5 attempts) statistically guarantees success
    # only while rate^attempts x mutations << 1 — at 10% that expected
    # exhaustion count is ~0.1 per load, at 20% it is ~4, so the 20% row
    # (like the starved 2-attempt budget) is informational: the matrix
    # exists precisely to show where a policy stops being enough.
    expected_exhaustions = (
        fault_rate ** max_attempts
        * (instance.node_count + instance.edge_count) * 2
    )
    if expected_exhaustions < 0.5:
        assert successes == len(SEED_BATTERY)
