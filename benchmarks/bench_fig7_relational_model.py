"""E-FIG7 — regenerate Figure 7: the relational model constructs."""

from conftest import banner

from repro.models import RELATIONAL_MODEL


def test_fig7_relational_model_table(benchmark):
    table = benchmark(RELATIONAL_MODEL.construct_table)
    banner("Figure 7 — the essential relational model")
    print(table)
    specializations = {c.name: c.specializes for c in RELATIONAL_MODEL.constructs}
    assert specializations == {
        "Predicate": "SM_Node",
        "Relation": "SM_Type",
        "Field": "SM_Attribute",
        "ForeignKey": "SM_Edge",
        "HAS_RELATION": "SM_HAS_NODE_TYPE",
        "HAS_FIELD": "SM_HAS_NODE_PROPERTY",
        "FK_FROM": "SM_FROM",
        "FK_TO": "SM_TO",
        "HAS_SOURCE_FIELD": "SM_HAS_EDGE_PROPERTY",
    }
