"""E-INCR — incremental materialization vs full re-materialization.

Builds shareholding registries (``Business`` nodes, ``OWNS`` stakes) at
several sizes, materializes the company-control pipeline once with
``retain=True``, then applies single-stake registry updates through
``IntensionalMaterializer.update`` and compares the per-update engine
time against the full Algorithm 2 engine time (load + reason + flush).

Every measured sequence is also verified differentially: after all
updates, the enriched instance must be fact-set-identical (up to
labeled-null renaming) to a from-scratch materialization of the mutated
registry.  Exit status is non-zero on any mismatch or, with
``--require-speedup``, when the median engine speedup falls below the
threshold.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental.py
    PYTHONPATH=src python benchmarks/bench_incremental.py \
        --sizes 500 --updates 4 --out BENCH_INCR.json

    # Columnar scaling point (50k-100k companies; --no-columnar for the
    # tuple-backend baseline of the same sweep):
    PYTHONPATH=src python benchmarks/bench_incremental.py \
        --sizes 50000 --updates 3 --no-verify --out BENCH_INCR_50K.json
"""

import argparse
import json
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.finkg import programs
from repro.finkg.company_schema import company_super_schema
from repro.finkg.generator import ShareholdingConfig, generate_shareholding_data
from repro.graph.property_graph import PropertyGraph
from repro.metalog import parse_metalog
from repro.ssst import IntensionalMaterializer, RegistryDelta
from repro.vadalog import Engine


def business_registry(companies: int, seed: int = 42) -> PropertyGraph:
    """A flat shareholding registry typed against the company super
    schema: ``Business``/``PhysicalPerson`` nodes, ``OWNS`` stakes."""
    data = generate_shareholding_data(ShareholdingConfig(companies=companies, seed=seed))
    graph = PropertyGraph("registry")
    for pid in data.persons:
        graph.add_node(pid, "PhysicalPerson", fiscalCode=f"FC-{pid}")
    for cid in data.companies:
        graph.add_node(
            cid, "Business",
            fiscalCode=f"FC-{cid}", businessName=f"{cid} SpA",
        )
    for index, stake in enumerate(data.stakes):
        graph.add_edge(
            stake.owner, stake.company, "OWNS",
            edge_id=f"stake-{index}", percentage=stake.percentage,
        )
    return graph


def canon_instance(graph):
    """Fact-set canonicalization: invented OIDs (labeled nulls) collapse
    to a sentinel so isomorphic enrichments compare equal."""

    def can(value):
        return value if isinstance(value, (str, int, float, bool)) else "<derived>"

    nodes = set()
    for node in graph.nodes():
        nodes.add((
            can(node.id), node.label,
            tuple(sorted((k, can(v)) for k, v in node.properties.items())),
        ))
    edges = set()
    for edge in graph.edges():
        edges.add((
            can(edge.source), can(edge.target), edge.label,
            tuple(sorted((k, can(v)) for k, v in edge.properties.items())),
        ))
    return nodes, edges


def run_size(
    companies: int, updates: int, seed: int, verify: bool,
    columnar: bool = True,
) -> dict:
    registry = business_registry(companies, seed=seed)
    # update() maintains the registry in place; capture the base size now.
    base_nodes, base_edges = registry.node_count, registry.edge_count
    schema = company_super_schema()
    sigma = parse_metalog(programs.CONTROL_PROGRAM)

    materializer = IntensionalMaterializer(engine=Engine(columnar=columnar))
    start = time.perf_counter()
    report = materializer.materialize(
        schema, registry, sigma, instance_oid=9, retain=True
    )
    full_total = time.perf_counter() - start
    full_engine = report.load_seconds + report.reason_seconds + report.flush_seconds

    businesses = sorted(
        (node.id for node in registry.nodes("Business")), key=str
    )
    update_rows = []
    for i in range(updates):
        owner = businesses[(7 * i + 3) % len(businesses)]
        target = businesses[(11 * i + 41) % len(businesses)]
        if owner == target:
            target = businesses[(11 * i + 42) % len(businesses)]
        delta = RegistryDelta(add_edges=[
            (f"bench-stake-{i}", owner, target, "OWNS", {"percentage": 0.71}),
        ])
        start = time.perf_counter()
        outcome = materializer.update(delta)
        total = time.perf_counter() - start
        update_rows.append({
            "kind": "insert-stake",
            "total_seconds": round(total, 4),
            "engine_seconds": round(outcome.engine_seconds, 4),
            "strata_recomputed": outcome.strata_recomputed,
            "flushed": outcome.flushed,
        })

    # One deletion to exercise the delete/re-derive path at scale.
    start = time.perf_counter()
    outcome = materializer.update(RegistryDelta(remove_edges=["bench-stake-0"]))
    total = time.perf_counter() - start
    update_rows.append({
        "kind": "remove-stake",
        "total_seconds": round(total, 4),
        "engine_seconds": round(outcome.engine_seconds, 4),
        "strata_recomputed": outcome.strata_recomputed,
        "flushed": outcome.flushed,
    })

    ok = True
    if verify:
        reference = IntensionalMaterializer(
            engine=Engine(columnar=columnar)
        ).materialize(
            company_super_schema(), registry, sigma, instance_oid=9
        )
        ok = canon_instance(outcome.instance.data) == canon_instance(
            reference.instance.data
        )

    engine_times = [row["engine_seconds"] for row in update_rows]
    total_times = [row["total_seconds"] for row in update_rows]
    row = {
        "companies": companies,
        "registry_nodes": base_nodes,
        "registry_edges": base_edges,
        "controls_derived": report.derived_counts.get("CONTROLS", 0),
        "full_total_seconds": round(full_total, 4),
        "full_engine_seconds": round(full_engine, 4),
        "full_phases": {
            "load": round(report.load_seconds, 4),
            "reason": round(report.reason_seconds, 4),
            "flush": round(report.flush_seconds, 4),
        },
        "updates": update_rows,
        "median_update_engine_seconds": round(statistics.median(engine_times), 4),
        "median_update_total_seconds": round(statistics.median(total_times), 4),
        "engine_speedup": round(full_engine / max(statistics.median(engine_times), 1e-9), 2),
        "total_speedup": round(full_total / max(statistics.median(total_times), 1e-9), 2),
        "differential_ok": ok,
    }
    return row


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[1000, 5000])
    parser.add_argument("--updates", type=int, default=5,
                        help="single-stake insertions per size (plus one delete)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", default="BENCH_INCR.json")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the from-scratch differential check")
    parser.add_argument("--no-columnar", action="store_true",
                        help="use the tuple-at-a-time storage backend")
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="fail unless every size clears this engine speedup")
    args = parser.parse_args()

    rows = []
    for companies in args.sizes:
        row = run_size(
            companies, args.updates, args.seed, not args.no_verify,
            columnar=not args.no_columnar,
        )
        rows.append(row)
        print(
            f"E-INCR {companies} companies: full engine "
            f"{row['full_engine_seconds']:.2f}s, median update engine "
            f"{row['median_update_engine_seconds']:.3f}s -> "
            f"{row['engine_speedup']:.1f}x (total {row['total_speedup']:.1f}x), "
            f"differential {'OK' if row['differential_ok'] else 'MISMATCH'}"
        )

    payload = {
        "experiment": "E-INCR",
        "program": "CONTROL_PROGRAM",
        "updates_per_size": args.updates,
        "seed": args.seed,
        "backend": "tuple" if args.no_columnar else "columnar",
        "results": rows,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if any(not row["differential_ok"] for row in rows):
        return 1
    if args.require_speedup is not None and any(
        row["engine_speedup"] < args.require_speedup for row in rows
    ):
        print(f"speedup below required {args.require_speedup}x")
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
