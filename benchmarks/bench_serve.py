"""E-SERVE — goal-directed point queries vs full re-evaluation.

Builds the serve-layer demo workload (the Example 4.1 company-control
program over a generated shareholding registry), then answers single-
binding point queries ``controls(c, B)?`` two ways: through the
magic-sets rewrite (:class:`GoalDirectedEvaluator.answer`) and by
re-running the full chase and filtering
(:meth:`~GoalDirectedEvaluator.full_answer`).  Both paths run per query
over the same extensional slice, exactly as the ``/query`` endpoint
drives them.  Every magic answer is checked against its full-chase
answer before timing is reported.

Reported per size: end-to-end latency p50/p99, single-thread
throughput, median *engine* seconds (the latency component the rewrite
can actually shrink — parse/encode overhead is shared), and the median
engine-time speedup.  The emitted JSON is schema-validated before
writing, and ``--check FILE`` re-validates an existing payload (the CI
``serve-smoke`` job uses it).

``--clients N`` additionally runs a multi-client load phase per size:
N threads, each with one keep-alive HTTP connection, hammer the real
:class:`KGModelServer` with snapshot point queries while a writer
thread interleaves ``POST /delta`` requests — so the reported p50/p99
are measured *under epoch churn*, exercising the zero-copy snapshot
freeze (readers must never block on, or observe, a half-frozen epoch).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py \
        --sizes 1000 5000 --queries 12 --clients 8 --out BENCH_SERVE.json
    PYTHONPATH=src python benchmarks/bench_serve.py --check BENCH_SERVE.json
"""

import argparse
import http.client
import json
import os
import random
import resource
import statistics
import sys
import threading
import time
import urllib.parse

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.cli import demo_serve_inputs
from repro.serve import ServeState, ServiceHandlers, build_server
from repro.vadalog import parse_program
from repro.vadalog.magic import GoalDirectedEvaluator, Query
from repro.vadalog.terms import Variable


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _mode_row(label, wall_seconds, engine_seconds):
    total = sum(wall_seconds)
    return {
        "mode": label,
        "queries": len(wall_seconds),
        "p50_ms": round(_percentile(wall_seconds, 0.50) * 1000.0, 3),
        "p99_ms": round(_percentile(wall_seconds, 0.99) * 1000.0, 3),
        "throughput_qps": round(len(wall_seconds) / max(total, 1e-9), 1),
        "median_engine_seconds": round(
            statistics.median(engine_seconds), 5
        ),
    }


def run_size(companies, seed, queries, full_samples):
    program_text, inputs = demo_serve_inputs(companies, seed)
    program = parse_program(program_text)
    evaluator = GoalDirectedEvaluator(program)
    names = [name for (name,) in inputs["company"]]
    rng = random.Random(seed)
    subjects = rng.sample(names, min(queries, len(names)))

    # Warm the rewrite/plan caches outside the timed region, the same
    # way a server answers its first request before steady state.
    warm = Query("controls", (subjects[0], Variable("B")))
    evaluator.answer(warm, inputs=inputs)

    magic_wall, magic_engine = [], []
    differential_ok = True
    expected = {}
    for subject in subjects:
        query = Query("controls", (subject, Variable("B")))
        start = time.perf_counter()
        answer = evaluator.answer(query, inputs=inputs)
        magic_wall.append(time.perf_counter() - start)
        magic_engine.append(answer.stats.elapsed_seconds)
        expected[subject] = answer.facts
        if answer.mode != "magic":
            differential_ok = False

    full_wall, full_engine = [], []
    for subject in subjects[:full_samples]:
        query = Query("controls", (subject, Variable("B")))
        start = time.perf_counter()
        answer = evaluator.full_answer(query, inputs=inputs)
        full_wall.append(time.perf_counter() - start)
        full_engine.append(answer.stats.elapsed_seconds)
        if answer.facts != expected[subject]:
            differential_ok = False

    magic = _mode_row("magic", magic_wall, magic_engine)
    full = _mode_row("full", full_wall, full_engine)
    return {
        "companies": companies,
        "facts": sum(len(rows) for rows in inputs.values()),
        "magic": magic,
        "full": full,
        "engine_speedup": round(
            full["median_engine_seconds"]
            / max(magic["median_engine_seconds"], 1e-9),
            2,
        ),
        "differential_ok": differential_ok,
    }


def run_load(companies, seed, clients, requests_per_client, deltas):
    """Concurrent keep-alive load against the real HTTP server.

    Every client thread owns one persistent connection and issues
    snapshot point queries; one writer connection interleaves ``deltas``
    POST /delta requests across the run.  Latency percentiles therefore
    include the scheduling noise of epoch publication — exactly what a
    monitoring SLO would see.
    """
    program_text, inputs = demo_serve_inputs(companies, seed)
    state = ServeState(program_text, inputs=inputs, check_wardedness=False)
    handlers = ServiceHandlers(state)
    names = [name for (name,) in inputs["company"]]

    lock = threading.Lock()
    latencies = []
    errors = [0]
    barrier = threading.Barrier(clients + 2)  # clients + writer + main

    def client_worker(worker, host, port):
        rng = random.Random(seed * 1000 + worker)
        subjects = [rng.choice(names) for _ in range(16)]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        local, wrong = [], 0
        barrier.wait()
        for i in range(requests_per_client):
            query = urllib.parse.quote(f'controls("{subjects[i % 16]}", B)?')
            start = time.perf_counter()
            conn.request("GET", f"/query?q={query}&engine=snapshot")
            response = conn.getresponse()
            response.read()
            local.append(time.perf_counter() - start)
            if response.status != 200:
                wrong += 1
        conn.close()
        with lock:
            latencies.extend(local)
            errors[0] += wrong

    def writer_worker(host, port):
        rng = random.Random(seed - 1)
        conn = http.client.HTTPConnection(host, port, timeout=30)
        barrier.wait()
        for i in range(deltas):
            body = json.dumps(
                {"added": {"own": [[f"LOAD{i}", rng.choice(names), 0.01]]}}
            ).encode()
            conn.request(
                "POST", "/delta", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            response.read()
            if response.status != 200:
                with lock:
                    errors[0] += 1
            time.sleep(0.002)  # spread epochs across the read window
        conn.close()

    with build_server(handlers) as server:
        host, port = server.address
        threads = [
            threading.Thread(target=client_worker, args=(n, host, port))
            for n in range(clients)
        ]
        threads.append(threading.Thread(target=writer_worker, args=(host, port)))
        for thread in threads:
            thread.start()
        barrier.wait()
        wall_start = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start

    total = len(latencies)
    return {
        "clients": clients,
        "requests": total,
        "deltas": deltas,
        "errors": errors[0],
        "epochs": state.snapshot.epoch,
        "p50_ms": round(_percentile(latencies, 0.50) * 1000.0, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000.0, 3),
        "throughput_rps": round(total / max(wall, 1e-9), 1),
    }


# ---------------------------------------------------------------------------
# Payload schema (dependency-free: no jsonschema in the image)
# ---------------------------------------------------------------------------

_MODE_FIELDS = {
    "mode": str,
    "queries": int,
    "p50_ms": (int, float),
    "p99_ms": (int, float),
    "throughput_qps": (int, float),
    "median_engine_seconds": (int, float),
}
_ROW_FIELDS = {
    "companies": int,
    "facts": int,
    "magic": dict,
    "full": dict,
    "engine_speedup": (int, float),
    "differential_ok": bool,
}
#: Optional per-row section emitted by ``--clients N``.
_LOAD_FIELDS = {
    "clients": int,
    "requests": int,
    "deltas": int,
    "errors": int,
    "epochs": int,
    "p50_ms": (int, float),
    "p99_ms": (int, float),
    "throughput_rps": (int, float),
}
_TOP_FIELDS = {
    "experiment": str,
    "program": str,
    "seed": int,
    "peak_rss_kb": int,
    "results": list,
}


def validate(payload: dict) -> list:
    """Structural check of a BENCH_SERVE payload; returns problems."""
    problems = []

    def check(obj, fields, where):
        for field, types in fields.items():
            if field not in obj:
                problems.append(f"{where}: missing field '{field}'")
            elif not isinstance(obj[field], types):
                problems.append(
                    f"{where}: field '{field}' has type "
                    f"{type(obj[field]).__name__}"
                )

    check(payload, _TOP_FIELDS, "payload")
    if payload.get("experiment") != "E-SERVE":
        problems.append("payload: experiment must be 'E-SERVE'")
    for i, row in enumerate(payload.get("results") or []):
        where = f"results[{i}]"
        if not isinstance(row, dict):
            problems.append(f"{where}: not an object")
            continue
        check(row, _ROW_FIELDS, where)
        for mode in ("magic", "full"):
            sub = row.get(mode)
            if isinstance(sub, dict):
                check(sub, _MODE_FIELDS, f"{where}.{mode}")
        if not row.get("differential_ok", False):
            problems.append(f"{where}: differential_ok is not true")
        load = row.get("load")
        if load is not None:
            if not isinstance(load, dict):
                problems.append(f"{where}.load: not an object")
            else:
                check(load, _LOAD_FIELDS, f"{where}.load")
                if load.get("errors", 0):
                    problems.append(
                        f"{where}.load: {load['errors']} request errors"
                    )
    if not payload.get("results"):
        problems.append("payload: results is empty")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[1000, 5000])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--queries", type=int, default=12,
                        help="point queries per size (magic path)")
    parser.add_argument("--full-samples", type=int, default=6,
                        help="how many of those also run the full chase")
    parser.add_argument("--clients", type=int, default=0,
                        help="keep-alive HTTP clients for the load phase "
                             "(0 skips it)")
    parser.add_argument("--load-requests", type=int, default=40,
                        help="snapshot queries per client in the load phase")
    parser.add_argument("--load-deltas", type=int, default=6,
                        help="interleaved POST /delta epochs during load")
    parser.add_argument("--out", default="BENCH_SERVE.json")
    parser.add_argument("--require-speedup", type=float, default=None,
                        help="fail unless every size clears this engine "
                             "speedup")
    parser.add_argument("--check", metavar="FILE", default=None,
                        help="validate an existing payload and exit")
    args = parser.parse_args()

    if args.check is not None:
        with open(args.check, "r", encoding="utf-8") as handle:
            problems = validate(json.load(handle))
        for problem in problems:
            print(f"schema: {problem}", file=sys.stderr)
        print(f"{args.check}: {'INVALID' if problems else 'schema OK'}")
        return 1 if problems else 0

    rows = []
    for companies in args.sizes:
        row = run_size(
            companies, args.seed, args.queries,
            max(1, min(args.full_samples, args.queries)),
        )
        rows.append(row)
        print(
            f"E-SERVE {companies} companies: magic p50 "
            f"{row['magic']['p50_ms']:.1f}ms ({row['magic']['throughput_qps']:.0f} q/s) "
            f"vs full p50 {row['full']['p50_ms']:.1f}ms, engine "
            f"{row['engine_speedup']:.1f}x, differential "
            f"{'OK' if row['differential_ok'] else 'MISMATCH'}"
        )
        if args.clients > 0:
            load = run_load(
                companies, args.seed, args.clients,
                args.load_requests, args.load_deltas,
            )
            row["load"] = load
            print(
                f"  load {load['clients']} clients x {args.load_requests}: "
                f"p50 {load['p50_ms']:.1f}ms p99 {load['p99_ms']:.1f}ms "
                f"({load['throughput_rps']:.0f} req/s, "
                f"{load['epochs']} epochs, {load['errors']} errors)"
            )

    payload = {
        "experiment": "E-SERVE",
        "program": "example-4.1-control",
        "seed": args.seed,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "results": rows,
    }
    problems = validate(payload)
    for problem in problems:
        print(f"schema: {problem}", file=sys.stderr)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if problems:
        return 1
    if args.require_speedup is not None and any(
        row["engine_speedup"] < args.require_speedup for row in rows
    ):
        print(f"engine speedup below required {args.require_speedup}x")
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
