"""E-FIG8 — regenerate Figure 8: the Company KG translated to a
relational schema (per-member generalizations, reified M:N edges),
including the deployable DDL."""

from conftest import banner

from repro.deploy import generate_ddl
from repro.finkg.company_schema import company_super_schema
from repro.ssst import SSST


def test_fig8_relational_translation(benchmark):
    def regenerate():
        result = SSST().translate(company_super_schema(), "relational")
        return result, generate_ddl(result.target_schema)

    result, ddl = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    schema = result.target_schema
    banner("Figure 8 — the Company KG translated to a relational schema")
    for name in sorted(schema.tables):
        table = schema.tables[name]
        columns = ", ".join(
            ("*" if c.is_pk else "") + c.name for c in table.columns
        )
        print(f"  {name}({columns})")
    print(f"  {len(schema.foreign_keys)} foreign keys; DDL: "
          f"{len(ddl.splitlines())} lines")

    # Per-member generalization strategy.
    assert schema.table("Business").primary_key() == ["isA_Business_fiscalCode"]
    assert any(
        fk.source_table == "Business" and fk.target_table == "LegalPerson"
        for fk in schema.foreign_keys
    )
    # M:N edges reified into bridge tables with two FKs.
    assert {"HOLDS", "OWNS", "CONTROLS", "HAS_ROLE", "PARTICIPATES"} <= set(
        schema.tables
    )
    holds_fks = [f for f in schema.foreign_keys if f.source_table == "HOLDS"]
    assert len(holds_fks) == 2
    # 1:N edges become FK columns.
    assert "BELONGS_TO_fiscalCode" in {
        c.name for c in schema.table("Share").columns
    }
    assert "CREATE TABLE Person" in ddl
    assert "FOREIGN KEY" in ddl
