"""E-CTRL — Examples 4.1/4.2: company control, MetaLog pipeline vs the
direct worklist baseline, across graph sizes."""

import pytest
from conftest import banner

from repro.finkg.control import (
    control_pairs,
    controls_pairs_from_graph,
    run_control_metalog,
    stakes_from_graph,
)


@pytest.mark.parametrize("companies", [1000, 5000])
def test_ex41_control_metalog(benchmark, shareholding_graphs, profile_tracer, companies):
    graph = shareholding_graphs[companies]
    engine = None
    if profile_tracer is not None:
        from repro.vadalog.engine import Engine

        engine = Engine(tracer=profile_tracer)

    def reason():
        return run_control_metalog(graph, node_label="Company", engine=engine)

    outcome = benchmark.pedantic(reason, rounds=2, iterations=1)
    meta = {
        p for p in controls_pairs_from_graph(outcome.graph)
        if p[0].startswith("C")
    }
    base = {
        p for p in control_pairs(stakes_from_graph(graph))
        if p[0].startswith("C") and p[1].startswith("C")
    }
    banner(f"Example 4.1 control via MetaLog — {companies} companies")
    stats = outcome.result.stats
    print(f"  control edges: {len(meta)}  (baseline: {len(base)})")
    print(f"  chase: {stats.iterations} iterations, "
          f"{stats.facts_derived} facts, {stats.elapsed_seconds:.2f}s")
    assert meta == base


@pytest.mark.parametrize("companies", [1000, 5000, 20000])
def test_ex41_control_baseline(benchmark, shareholding_graphs, companies):
    graph = shareholding_graphs[companies]
    stakes = stakes_from_graph(graph)

    pairs = benchmark(control_pairs, stakes)
    banner(f"Example 4.1 control baseline — {companies} companies")
    print(f"  stakes: {len(stakes)}, control pairs: {len(pairs)}")
    assert pairs  # some control always emerges at these densities
