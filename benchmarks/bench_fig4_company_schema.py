"""E-FIG4 — regenerate Figure 4: the Company KG GSL diagram."""

from conftest import banner

from repro.core import render_super_schema, schema_to_dot
from repro.finkg.company_schema import company_super_schema


def test_fig4_company_schema(benchmark):
    def regenerate():
        schema = company_super_schema()
        return schema, render_super_schema(schema), schema_to_dot(schema)

    schema, graphemes, dot = benchmark(regenerate)
    banner("Figure 4 — the Company KG GSL diagram")
    print(schema.summary())
    for grapheme in graphemes:
        print(" ", grapheme)
    print(f"\n(DOT rendering: {len(dot.splitlines())} lines)")

    node_names = {n.type_name for n in schema.nodes}
    assert node_names == {
        "Person", "PhysicalPerson", "LegalPerson", "Business", "NonBusiness",
        "PublicListedCompany", "Share", "StockShare", "Place", "Family",
        "BusinessEvent",
    }
    edge_names = {e.type_name for e in schema.edges}
    assert {
        "HOLDS", "BELONGS_TO", "OWNS", "CONTROLS", "HAS_ROLE", "RESIDES",
        "REPRESENTS", "PARTICIPATES", "IS_RELATED_TO", "BELONGS_TO_FAMILY",
        "FAMILY_OWNS",
    } <= edge_names
    intensional = {e.type_name for e in schema.edges if e.is_intensional}
    assert intensional == {
        "OWNS", "CONTROLS", "IS_RELATED_TO", "BELONGS_TO_FAMILY", "FAMILY_OWNS",
    }
    assert len(schema.generalizations) == 4
    assert schema.validate() == []
