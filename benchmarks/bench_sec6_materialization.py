"""E-PERF — Section 6 performance paragraph: the Algorithm 2 phase
breakdown (load / reason / flush) on synthetic Company KGs.

The paper reports ~160 min for the control intensional component and
~15 min for loading + flushing (load+flush ~ 9% of total) on the
11.97M-node KG.  At laptop scale we reproduce the *shape*: the phase
breakdown is printed and EXPERIMENTS.md records paper-vs-measured.
"""

import pytest
from conftest import banner

from repro.finkg import programs
from repro.finkg.company_schema import company_super_schema
from repro.finkg.generator import ShareholdingConfig, generate_company_kg
from repro.metalog import parse_metalog
from repro.ssst import IntensionalMaterializer


@pytest.mark.parametrize("companies", [200, 1000, 3000])
def test_sec6_control_materialization(benchmark, companies):
    schema = company_super_schema()
    data = generate_company_kg(ShareholdingConfig(companies=companies, seed=6))
    owns_program = parse_metalog(programs.OWNS_PROGRAM)
    control_program = parse_metalog(programs.PERSON_CONTROL_PROGRAM)
    materializer = IntensionalMaterializer()

    def run_pipeline():
        first = materializer.materialize(schema, data, owns_program, 1)
        second = materializer.materialize(
            schema, first.instance.data, control_program, 2
        )
        return first, second

    first, second = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)

    load = first.load_seconds + second.load_seconds
    reason = first.reason_seconds + second.reason_seconds
    flush = first.flush_seconds + second.flush_seconds
    total = load + reason + flush
    banner(f"Section 6 — Algorithm 2 phase breakdown, {companies} companies "
           f"({data.node_count} nodes, {data.edge_count} edges)")
    print(f"  load   {load:8.2f}s  ({100 * load / total:5.1f}%)   "
          f"[paper: ~15 min load+flush]")
    print(f"  reason {reason:8.2f}s  ({100 * reason / total:5.1f}%)   "
          f"[paper: ~160 min]")
    print(f"  flush  {flush:8.2f}s  ({100 * flush / total:5.1f}%)")
    print(f"  derived: {second.derived_counts}")

    controls = {
        (e.source, e.target)
        for e in second.instance.data.edges("CONTROLS")
        if e.source != e.target
    }
    assert controls  # control structure emerges
    assert second.derived_counts["CONTROLS"] > 0


def test_sec6_reasoning_dominates_on_deep_chains(benchmark):
    """The paper's regime (reasoning ~91% of the total) appears when the
    control closure is deep relative to the instance size.

    The flat synthetic registry has shallow control cascades, so at
    laptop scale loading dominates; a majority-ownership chain of length
    n yields a quadratic control closure over a linear-size instance —
    and reasoning takes over, matching the Section 6 proportions.
    """
    from repro.graph.property_graph import PropertyGraph

    n = 80
    schema = company_super_schema()
    data = PropertyGraph("chain")
    for i in range(n):
        data.add_node(
            f"C{i}", "Business", fiscalCode=f"FC{i}", businessName=f"C{i}",
            legalNature="spa", shareholdingCapital=1.0,
        )
    for i in range(n - 1):
        data.add_edge(f"C{i}", f"C{i + 1}", "OWNS", percentage=0.6)
    control_program = parse_metalog(programs.CONTROL_PROGRAM)
    materializer = IntensionalMaterializer()

    def run_pipeline():
        return materializer.materialize(schema, data, control_program, 1)

    report = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    total = report.total_seconds
    reason_share = report.reason_seconds / total
    banner(f"Section 6 — deep-chain regime (n={n}: quadratic closure)")
    print(f"  load   {report.load_seconds:8.2f}s "
          f"({100 * report.load_seconds / total:5.1f}%)")
    print(f"  reason {report.reason_seconds:8.2f}s ({100 * reason_share:5.1f}%)"
          f"   [paper: ~91%]")
    print(f"  flush  {report.flush_seconds:8.2f}s "
          f"({100 * report.flush_seconds / total:5.1f}%)")
    print(f"  derived CONTROLS: {report.derived_counts['CONTROLS']}")
    # n*(n+1)/2 control pairs including the self-loops.
    assert report.derived_counts["CONTROLS"] == n * (n + 1) // 2
    assert reason_share > 0.5  # reasoning dominates, as in the paper
