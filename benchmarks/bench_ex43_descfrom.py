"""E-EX43 — Examples 4.3/4.4: the DESCFROM path-pattern program, its MTV
compilation (alpha/beta rule generation), and its execution over the
super-model dictionary."""

from conftest import banner

from repro.core import GraphDictionary, SuperSchema
from repro.finkg.company_schema import company_super_schema
from repro.metalog import compile_metalog, parse_metalog, run_on_graph

PROGRAM = (
    "(x: SM_Node) ([:SM_CHILD]- . [:SM_PARENT])* (y: SM_Node)"
    " -> exists w : (x)[w: DESCFROM](y)."
)


def deep_hierarchy(depth: int, fanout: int) -> GraphDictionary:
    """A synthetic generalization tree stored in a dictionary."""
    schema = SuperSchema("Deep", schema_oid=77)
    root = schema.node("T0")
    root.attribute("k", is_id=True)
    level = [root]
    counter = [0]
    for d in range(1, depth + 1):
        next_level = []
        for parent in level:
            children = []
            for _ in range(fanout):
                counter[0] += 1
                children.append(schema.node(f"T{counter[0]}"))
            schema.generalization(parent, children)
            next_level.extend(children)
        level = next_level
    dictionary = GraphDictionary()
    dictionary.store(schema)
    return dictionary


def test_ex43_compilation(benchmark):
    def compile_it():
        from repro.core.dictionary import dictionary_catalog

        return compile_metalog(parse_metalog(PROGRAM), dictionary_catalog())

    compiled = benchmark(compile_it)
    banner("Example 4.4 — the generated Vadalog program")
    print(compiled.program)
    assert len(compiled.program.rules) == 3  # main + beta base + beta step
    assert len(compiled.auxiliary_predicates) == 1


def test_ex43_descfrom_company_dictionary(benchmark, company_schema):
    dictionary = GraphDictionary()
    dictionary.store(company_schema)
    program = parse_metalog(PROGRAM)

    def reason():
        return run_on_graph(program, dictionary.graph, catalog=dictionary.catalog())

    outcome = benchmark.pedantic(reason, rounds=3, iterations=1)
    pairs = {(e.source, e.target) for e in outcome.graph.edges("DESCFROM")}
    banner("Example 4.3 — DESCFROM over the Company KG dictionary")
    print(f"  descendant-ancestor pairs: {len(pairs)}")
    # 6 direct child-parent pairs + 3 transitive + 1 (PLC -> Person... )
    assert len(pairs) == 10


def test_ex43_descfrom_deep_hierarchy(benchmark):
    dictionary = deep_hierarchy(depth=5, fanout=2)
    program = parse_metalog(PROGRAM)

    def reason():
        return run_on_graph(program, dictionary.graph, catalog=dictionary.catalog())

    outcome = benchmark.pedantic(reason, rounds=2, iterations=1)
    pairs = {(e.source, e.target) for e in outcome.graph.edges("DESCFROM")}
    banner("Example 4.3 — DESCFROM over a depth-5 binary hierarchy")
    print(f"  nodes: 63, descendant-ancestor pairs: {len(pairs)}")
    # Every node has depth(node) strict ancestors: sum over a full binary
    # tree of depth 5 = sum_{d=1..5} 2^d * d = 258.
    assert len(pairs) == 258
