"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a figure, the
Section 2.1 statistics table, or the Section 6 performance breakdown),
prints the regenerated content (run with ``-s`` to see it), asserts its
shape, and times the regeneration with pytest-benchmark.

Pass ``--profile-dir DIR`` to capture a JSONL execution trace per
benchmark that opts in via the ``profile_tracer`` fixture (tracing adds
overhead, so the timed numbers then include it — use for attribution,
not for headline timings).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.finkg.company_schema import company_super_schema
from repro.finkg.generator import ShareholdingConfig, generate_shareholding_graph


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def pytest_addoption(parser):
    parser.addoption(
        "--profile-dir",
        default=None,
        help="write per-benchmark JSONL traces into this directory",
    )


@pytest.fixture()
def profile_tracer(request):
    """A RecordingTracer when ``--profile-dir`` is set, else ``None``.

    Benchmarks pass it to ``Engine(tracer=...)``; on teardown the trace
    lands in ``<profile-dir>/<test-name>.jsonl``.
    """
    profile_dir = request.config.getoption("--profile-dir")
    if not profile_dir:
        yield None
        return
    from repro.obs import RecordingTracer, write_trace

    tracer = RecordingTracer()
    yield tracer
    if tracer.spans or tracer.events:
        out = Path(profile_dir)
        out.mkdir(parents=True, exist_ok=True)
        name = re.sub(r"[^\w.=-]+", "_", request.node.name)
        write_trace(tracer, str(out / f"{name}.jsonl"))


@pytest.fixture(scope="session")
def company_schema():
    return company_super_schema()


@pytest.fixture(scope="session")
def shareholding_graphs():
    """Synthetic shareholding graphs at three scales (shared)."""
    return {
        n: generate_shareholding_graph(ShareholdingConfig(companies=n, seed=42))
        for n in (1000, 5000, 20000)
    }
