"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a figure, the
Section 2.1 statistics table, or the Section 6 performance breakdown),
prints the regenerated content (run with ``-s`` to see it), asserts its
shape, and times the regeneration with pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.finkg.company_schema import company_super_schema
from repro.finkg.generator import ShareholdingConfig, generate_shareholding_graph


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


@pytest.fixture(scope="session")
def company_schema():
    return company_super_schema()


@pytest.fixture(scope="session")
def shareholding_graphs():
    """Synthetic shareholding graphs at three scales (shared)."""
    return {
        n: generate_shareholding_graph(ShareholdingConfig(companies=n, seed=42))
        for n in (1000, 5000, 20000)
    }
