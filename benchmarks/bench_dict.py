"""E-DICT — bulk vs per-object graph/dictionary boundary.

The columnar engine made the chase fast enough that the per-object
graph boundary became the Amdahl wall of the control pipeline: loading
a 50k-company registry spent most of its time in per-node dictionary
lookups (``graph_to_database``), per-fact ``has_node`` probes
(``materialize_into_graph`` / ``_flush_instance_facts``), and the
one-object-at-a-time ``to_dictionary`` encoders.  This bench times each
boundary layer with the column-wise fast path (``bulk=True``) against
the per-object oracle (``bulk=False``) and verifies the two are
bit-identical: same relations in the same order on extraction, same
graphs after write-back, same dictionary encodings.

The emitted JSON is validated against an inline schema before it is
written, and ``--check FILE`` re-validates an existing payload (used by
the CI ``dict-smoke`` job).

Usage::

    PYTHONPATH=src python benchmarks/bench_dict.py
    PYTHONPATH=src python benchmarks/bench_dict.py \
        --sizes 5000 --out BENCH_DICT.json --require-extract-speedup 1.5
    PYTHONPATH=src python benchmarks/bench_dict.py --check BENCH_DICT.json
"""

import argparse
import json
import os
import resource
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.core import GraphDictionary
from repro.core.instances import SuperInstance
from repro.finkg import programs
from repro.finkg.company_schema import company_super_schema
from repro.graph.property_graph import PropertyGraph
from repro.metalog import (
    GraphCatalog,
    compile_metalog,
    graph_to_database,
    parse_metalog,
)
from repro.metalog.mtv import materialize_into_graph
from repro.vadalog import Engine

from bench_incremental import business_registry


def _snapshot(graph):
    nodes = [
        (node.id, node.label, sorted(node.properties.items(), key=repr))
        for node in graph.nodes()
    ]
    edges = [
        (edge.id, edge.source, edge.target, edge.label,
         sorted(edge.properties.items(), key=repr))
        for edge in graph.edges()
    ]
    return nodes, edges


def _sorted_snapshot(graph):
    """Insertion-order-independent form: the dictionary encoders emit
    family-by-family under ``bulk=True`` so only content is contractual."""
    nodes, edges = _snapshot(graph)
    return sorted(nodes, key=repr), sorted(edges, key=repr)


def _identical_databases(fast, slow) -> bool:
    if fast.predicates() != slow.predicates():
        return False
    return all(
        list(fast.relation(predicate)) == list(slow.relation(predicate))
        for predicate in fast.predicates()
    )


def run_size(companies: int, seed: int, verify: bool, repeat: int = 3) -> dict:
    registry = business_registry(companies, seed=seed)
    schema = company_super_schema()
    sigma = parse_metalog(programs.CONTROL_PROGRAM)
    catalog = GraphCatalog.from_graph(registry)
    compiled = compile_metalog(sigma, catalog)

    # Each phase is repeated and the minimum kept: the first run of
    # either path pays one-off costs (hash caches, result fact-set
    # construction) that would be misattributed to whichever ran first.
    timings = {"bulk": {}, "perobj": {}}
    databases = {}
    for key, bulk in (("bulk", True), ("perobj", False)):
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            databases[key] = graph_to_database(
                registry, compiled.catalog,
                node_labels=compiled.input_node_labels,
                edge_labels=compiled.input_edge_labels,
                columnar=True, bulk=bulk,
            )
            best = min(best, time.perf_counter() - start)
        timings[key]["extract_seconds"] = best

    result = Engine(columnar=True).run(
        compiled.program, database=databases["bulk"]
    )
    graphs = {}
    for key, bulk in (("bulk", True), ("perobj", False)):
        best = float("inf")
        for _ in range(repeat):
            target = registry.copy()
            start = time.perf_counter()
            materialize_into_graph(result, compiled, target, bulk=bulk)
            best = min(best, time.perf_counter() - start)
            graphs[key] = target
        timings[key]["materialize_seconds"] = best

    encodings = {}
    instance = SuperInstance.from_plain_graph(schema, registry, 9)
    for key, bulk in (("bulk", True), ("perobj", False)):
        best = float("inf")
        for _ in range(repeat):
            dictionary = GraphDictionary()
            start = time.perf_counter()
            dictionary.store(schema, bulk=bulk)
            instance.to_dictionary(dictionary.graph, bulk=bulk)
            best = min(best, time.perf_counter() - start)
            encodings[key] = dictionary.graph
        timings[key]["encode_seconds"] = best

    ok = True
    if verify:
        ok = (
            _identical_databases(databases["bulk"], databases["perobj"])
            and _snapshot(graphs["bulk"]) == _snapshot(graphs["perobj"])
            and _sorted_snapshot(encodings["bulk"])
            == _sorted_snapshot(encodings["perobj"])
        )

    for rows in timings.values():
        for field in list(rows):
            rows[field] = round(rows[field], 4)

    def speedup(field):
        return round(
            timings["perobj"][field] / max(timings["bulk"][field], 1e-9), 2
        )

    return {
        "companies": companies,
        "bulk": timings["bulk"],
        "perobj": timings["perobj"],
        "extract_speedup": speedup("extract_seconds"),
        "materialize_speedup": speedup("materialize_seconds"),
        "encode_speedup": speedup("encode_seconds"),
        "differential_ok": ok,
    }


# ---------------------------------------------------------------------------
# Payload schema (kept dependency-free: no jsonschema in the image)
# ---------------------------------------------------------------------------

_PATH_FIELDS = {
    "extract_seconds": (int, float),
    "materialize_seconds": (int, float),
    "encode_seconds": (int, float),
}
_ROW_FIELDS = {
    "companies": int,
    "bulk": dict,
    "perobj": dict,
    "extract_speedup": (int, float),
    "materialize_speedup": (int, float),
    "encode_speedup": (int, float),
    "differential_ok": bool,
}
_TOP_FIELDS = {
    "experiment": str,
    "program": str,
    "seed": int,
    "peak_rss_kb": int,
    "results": list,
}


def validate(payload: dict) -> list:
    """Structural check of a BENCH_DICT payload; returns problem strings."""
    problems = []

    def check(obj, fields, where):
        for field, types in fields.items():
            if field not in obj:
                problems.append(f"{where}: missing field '{field}'")
            elif not isinstance(obj[field], types):
                problems.append(
                    f"{where}: field '{field}' has type "
                    f"{type(obj[field]).__name__}"
                )

    check(payload, _TOP_FIELDS, "payload")
    if payload.get("experiment") != "E-DICT":
        problems.append("payload: experiment must be 'E-DICT'")
    for i, row in enumerate(payload.get("results") or []):
        where = f"results[{i}]"
        if not isinstance(row, dict):
            problems.append(f"{where}: not an object")
            continue
        check(row, _ROW_FIELDS, where)
        for path in ("bulk", "perobj"):
            sub = row.get(path)
            if isinstance(sub, dict):
                check(sub, _PATH_FIELDS, f"{where}.{path}")
        if not row.get("differential_ok", False):
            problems.append(f"{where}: differential_ok is not true")
    if not payload.get("results"):
        problems.append("payload: results is empty")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[5000])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", default="BENCH_DICT.json")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions per phase (minimum kept)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the bulk-vs-per-object differential gate")
    parser.add_argument("--require-extract-speedup", type=float, default=None,
                        help="fail unless every size clears this extraction "
                        "speedup")
    parser.add_argument("--check", metavar="FILE", default=None,
                        help="validate an existing payload and exit")
    args = parser.parse_args()

    if args.check is not None:
        with open(args.check, "r", encoding="utf-8") as handle:
            problems = validate(json.load(handle))
        for problem in problems:
            print(f"schema: {problem}", file=sys.stderr)
        print(f"{args.check}: {'INVALID' if problems else 'schema OK'}")
        return 1 if problems else 0

    rows = []
    for companies in args.sizes:
        row = run_size(
            companies, args.seed, not args.no_verify, repeat=args.repeat
        )
        rows.append(row)
        print(
            f"E-DICT {companies} companies: extract "
            f"{row['perobj']['extract_seconds']:.2f}s -> "
            f"{row['bulk']['extract_seconds']:.2f}s "
            f"({row['extract_speedup']:.1f}x), materialize "
            f"{row['materialize_speedup']:.1f}x, encode "
            f"{row['encode_speedup']:.1f}x, differential "
            f"{'OK' if row['differential_ok'] else 'MISMATCH'}"
        )

    payload = {
        "experiment": "E-DICT",
        "program": "CONTROL_PROGRAM",
        "seed": args.seed,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "results": rows,
    }
    problems = validate(payload)
    for problem in problems:
        print(f"schema: {problem}", file=sys.stderr)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if problems:
        return 1
    if args.require_extract_speedup is not None and any(
        row["extract_speedup"] < args.require_extract_speedup for row in rows
    ):
        print(f"extract speedup below required {args.require_extract_speedup}x")
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
