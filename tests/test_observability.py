"""Observability layer: tracer spans, metrics, JSONL export/validation,
the resource governor, and their wiring through the engine and CLI."""

import io
import json

import pytest

from repro.cli import main
from repro.errors import EvaluationError, ResourceLimitError
from repro.obs import (
    BudgetExceeded,
    Histogram,
    MetricsRegistry,
    NullTracer,
    RecordingTracer,
    ResourceGovernor,
    TRACE_SCHEMA_VERSION,
    Tracer,
    profile_summary,
    trace_records,
    validate_trace_file,
    validate_trace_record,
    write_trace,
)
from repro.obs.governor import STATUS_BUDGET_EXCEEDED, STATUS_FIXPOINT
from repro.vadalog import Engine, parse_program


class FakeClock:
    """A manually advanced clock for deterministic timing tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_nesting_assigns_parents(self):
        tracer = RecordingTracer()
        with tracer.span("outer"):
            with tracer.span("inner-1"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("inner-2"):
                pass
        (outer,) = tracer.find_spans("outer")
        (inner1,) = tracer.find_spans("inner-1")
        (inner2,) = tracer.find_spans("inner-2")
        (leaf,) = tracer.find_spans("leaf")
        assert outer.parent_id is None
        assert inner1.parent_id == outer.span_id
        assert inner2.parent_id == outer.span_id
        assert leaf.parent_id == inner1.span_id
        assert not tracer.open_spans()

    def test_spans_record_in_finish_order(self):
        tracer = RecordingTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.spans] == ["b", "a"]

    def test_duration_zero_while_open_then_positive(self):
        clock = FakeClock()
        tracer = RecordingTracer(clock=clock)
        span = tracer.span("work")
        assert span.duration == 0.0
        clock.advance(2.5)
        with span:
            pass
        assert span.duration == pytest.approx(2.5)

    def test_attrs_at_open_and_via_set(self):
        tracer = RecordingTracer()
        with tracer.span("s", color="red") as span:
            span.set(count=3).set(count=4, extra=True)
        assert span.attrs == {"color": "red", "count": 4, "extra": True}

    def test_exception_stamps_error_attr_and_closes(self):
        tracer = RecordingTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (span,) = tracer.find_spans("failing")
        assert span.attrs["error"] == "RuntimeError"
        assert span.end is not None
        assert not tracer.open_spans()

    def test_out_of_order_exit_is_tolerated(self):
        tracer = RecordingTracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__exit__(None, None, None)  # parent closed before child
        inner.__exit__(None, None, None)
        assert {s.name for s in tracer.spans} == {"outer", "inner"}
        assert not tracer.open_spans()

    def test_events_attach_to_active_span(self):
        tracer = RecordingTracer()
        tracer.event("standalone", detail=1)
        with tracer.span("s") as span:
            tracer.event("nested")
        assert "span_id" not in tracer.events[0]
        assert tracer.events[0]["attrs"] == {"detail": 1}
        assert tracer.events[1]["span_id"] == span.span_id

    def test_null_tracer_times_but_records_nothing(self):
        clock = FakeClock()
        tracer = NullTracer(clock=clock)
        with tracer.span("phase") as span:
            clock.advance(1.5)
        assert span.duration == pytest.approx(1.5)
        tracer.event("dropped")
        tracer.count("dropped", 5)
        tracer.observe("dropped", 0.1)  # all no-ops, nothing to assert on

    def test_both_tracers_satisfy_the_protocol(self):
        assert isinstance(NullTracer(), Tracer)
        assert isinstance(RecordingTracer(), Tracer)

    def test_clear_resets_everything(self):
        tracer = RecordingTracer()
        with tracer.span("s"):
            tracer.count("c", 2)
            tracer.event("e")
        tracer.clear()
        assert not tracer.spans and not tracer.events
        assert tracer.metrics.counters() == {}


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.counter("n").inc(41)
        assert registry.counters() == {"n": 42}
        with pytest.raises(ValueError):
            registry.counter("n").inc(-1)

    def test_histogram_bucket_accuracy(self):
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 500.0, 5000.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1, 2]  # <=1, <=10, <=100, overflow
        assert histogram.count == 6
        assert histogram.total == pytest.approx(5556.5)
        assert histogram.min == 0.5 and histogram.max == 5000.0
        assert histogram.mean == pytest.approx(5556.5 / 6)

    def test_histogram_quantile_estimates(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0   # 2 of 4 in the first bucket
        assert histogram.quantile(1.0) == 4.0
        with pytest.raises(ValueError):
            histogram.quantile(0.0)

    def test_histogram_requires_sorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_registry_snapshot_is_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must be JSON-serializable
        assert snapshot["counters"] == {"c": 3}
        assert snapshot["histograms"]["h"]["counts"] == [1, 0]


# ---------------------------------------------------------------------------
# Export and validation
# ---------------------------------------------------------------------------


def _traced_run():
    tracer = RecordingTracer()
    with tracer.span("root", kind="test"):
        with tracer.span("child"):
            tracer.count("facts", 7)
            tracer.observe("latency", 0.02)
        tracer.event("checkpoint", note="mid")
    return tracer


class TestExport:
    def test_records_meta_first_then_spans_in_start_order(self):
        records = list(trace_records(_traced_run()))
        assert records[0] == {
            "type": "meta",
            "version": TRACE_SCHEMA_VERSION,
            "producer": "repro.obs",
        }
        spans = [r for r in records if r["type"] == "span"]
        assert [s["name"] for s in spans] == ["root", "child"]
        assert spans[1]["parent"] == spans[0]["id"]

    def test_every_record_validates(self):
        for record in trace_records(_traced_run()):
            assert validate_trace_record(record) == []

    def test_write_trace_to_stream_and_file(self, tmp_path):
        tracer = _traced_run()
        stream = io.StringIO()
        written = write_trace(tracer, stream)
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert written == len(lines)
        path = tmp_path / "trace.jsonl"
        assert write_trace(tracer, str(path)) == written
        assert validate_trace_file(str(path)) == []

    def test_validate_rejects_bad_records(self):
        assert validate_trace_record(["not", "a", "dict"])
        assert validate_trace_record({"type": "mystery"})
        assert validate_trace_record({"type": "span", "id": 1})  # missing fields
        assert validate_trace_record(
            {"type": "counter", "name": "c", "value": -1}
        )
        assert validate_trace_record(
            {"type": "meta", "version": 999, "producer": "x"}
        )
        bad_histogram = {
            "type": "histogram", "name": "h", "buckets": [1.0],
            "counts": [1], "count": 1, "sum": 0.5,
        }
        assert any(
            "len(buckets)+1" in p for p in validate_trace_record(bad_histogram)
        )

    def test_validate_file_catches_dangling_parent_and_bad_lines(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "version": 1, "producer": "x"}) + "\n"
            + json.dumps({
                "type": "span", "id": 2, "parent": 99, "name": "s",
                "start": 0.0, "end": 1.0, "duration": 1.0,
            }) + "\n"
            + "{not json\n"
        )
        problems = validate_trace_file(str(path))
        assert any("parent 99" in p for p in problems)
        assert any("invalid JSON" in p for p in problems)

    def test_validate_file_requires_meta_first_and_some_spans(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text(json.dumps({"type": "counter", "name": "c", "value": 1}) + "\n")
        problems = validate_trace_file(str(path))
        assert any("must be meta" in p for p in problems)
        path2 = tmp_path / "nospans.jsonl"
        path2.write_text(json.dumps({"type": "meta", "version": 1, "producer": "x"}) + "\n")
        assert validate_trace_file(str(path2)) == ["trace contains no spans"]

    def test_profile_summary_mentions_spans_and_counters(self):
        summary = profile_summary(_traced_run())
        assert "root" in summary and "child" in summary
        assert "facts" in summary


# ---------------------------------------------------------------------------
# Governor
# ---------------------------------------------------------------------------


class TestGovernor:
    def test_time_budget_with_fake_clock(self):
        clock = FakeClock()
        governor = ResourceGovernor(budget_seconds=1.0, clock=clock)
        governor.begin()
        assert governor.check_time() is None
        clock.advance(0.9)
        assert governor.check_time() is None
        clock.advance(0.2)
        violation = governor.check_time()
        assert violation == BudgetExceeded("time", 1.0, pytest.approx(1.1))
        assert governor.elapsed() == pytest.approx(1.1)

    def test_fact_null_and_iteration_budgets(self):
        governor = ResourceGovernor(
            max_facts=100, max_nulls=5, max_stratum_iterations=3
        )
        assert governor.check_facts(100) is None
        assert governor.check_facts(101).resource == "facts"
        assert governor.check_nulls(6).used == 6
        violation = governor.check_iterations(4, scope="stratum 2")
        assert violation.scope == "stratum 2"
        assert "stratum 2" in str(violation)

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            ResourceGovernor(budget_seconds=0)
        with pytest.raises(ValueError):
            ResourceGovernor(max_facts=-1)

    def test_unstarted_governor_never_trips_on_time(self):
        governor = ResourceGovernor(budget_seconds=0.001)
        assert governor.check_time() is None
        assert governor.elapsed() == 0.0


# ---------------------------------------------------------------------------
# Engine wiring
# ---------------------------------------------------------------------------

_TC_PROGRAM = "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
_CHAIN = {"e": [(i, i + 1) for i in range(30)]}


class TestEngineWiring:
    def test_counters_match_reality(self):
        tracer = RecordingTracer()
        result = Engine(tracer=tracer).run(parse_program(_TC_PROGRAM), inputs=_CHAIN)
        counters = tracer.metrics.counters()
        assert counters["engine.facts_derived"] == len(result.facts("tc"))
        assert counters["engine.rule_firings"] >= counters["engine.facts_derived"]
        assert counters.get("engine.nulls_created", 0) == 0

    def test_span_tree_shape(self):
        tracer = RecordingTracer()
        Engine(tracer=tracer).run(parse_program(_TC_PROGRAM), inputs=_CHAIN)
        (run_span,) = tracer.find_spans("engine.run")
        strata = tracer.find_spans("engine.stratum")
        rules = tracer.find_spans("engine.rule")
        assert run_span.attrs["status"] == STATUS_FIXPOINT
        assert all(s.parent_id == run_span.span_id for s in strata)
        stratum_ids = {s.span_id for s in strata}
        assert all(r.parent_id in stratum_ids for r in rules)
        assert not tracer.open_spans()

    def test_untraced_run_unchanged(self):
        with_tracer = Engine(tracer=RecordingTracer()).run(
            parse_program(_TC_PROGRAM), inputs=_CHAIN
        )
        without = Engine().run(parse_program(_TC_PROGRAM), inputs=_CHAIN)
        assert set(with_tracer.facts("tc")) == set(without.facts("tc"))
        assert without.status == STATUS_FIXPOINT
        assert not without.truncated

    def test_graceful_fact_budget_yields_partial_results(self):
        governor = ResourceGovernor(max_facts=50)
        result = Engine(governor=governor).run(
            parse_program(_TC_PROGRAM), inputs=_CHAIN
        )
        assert result.status == STATUS_BUDGET_EXCEEDED
        assert result.truncated
        assert result.violation.resource == "facts"
        full = Engine().run(parse_program(_TC_PROGRAM), inputs=_CHAIN)
        partial = set(result.facts("tc"))
        assert partial  # kept what it had derived
        assert partial < set(full.facts("tc"))

    def test_graceful_time_budget_with_fake_clock(self):
        clock = FakeClock()
        original_check = ResourceGovernor.check_time
        governor = ResourceGovernor(budget_seconds=1.0, clock=clock)
        calls = []

        def ticking_check(self):
            calls.append(1)
            clock.advance(0.4)  # every check costs 0.4 fake seconds
            return original_check(self)

        governor.check_time = ticking_check.__get__(governor)
        result = Engine(governor=governor).run(
            parse_program(_TC_PROGRAM), inputs=_CHAIN
        )
        assert result.truncated
        assert result.violation.resource == "time"
        assert calls  # the engine consulted the clock

    def test_strict_budget_raises_with_partial_stats(self):
        governor = ResourceGovernor(max_facts=50, graceful=False)
        with pytest.raises(ResourceLimitError) as excinfo:
            Engine(governor=governor).run(parse_program(_TC_PROGRAM), inputs=_CHAIN)
        error = excinfo.value
        assert error.resource == "facts"
        assert error.limit == 50
        assert error.stats is not None and error.stats.facts_derived > 50

    def test_budget_event_lands_in_trace(self):
        tracer = RecordingTracer()
        Engine(tracer=tracer, governor=ResourceGovernor(max_facts=50)).run(
            parse_program(_TC_PROGRAM), inputs=_CHAIN
        )
        assert any(
            e["name"] == "engine.budget_exceeded" for e in tracer.events
        )
        (run_span,) = tracer.find_spans("engine.run")
        assert run_span.attrs["status"] == STATUS_BUDGET_EXCEEDED

    def test_fixpoint_exactly_at_iteration_cap_is_not_truncated(self):
        # The chain closes in well under 50 iterations; a cap equal to the
        # actual iteration count must not tag the run as truncated.
        probe = Engine().run(parse_program(_TC_PROGRAM), inputs=_CHAIN)
        governor = ResourceGovernor(
            max_stratum_iterations=probe.stats.iterations
        )
        result = Engine(governor=governor).run(
            parse_program(_TC_PROGRAM), inputs=_CHAIN
        )
        assert not result.truncated


# ---------------------------------------------------------------------------
# Typed resource errors (regression: used to be bare EvaluationError)
# ---------------------------------------------------------------------------


class TestResourceLimitErrors:
    def test_max_iterations_carries_partial_stats(self):
        with pytest.raises(ResourceLimitError) as excinfo:
            Engine(max_iterations=3).run(parse_program(_TC_PROGRAM), inputs=_CHAIN)
        error = excinfo.value
        assert error.resource == "iterations"
        assert error.limit == 3
        assert error.stats.facts_derived > 0

    def test_max_nulls_carries_partial_stats(self):
        with pytest.raises(ResourceLimitError) as excinfo:
            Engine(max_nulls=2).run(
                parse_program("p(X) -> q(X, Y)."),
                inputs={"p": [(i,) for i in range(10)]},
            )
        error = excinfo.value
        assert error.resource == "nulls"
        assert error.limit == 2

    def test_still_catchable_as_evaluation_error(self):
        with pytest.raises(EvaluationError):
            Engine(max_iterations=3).run(parse_program(_TC_PROGRAM), inputs=_CHAIN)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

_MINI_GSL = """
schema Mini oid 3 {
  node Company { id vat: string name: string }
  intensional edge CONTROLS Company -> Company
  edge OWNS Company -> Company { percentage: float }
}
"""

_CONTROL_METALOG = """
(x: Company) -> exists c : (x)[c: CONTROLS](x).
(x: Company)[:CONTROLS](z: Company)[:OWNS; percentage: w](y: Company),
    v = msum(w, <z>), v > 0.5 -> exists c : (x)[c: CONTROLS](y).
"""


@pytest.fixture()
def reason_workspace(tmp_path):
    from repro.graph.io import save_graph
    from repro.graph.property_graph import PropertyGraph

    (tmp_path / "mini.gsl").write_text(_MINI_GSL)
    (tmp_path / "rules.metalog").write_text(_CONTROL_METALOG)
    graph = PropertyGraph("holdings")
    for vat in ("A", "B", "C"):
        graph.add_node(vat, "Company", vat=vat, name=vat)
    graph.add_edge("A", "B", "OWNS", percentage=0.6)
    graph.add_edge("B", "C", "OWNS", percentage=0.6)
    save_graph(graph, str(tmp_path / "data.json"))
    return tmp_path


class TestCLI:
    def test_trace_and_profile_flags(self, reason_workspace, capsys):
        trace_path = reason_workspace / "trace.jsonl"
        code = main([
            "reason",
            str(reason_workspace / "mini.gsl"),
            str(reason_workspace / "data.json"),
            str(reason_workspace / "rules.metalog"),
            "-o", str(reason_workspace / "out.json"),
            "--trace", str(trace_path),
            "--profile",
        ])
        assert code == 0
        assert validate_trace_file(str(trace_path)) == []
        err = capsys.readouterr().err
        assert "engine.run" in err          # profile table
        assert "trace:" in err

    def test_budget_flag_reports_truncation_via_exit_code(
        self, reason_workspace, capsys
    ):
        code = main([
            "reason",
            str(reason_workspace / "mini.gsl"),
            str(reason_workspace / "data.json"),
            str(reason_workspace / "rules.metalog"),
            "-o", str(reason_workspace / "out.json"),
            "--max-facts", "5",
        ])
        assert code == 3
        assert "budget exceeded" in capsys.readouterr().err
