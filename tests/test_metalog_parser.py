"""MetaLog concrete-syntax parser tests (Section 4 grammar)."""

import pytest

from repro.errors import ParseError
from repro.metalog import parse_metalog, parse_metalog_rule
from repro.metalog.ast import (
    EdgeAtom,
    GraphPattern,
    NodeAtom,
    PathAlt,
    PathEdge,
    PathSeq,
    PathStar,
)
from repro.vadalog.ast import Assignment, Condition
from repro.vadalog.terms import Variable


class TestAtoms:
    def test_node_atom_full(self):
        rule = parse_metalog_rule(
            '(x: PhysicalPerson; name: n, gender: "male") -> exists c : (x)[c: OK](x).'
        )
        atom = rule.body[0].elements[0]
        assert atom.variable == Variable("x")
        assert atom.label == "PhysicalPerson"
        assert atom.attributes == (("name", Variable("n")), ("gender", "male"))

    def test_bare_node_atom(self):
        rule = parse_metalog_rule("(x: A) -> exists c : (x)[c: E](x).")
        head_pattern = rule.head[0]
        assert head_pattern.elements[0] == NodeAtom(Variable("x"), None, ())

    def test_label_only_node_atom(self):
        rule = parse_metalog_rule('(: SM_Type; name: w) -> exists c : (c: T; name: w).')
        atom = rule.body[0].elements[0]
        assert atom.variable is None and atom.label == "SM_Type"

    def test_edge_atom_with_attributes(self):
        rule = parse_metalog_rule(
            '(x: A)[o: HOLDS; right: "ownership", percentage: s](y: B) -> exists c : (x)[c: R](y).'
        )
        path = rule.body[0].elements[1]
        assert isinstance(path, PathEdge)
        assert path.edge.variable == Variable("o")
        assert path.edge.attributes[0] == ("right", "ownership")

    def test_anonymous_edge(self):
        rule = parse_metalog_rule("(x: A)[: R](y: B) -> exists c : (x)[c: S](y).")
        assert rule.body[0].elements[1].edge.variable is None

    def test_chain_of_three_nodes(self):
        rule = parse_metalog_rule(
            "(x: A)[:R](z: B)[:S](y: C) -> exists c : (x)[c: T](y)."
        )
        pattern = rule.body[0]
        assert len(pattern.node_atoms) == 3
        assert len(pattern.paths) == 2
        hops = pattern.hops()
        assert hops[0][0].variable == Variable("x")
        assert hops[1][2].variable == Variable("y")


class TestPathExpressions:
    def test_example_4_3_star(self):
        rule = parse_metalog_rule(
            "(x: SM_Node) ([:SM_CHILD]- . [:SM_PARENT])* (y: SM_Node)"
            " -> exists w : (x)[w: DESCFROM](y)."
        )
        path = rule.body[0].elements[1]
        assert isinstance(path, PathStar)
        assert isinstance(path.inner, PathSeq)
        first, second = path.inner.parts
        assert first.edge.inverted and first.edge.label == "SM_CHILD"
        assert not second.edge.inverted and second.edge.label == "SM_PARENT"

    def test_alternation(self):
        rule = parse_metalog_rule(
            "(x: A) ([:R] | [:S]) (y: B) -> exists c : (x)[c: T](y)."
        )
        path = rule.body[0].elements[1]
        assert isinstance(path, PathAlt)
        assert len(path.options) == 2

    def test_precedence_alt_under_star(self):
        rule = parse_metalog_rule(
            "(x: A) ([:R] | [:S] . [:T])* (y: B) -> exists c : (x)[c: U](y)."
        )
        path = rule.body[0].elements[1]
        assert isinstance(path, PathStar)
        assert isinstance(path.inner, PathAlt)
        assert isinstance(path.inner.options[1], PathSeq)

    def test_composite_inverse(self):
        rule = parse_metalog_rule(
            "(x: A) ([:R] . [:S])- (y: B) -> exists c : (x)[c: T](y)."
        )
        from repro.metalog.ast import PathInverse

        assert isinstance(rule.body[0].elements[1], PathInverse)

    def test_edge_inverse_is_immediate(self):
        rule = parse_metalog_rule("(x: A)[:R]-(y: B) -> exists c : (x)[c: T](y).")
        assert rule.body[0].elements[1].edge.inverted

    def test_star_detection(self):
        starry = parse_metalog_rule(
            "(x: A) ([:R])* (y: B) -> exists c : (x)[c: T](y)."
        )
        plain = parse_metalog_rule("(x: A)[:R](y: B) -> exists c : (x)[c: T](y).")
        assert starry.contains_star() and not plain.contains_star()


class TestConditionsAndHead:
    def test_condition_and_aggregate(self):
        rule = parse_metalog_rule(
            "(x: B)[:OWNS; percentage: w](y: B), v = msum(w, <x>), v > 0.5"
            " -> exists c : (x)[c: CONTROLS](y)."
        )
        assert isinstance(rule.body[1], Assignment)
        assert isinstance(rule.body[2], Condition)

    def test_existential_plain_and_skolem(self):
        rule = parse_metalog_rule(
            "(n: SM_Node) -> exists x = skN(n), h : (x: SM_Node)[h: L](x)."
        )
        first, second = rule.existentials
        assert first.variable == Variable("x") and first.functor == "skN"
        assert first.arguments == (Variable("n"),)
        assert second.functor is None

    def test_exists_without_colon(self):
        rule = parse_metalog_rule("(x: A) -> exists c (x)[c: R](x).")
        assert rule.existentials[0].variable == Variable("c")

    def test_multiple_head_patterns(self):
        rule = parse_metalog_rule(
            "(e: X) -> exists a, b : (a: P; schemaOID: 1), (a)[b: Q](a)."
        )
        assert len(rule.head) == 2

    def test_numeric_and_boolean_attribute_constants(self):
        rule = parse_metalog_rule(
            "(n: SM_Node; schemaOID: 123, isIntensional: false, weight: -2.5)"
            " -> exists c : (n)[c: R](n)."
        )
        attrs = dict(rule.body[0].elements[0].attributes)
        assert attrs["schemaOID"] == 123
        assert attrs["isIntensional"] is False
        assert attrs["weight"] == -2.5

    def test_label_sets(self):
        program = parse_metalog(
            "(x: A)[:R](y: B) -> exists c : (x)[c: S](y).\n"
            "(x: B) -> exists c : (x)[c: T](x)."
        )
        assert program.node_labels() == {"A", "B"}
        assert program.edge_labels() == {"R", "S", "T"}
        assert program.derived_edge_labels() == {"S", "T"}


class TestErrors:
    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_metalog("(x: A).")

    def test_unclosed_atom(self):
        with pytest.raises(ParseError):
            parse_metalog("(x: A -> exists c : (x)[c: R](x).")

    def test_rule_str_reparses(self):
        text = (
            "(x: Business)[:CONTROLS](z: Business)"
            "[:OWNS; percentage: w](y: Business), v = msum(w, <z>), v > 0.5"
            " -> exists c : (x)[c: CONTROLS](y)."
        )
        rule = parse_metalog_rule(text)
        assert parse_metalog_rule(str(rule)) == rule


class TestNegation:
    def test_negated_edge_pattern_parses(self):
        from repro.metalog.ast import NegatedPattern

        rule = parse_metalog_rule(
            "(x: A), (y: A), not (x)[:R](y) -> exists c : (x)[c: S](y)."
        )
        negated = rule.body[2]
        assert isinstance(negated, NegatedPattern)
        # The negated label counts toward the body (it must be extracted).
        assert rule.body_edge_labels() == {"R"}
        assert rule.head_edge_labels() == {"S"}

    def test_negated_node_pattern_parses(self):
        from repro.metalog.ast import NegatedPattern

        rule = parse_metalog_rule(
            "(x: Person), not (x: Company) -> exists c : (x)[c: PURE](x)."
        )
        assert isinstance(rule.body[1], NegatedPattern)
        assert "Company" in rule.body_node_labels()

    def test_negation_str_reparses(self):
        text = "(x: A), (y: A), not (x)[:R](y) -> exists c : (x)[c: S](y)."
        rule = parse_metalog_rule(text)
        assert parse_metalog_rule(str(rule)) == rule
