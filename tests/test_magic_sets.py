"""Magic-sets demand transformation: adornment/SIPS unit tests, the
52-program differential battery with randomly chosen bound queries
(goal-directed vs full chase, both storage backends), and the explicit
unsound-stratum fallback cases."""

import random

import pytest

from repro.errors import KGModelError, VadalogError
from repro.vadalog import Engine, parse_program
from repro.vadalog.magic import (
    GoalDirectedEvaluator,
    Query,
    magic_rewrite,
    parse_query,
)
from repro.vadalog.terms import Null, Variable

from tests.test_engine_plans import (
    _aggregate_case,
    _canon,
    _existential_case,
    _recursion_case,
)


# ---------------------------------------------------------------------------
# Query parsing and matching
# ---------------------------------------------------------------------------


class TestParseQuery:
    def test_bound_and_free(self):
        query = parse_query('controls("a", B)?')
        assert query.predicate == "controls"
        assert query.terms == ("a", Variable("B"))
        assert query.adornment() == "bf"
        assert query.bound_constants() == ("a",)

    def test_all_free(self):
        assert parse_query("p(X, Y)?").adornment() == "ff"

    def test_numeric_and_bool_constants(self):
        query = parse_query("p(1, 0.5, true, X)?")
        assert query.adornment() == "bbbf"
        assert query.terms[:3] == (1, 0.5, True)

    def test_question_mark_optional(self):
        assert parse_query('p("a")').terms == ("a",)

    def test_rejects_non_atoms(self):
        with pytest.raises(KGModelError):
            parse_query("p(X), q(X)?")
        with pytest.raises(KGModelError):
            parse_query("p(X) -> q(X)?")
        with pytest.raises(KGModelError):
            parse_query("p(#h(X))?")

    def test_matches_bound_positions(self):
        query = parse_query('p("a", X)?')
        assert query.matches(("a", 1))
        assert not query.matches(("b", 1))
        assert not query.matches(("a",))

    def test_matches_repeated_variables(self):
        query = parse_query("p(X, X)?")
        assert query.matches((3, 3))
        assert not query.matches((3, 4))

    def test_matches_numeric_tolerance(self):
        # values_equal semantics: 1 == 1.0 but True != 1.
        assert parse_query("p(1)?").matches((1.0,))
        assert not parse_query("p(true)?").matches((1,))


# ---------------------------------------------------------------------------
# Rewrite structure: adornments, SIPS, magic rules
# ---------------------------------------------------------------------------


TC = "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
SG = "f(X, Y) -> sg(X, Y).\nup(X, U), sg(U, V), down(V, Y) -> sg(X, Y)."
CONTROL = (
    "company(X) -> controls(X, X).\n"
    "controls(X, Z), own(Z, Y, W), V = msum(W, <Z>), V > 0.5"
    " -> controls(X, Y)."
)


class TestRewriteStructure:
    def test_tc_bound_first(self):
        rewrite = magic_rewrite(parse_program(TC), parse_query('tc("a", Y)?'))
        assert rewrite.rewritten
        assert rewrite.answer_predicate == "tc@bf"
        assert rewrite.seed_predicate == "magic__tc@bf"
        texts = {str(rule) for rule in rewrite.rules}
        assert "magic__tc@bf(X), e(X, Y) -> tc@bf(X, Y)." in texts
        assert "magic__tc@bf(X), tc@bf(X, Y), e(Y, Z) -> tc@bf(X, Z)." in texts

    def test_seed_rule_carries_query_constants(self):
        rewrite = magic_rewrite(parse_program(TC), parse_query('tc("a", Y)?'))
        seed = rewrite.seed_rule(parse_query('tc("zz", Y)?'))
        assert not seed.body
        assert seed.head[0].predicate == "magic__tc@bf"
        assert seed.head[0].terms == ("zz",)

    def test_sips_passes_bindings_left_to_right(self):
        # The recursive sg occurrence sits after up(X, U): the magic rule
        # must push the demand through that join.
        rewrite = magic_rewrite(parse_program(SG), parse_query('sg("a", Y)?'))
        texts = {str(rule) for rule in rewrite.rules}
        assert "magic__sg@bf(X), up(X, U) -> magic__sg@bf(U)." in texts

    def test_tautological_magic_rules_dropped(self):
        rewrite = magic_rewrite(
            parse_program(CONTROL), parse_query('controls("a", Y)?')
        )
        for rule in rewrite.rules:
            if not rule.body:
                continue
            assert [str(l) for l in rule.body] != [str(a) for a in rule.head]

    def test_aggregate_group_variable_is_demand_passable(self):
        rewrite = magic_rewrite(
            parse_program(CONTROL), parse_query('controls("a", Y)?')
        )
        assert rewrite.rewritten
        assert rewrite.answer_predicate == "controls@bf"

    def test_aggregate_target_position_degrades_to_free(self):
        text = "own(Z, Y, W), V = mmax(W, <Z>), V > 0.4 -> strong(Y, V)."
        # Binding the result position V cannot restrict the aggregate:
        # the adornment degrades to all-free and the rewrite falls back.
        rewrite = magic_rewrite(
            parse_program(text), parse_query("strong(Y, 0.7)?")
        )
        assert not rewrite.rewritten
        assert any("no demand-passable" in r for r in rewrite.fallback_reasons)
        # ... while binding the group position Y stays goal-directed.
        rewrite = magic_rewrite(
            parse_program(text), parse_query('strong("b", V)?')
        )
        assert rewrite.rewritten

    def test_skolem_head_position_degrades_to_free(self):
        text = "own(X, Y, W) -> holding(#h(X, Y), X, Y, W)."
        query = Query("holding", (Variable("H"), "a", Variable("Y"), Variable("W")))
        rewrite = magic_rewrite(parse_program(text), query)
        assert rewrite.rewritten
        assert rewrite.answer_predicate == "holding@fbff"

    def test_all_free_query_falls_back_to_cone(self):
        rewrite = magic_rewrite(parse_program(TC), parse_query("tc(X, Y)?"))
        assert not rewrite.rewritten
        assert rewrite.answer_predicate == "tc"
        assert {str(r) for r in rewrite.rules} == {
            str(r) for r in parse_program(TC).rules
        }

    def test_edb_query_needs_no_program(self):
        rewrite = magic_rewrite(parse_program(TC), parse_query('e("a", Y)?'))
        assert not rewrite.rewritten
        assert rewrite.rules == []

    def test_unrelated_rules_are_dropped(self):
        text = TC + '\nnode(X), not tc("a", X) -> unreachable(X).'
        rewrite = magic_rewrite(parse_program(text), parse_query('tc("a", Y)?'))
        # tc is negated only by a rule tc itself never demands: the
        # reachable-cone restriction keeps tc adornable.
        assert rewrite.rewritten
        predicates = {p for r in rewrite.rules for p in r.head_predicates()}
        assert "unreachable" not in predicates


class TestSoundnessFallbacks:
    def test_negated_predicate_in_cone_goes_full(self):
        text = (
            "node(X), not bad(X) -> good(X).\n"
            "edge(X, Y), bad(X) -> bad(Y)."
        )
        rewrite = magic_rewrite(
            parse_program(text), parse_query('good("n1")?')
        )
        assert "bad" in rewrite.full_predicates
        assert any("negation" in r for r in rewrite.fallback_reasons)
        # bad's original rules ride along unrestricted.
        assert "bad" in rewrite.cone_predicates

    def test_existential_head_goes_full(self):
        text = "person(X) -> hasid(X, Y).\nhasid(X, Y) -> owner(Y, X)."
        rewrite = magic_rewrite(
            parse_program(text), parse_query('owner(Y, "p")?')
        )
        assert "hasid" in rewrite.full_predicates
        assert any("existential" in r for r in rewrite.fallback_reasons)

    def test_query_on_full_predicate_is_cone_evaluation(self):
        text = "person(X) -> hasid(X, Y)."
        rewrite = magic_rewrite(
            parse_program(text), parse_query('hasid("p", Y)?')
        )
        assert not rewrite.rewritten
        assert rewrite.answer_predicate == "hasid"

    def test_full_closure_covers_dependencies(self):
        # reach feeds the existential rule: computing meet demands the
        # complete reach, which demands the complete edge closure.
        text = (
            "edge(X, Y) -> reach(X, Y).\n"
            "reach(X, Z), edge(Z, Y) -> reach(X, Y).\n"
            "reach(X, Y) -> meet(X, Y, Z).\n"
            "meet(X, Y, Z) -> venue(Z)."
        )
        rewrite = magic_rewrite(
            parse_program(text), parse_query('venue("v")?')
        )
        assert {"meet", "reach"} <= rewrite.full_predicates


# ---------------------------------------------------------------------------
# Differential battery: magic vs full chase on the 52 seeded programs
# ---------------------------------------------------------------------------


def _bound_queries(rng, predicate, answers, arity):
    """One hit query (positions bound from a real answer) and one miss."""
    queries = []
    if answers and arity:
        sample = list(rng.choice(sorted(answers, key=repr)))
        bindable = [
            i for i, v in enumerate(sample) if not isinstance(v, Null)
        ]
        if bindable:
            chosen = rng.sample(
                bindable, rng.randrange(1, len(bindable) + 1)
            )
            terms = tuple(
                sample[i] if i in chosen else Variable(f"Q{i}")
                for i in range(arity)
            )
            queries.append(Query(predicate, terms))
    if arity:
        terms = ("@@miss@@",) + tuple(
            Variable(f"Q{i}") for i in range(1, arity)
        )
        queries.append(Query(predicate, terms))
    return queries


def goal_differential(text, predicates, columnar, rng, **inputs):
    program = parse_program(text)
    evaluator = GoalDirectedEvaluator(program, columnar=columnar)
    full = Engine(columnar=columnar).run(program, inputs=inputs)
    checked = 0
    for predicate in predicates:
        answers = full.facts(predicate)
        arity = len(next(iter(answers))) if answers else 2
        for query in _bound_queries(rng, predicate, answers, arity):
            expected = {f for f in answers if query.matches(f)}
            got = evaluator.answer(query, inputs=inputs)
            assert _canon(got.facts) == _canon(expected), (
                f"{query} [{got.mode}]"
            )
            checked += 1
    assert checked
    return evaluator


class TestRandomizedGoalDifferential:
    @pytest.mark.parametrize("columnar", [True, False])
    @pytest.mark.parametrize("seed", range(20))
    def test_negation_free_recursion(self, seed, columnar):
        rng = random.Random(1000 + seed)
        text, predicates, inputs = _recursion_case(rng)
        goal_differential(text, predicates, columnar, rng, **inputs)

    @pytest.mark.parametrize("columnar", [True, False])
    @pytest.mark.parametrize("seed", range(16))
    def test_monotonic_aggregates(self, seed, columnar):
        rng = random.Random(2000 + seed)
        text, predicates, inputs = _aggregate_case(rng)
        goal_differential(text, predicates, columnar, rng, **inputs)

    @pytest.mark.parametrize("columnar", [True, False])
    @pytest.mark.parametrize("seed", range(16))
    def test_existential_skolem(self, seed, columnar):
        rng = random.Random(3000 + seed)
        text, predicates, inputs = _existential_case(rng)
        goal_differential(text, predicates, columnar, rng, **inputs)


# ---------------------------------------------------------------------------
# The point of it all: demand restriction actually restricts
# ---------------------------------------------------------------------------


class TestDemandRestriction:
    def test_magic_derives_fewer_facts_than_full(self):
        # Two disconnected 40-node chains; demand on one endpoint must
        # not compute the other component's closure.
        edges = [(f"a{i}", f"a{i+1}") for i in range(40)]
        edges += [(f"b{i}", f"b{i+1}") for i in range(40)]
        program = parse_program(TC)
        evaluator = GoalDirectedEvaluator(program)
        answer = evaluator.answer('tc("a0", Y)?', inputs={"e": edges})
        full = evaluator.full_answer('tc("a0", Y)?', inputs={"e": edges})
        assert answer.facts == full.facts
        assert len(answer.facts) == 40
        assert answer.stats.facts_derived < full.stats.facts_derived / 4

    def test_rewrite_cache_reused_across_constants(self):
        program = parse_program(TC)
        evaluator = GoalDirectedEvaluator(program)
        first = evaluator.rewrite(parse_query('tc("a", Y)?'))
        second = evaluator.rewrite(parse_query('tc("b", Y)?'))
        assert first is second

    def test_repeated_query_variable(self):
        edges = [("a", "b"), ("b", "a"), ("b", "c")]
        program = parse_program(TC)
        evaluator = GoalDirectedEvaluator(program)
        query = parse_query("tc(X, X)?")
        got = evaluator.answer(query, inputs={"e": edges})
        full = evaluator.full_answer(query, inputs={"e": edges})
        assert got.facts == full.facts
        assert got.facts == {("a", "a"), ("b", "b")}

    def test_bindings_report_free_variables(self):
        program = parse_program(TC)
        evaluator = GoalDirectedEvaluator(program)
        answer = evaluator.answer(
            'tc("a", Y)?', inputs={"e": [("a", "b"), ("b", "c")]}
        )
        assert {"Y": "b"} in answer.bindings()
        assert {"Y": "c"} in answer.bindings()

    def test_database_not_mutated(self):
        from repro.vadalog import Database

        db = Database()
        db.add_all("e", [("a", "b"), ("b", "c")])
        evaluator = GoalDirectedEvaluator(parse_program(TC))
        evaluator.answer('tc("a", Y)?', database=db)
        assert set(db.predicates()) == {"e"}
        assert db.count("e") == 2
