"""Algorithm 2: intensional-component materialization tests."""

import pytest

from repro.core.dictionary import GraphDictionary
from repro.metalog import parse_metalog
from repro.finkg import programs
from repro.ssst import IntensionalMaterializer, catalog_from_super_schema
from repro.ssst.views import input_views, output_views
from repro.vadalog.terms import SkolemValue


@pytest.fixture()
def materializer():
    return IntensionalMaterializer()


class TestControlMaterialization:
    def test_control_over_owns_edges(self, company_schema, owns_instance, materializer):
        report = materializer.materialize(
            company_schema, owns_instance,
            parse_metalog(programs.CONTROL_PROGRAM), instance_oid=9,
        )
        enriched = report.instance.data
        controls = {
            (e.source, e.target) for e in enriched.edges("CONTROLS")
            if e.source != e.target
        }
        assert controls == {("B1", "B2"), ("B1", "B3")}
        assert report.derived_counts["CONTROLS"] == 5  # incl. 3 self-loops

    def test_phases_are_timed(self, company_schema, owns_instance, materializer):
        report = materializer.materialize(
            company_schema, owns_instance,
            parse_metalog(programs.CONTROL_PROGRAM), instance_oid=9,
        )
        breakdown = report.phase_breakdown()
        assert set(breakdown) == {"load", "reason", "flush"}
        assert report.total_seconds == pytest.approx(sum(breakdown.values()))
        assert report.reason_stats is not None

    def test_original_data_is_preserved(self, company_schema, owns_instance, materializer):
        report = materializer.materialize(
            company_schema, owns_instance,
            parse_metalog(programs.CONTROL_PROGRAM), instance_oid=9,
        )
        enriched = report.instance.data
        assert enriched.has_node("B1")
        assert enriched.node("B1").get("businessName") == "B1 SpA"
        owns = {(e.source, e.target) for e in enriched.edges("OWNS")}
        assert owns == {("B1", "B2"), ("B2", "B3"), ("B1", "B3")}


class TestFullSharePipeline:
    def test_owns_then_control(self, company_schema, tiny_instance, materializer):
        # Stage 1: derive OWNS from the reified HOLDS/Share/BELONGS_TO.
        first = materializer.materialize(
            company_schema, tiny_instance,
            parse_metalog(programs.OWNS_PROGRAM), instance_oid=11,
        )
        owns = {
            (e.source, e.target, e.get("percentage"))
            for e in first.instance.data.edges("OWNS")
        }
        assert ("B1", "B2", 0.6) in owns
        assert ("p1", "B1", 0.8) in owns
        # Stage 2: control on top of the derived OWNS (person-level).
        second = materializer.materialize(
            company_schema, first.instance.data,
            parse_metalog(programs.PERSON_CONTROL_PROGRAM), instance_oid=12,
        )
        controls = {
            (e.source, e.target)
            for e in second.instance.data.edges("CONTROLS")
            if e.source != e.target
        }
        # p1 controls B1 directly, hence B2, hence (0.3 + 0.3) B3.
        assert controls == {
            ("p1", "B1"), ("p1", "B2"), ("p1", "B3"),
            ("B1", "B2"), ("B1", "B3"),
        }

    def test_stakeholders_property(self, company_schema, tiny_instance, materializer):
        first = materializer.materialize(
            company_schema, tiny_instance,
            parse_metalog(programs.OWNS_PROGRAM), instance_oid=21,
        )
        second = materializer.materialize(
            company_schema, first.instance.data,
            parse_metalog(programs.STAKEHOLDERS_PROGRAM), instance_oid=22,
        )
        b3 = second.instance.data.node("B3")
        assert b3.get("numberOfStakeholders") == 2  # B1 and B2 hold stakes


class TestFamilies:
    def test_family_linker_skolems(self, company_schema, tiny_instance, materializer):
        data = tiny_instance.copy()
        data.add_node(
            "p2", "PhysicalPerson",
            fiscalCode="FCp2", name="Bo Rossi", surname="Rossi", gender="male",
        )
        data.add_node(
            "p3", "PhysicalPerson",
            fiscalCode="FCp3", name="Cy Greco", surname="Greco", gender="male",
        )
        first = materializer.materialize(
            company_schema, data,
            parse_metalog(programs.OWNS_PROGRAM), instance_oid=31,
        )
        report = materializer.materialize(
            company_schema, first.instance.data,
            parse_metalog(programs.FAMILY_PROGRAM), instance_oid=32,
        )
        enriched = report.instance.data
        families = list(enriched.nodes("Family"))
        assert {f.get("familyName") for f in families} == {"Rossi", "Greco"}
        # One family per surname: the linker Skolem functor deduplicates.
        rossi_members = {
            e.source for e in enriched.edges("BELONGS_TO_FAMILY")
            if enriched.node(e.target).get("familyName") == "Rossi"
        }
        assert rossi_members == {"p1", "p2"}
        related = {
            (e.source, e.target) for e in enriched.edges("IS_RELATED_TO")
        }
        assert ("p1", "p2") in related and ("p2", "p1") in related
        assert not any("p3" in pair for pair in related)
        family_owns = {
            (enriched.node(e.source).get("familyName"), e.target)
            for e in enriched.edges("FAMILY_OWNS")
        }
        assert ("Rossi", "B1") in family_owns


class TestViews:
    def test_input_view_accepts_descendant_instances(self, company_schema):
        catalog = catalog_from_super_schema(company_schema)
        views = input_views(company_schema, ["Person"], [], 1, catalog)
        base_rules = [
            r for r in views.rules
            if r.head[0].predicate == "vI_base_Person"
        ]
        # Person plus its five descendants.
        assert len(base_rules) == 6

    def test_output_view_skips_unknown_labels(self, company_schema):
        catalog = catalog_from_super_schema(company_schema)
        views = output_views(company_schema, ["Martian"], ["WARPS"], 1, catalog)
        assert views.rules == []

    def test_optional_attribute_gets_none_default(self, company_schema, materializer):
        from repro.graph.property_graph import PropertyGraph

        data = PropertyGraph()
        # birthDate (optional) missing: the negation default must keep
        # the node visible to Sigma.
        data.add_node(
            "p", "PhysicalPerson", fiscalCode="F", name="N N", surname="N",
            gender="female",
        )
        sigma = parse_metalog(
            "(x: PhysicalPerson; name: n) -> exists c :"
            " (x)[c: IS_RELATED_TO](x)."
        )
        report = materializer.materialize(company_schema, data, sigma, 41)
        assert len(list(report.instance.data.edges("IS_RELATED_TO"))) == 1


class TestDictionaryReuse:
    def test_shared_dictionary_keeps_schema_once(
        self, company_schema, owns_instance, materializer
    ):
        dictionary = GraphDictionary()
        materializer.materialize(
            company_schema, owns_instance,
            parse_metalog(programs.CONTROL_PROGRAM), instance_oid=1,
            dictionary=dictionary,
        )
        nodes_after_first = dictionary.graph.node_count
        # Second instance in the same dictionary.
        materializer.materialize(
            company_schema, owns_instance,
            parse_metalog(programs.CONTROL_PROGRAM), instance_oid=2,
            dictionary=dictionary,
        )
        assert dictionary.graph.node_count > nodes_after_first
        assert dictionary.schema_oids() == [123]
