"""Incremental materialization: delta-chase differential battery,
DRed edge cases, materializer updates, and store delta-flush appliers."""

import random

import pytest

from repro.deploy import FlushDelta, GraphStore, RelationalEngine, TripleStore
from repro.errors import EvaluationError, IntegrityError, SchemaError
from repro.finkg import programs
from repro.finkg.company_schema import company_super_schema
from repro.graph.property_graph import PropertyGraph
from repro.metalog import parse_metalog
from repro.models.relational import Column, ForeignKey, RelationalSchema, Table
from repro.ssst import SSST, IntensionalMaterializer, RegistryDelta
from repro.vadalog import Engine, parse_program

from tests.test_engine_plans import (
    _aggregate_case,
    _canon,
    _existential_case,
    _recursion_case,
)

KINDS = ("insert", "delete", "mixed")


# ---------------------------------------------------------------------------
# Engine-level differential battery: apply_delta vs from-scratch oracle
# ---------------------------------------------------------------------------


def _mutation(rng, inputs, templates, kind):
    """A random extensional delta over one of the case's input relations.

    ``templates`` holds one original fact per predicate, so fresh facts
    keep the right arity/value shapes even after a relation was emptied
    by an earlier round's deletions.
    """
    added, removed = {}, {}
    candidates = [p for p in sorted(inputs) if p in templates]
    predicate = rng.choice(candidates)
    facts = sorted(inputs[predicate], key=repr)

    def fresh_value(value):
        if isinstance(value, float):
            return round(rng.random(), 3)
        return f"x{rng.randrange(12)}"

    if kind in ("insert", "mixed") or not facts:
        added[predicate] = [
            tuple(fresh_value(v) for v in templates[predicate])
            for _ in range(rng.randrange(1, 4))
        ]
    if kind in ("delete", "mixed") and facts:
        removed[predicate] = rng.sample(
            facts, min(len(facts), rng.randrange(1, 3))
        )
    return added, removed


def _mutated_inputs(inputs, added, removed):
    mutated = {p: set(facts) for p, facts in inputs.items()}
    for predicate, facts in removed.items():
        mutated[predicate] -= set(facts)
    for predicate, facts in added.items():
        mutated.setdefault(predicate, set()).update(facts)
    return {p: sorted(facts, key=repr) for p, facts in mutated.items()}


def delta_differential(text, predicates, inputs, rng, kind, use_plans=True,
                       track_support=False):
    """Retained run + apply_delta must equal a from-scratch oracle, up to
    labeled-null renaming, after each of two chained updates."""
    program = parse_program(text)
    engine = Engine(use_plans=use_plans)
    result = engine.run(
        program, inputs=inputs, retain_state=True, track_support=track_support
    )
    templates = {
        p: sorted(facts, key=repr)[0] for p, facts in inputs.items() if facts
    }
    current = inputs
    for _round in range(2):
        added, removed = _mutation(rng, current, templates, kind)
        engine.apply_delta(result, added=added, removed=removed)
        current = _mutated_inputs(current, added, removed)
        oracle = Engine(use_plans=False).run(program, inputs=current)
        for predicate in predicates:
            assert _canon(result.facts(predicate)) == _canon(
                oracle.facts(predicate)
            ), f"{kind} mismatch on {predicate} (round {_round})"


class TestEngineDeltaDifferential:
    @pytest.mark.parametrize("use_plans", [True, False])
    @pytest.mark.parametrize("seed", range(14))
    def test_recursion(self, seed, use_plans):
        rng = random.Random(5000 + seed)
        text, predicates, inputs = _recursion_case(rng)
        delta_differential(
            text, predicates, inputs, rng, KINDS[seed % 3], use_plans=use_plans
        )

    @pytest.mark.parametrize("use_plans", [True, False])
    @pytest.mark.parametrize("seed", range(14))
    def test_aggregates(self, seed, use_plans):
        rng = random.Random(6000 + seed)
        text, predicates, inputs = _aggregate_case(rng)
        delta_differential(
            text, predicates, inputs, rng, KINDS[seed % 3], use_plans=use_plans
        )

    @pytest.mark.parametrize("use_plans", [True, False])
    @pytest.mark.parametrize("seed", range(14))
    def test_existentials(self, seed, use_plans):
        rng = random.Random(7000 + seed)
        text, predicates, inputs = _existential_case(rng)
        delta_differential(
            text, predicates, inputs, rng, KINDS[seed % 3], use_plans=use_plans
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_track_support_variant(self, seed):
        rng = random.Random(8000 + seed)
        text, predicates, inputs = _recursion_case(rng)
        delta_differential(
            text, predicates, inputs, rng, KINDS[seed % 3], track_support=True
        )


# ---------------------------------------------------------------------------
# DRed edge cases
# ---------------------------------------------------------------------------


class TestDRedEdgeCases:
    def test_alternative_derivation_survives(self):
        """A fact with two derivations loses one premise and is
        re-derived through the other."""
        program = parse_program("e(X, Y) -> p(X, Y).\nf(X, Y) -> p(X, Y).")
        engine = Engine()
        result = engine.run(
            program,
            inputs={"e": [("a", "b")], "f": [("a", "b")]},
            retain_state=True,
        )
        delta = engine.apply_delta(result, removed={"e": [("a", "b")]})
        assert result.facts("p") == {("a", "b")}
        assert delta.overdeleted >= 1
        assert delta.rederived >= 1
        assert "p" not in {p for p, facts in delta.removed.items() if facts}

    def test_cyclic_support_does_not_keep_ghosts(self):
        """Facts supporting each other through a cycle must not survive
        on mutual support once the external premise is gone."""
        program = parse_program(
            "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
        )
        engine = Engine()
        edges = [("a", "b"), ("b", "c"), ("c", "a")]
        result = engine.run(program, inputs={"e": edges}, retain_state=True)
        engine.apply_delta(result, removed={"e": [("c", "a")]})
        oracle = Engine().run(
            program, inputs={"e": [("a", "b"), ("b", "c")]}
        )
        assert result.facts("tc") == oracle.facts("tc")

    def test_delete_then_readd_round_trips(self):
        program = parse_program(
            "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
        )
        engine = Engine()
        edges = [("a", "b"), ("b", "c"), ("c", "d")]
        result = engine.run(program, inputs={"e": edges}, retain_state=True)
        before = set(result.facts("tc"))
        engine.apply_delta(result, removed={"e": [("b", "c")]})
        assert set(result.facts("tc")) != before
        engine.apply_delta(result, added={"e": [("b", "c")]})
        assert set(result.facts("tc")) == before

    def test_removing_derived_fact_is_skipped(self):
        program = parse_program("e(X, Y) -> p(X, Y).")
        engine = Engine()
        result = engine.run(
            program, inputs={"e": [("a", "b")]}, retain_state=True
        )
        delta = engine.apply_delta(result, removed={"p": [("a", "b")]})
        assert delta.skipped_removals == 1
        assert not delta.changed()
        assert result.facts("p") == {("a", "b")}

    def test_apply_delta_requires_retained_state(self):
        program = parse_program("e(X, Y) -> p(X, Y).")
        engine = Engine()
        result = engine.run(program, inputs={"e": [("a", "b")]})
        with pytest.raises(EvaluationError, match="retain_state"):
            engine.apply_delta(result, added={"e": [("b", "c")]})


# ---------------------------------------------------------------------------
# EvaluationResult.per_stratum_facts
# ---------------------------------------------------------------------------


class TestPerStratumFacts:
    PROGRAM = (
        "e(X, Y) -> r(X, Y).\n"
        "r(X, Y), not blocked(X) -> ok(X, Y)."
    )

    def test_partition_covers_derived_predicates(self):
        result = Engine().run(
            parse_program(self.PROGRAM),
            inputs={"e": [("a", "b")], "blocked": [("z",)]},
        )
        snapshot = result.per_stratum_facts()
        owners = {
            predicate: index
            for index, relations in snapshot.items()
            for predicate in relations
        }
        assert owners["r"] < owners["ok"]  # negation forces a later stratum
        assert snapshot[owners["ok"]]["ok"] == frozenset({("a", "b")})
        assert "e" in snapshot[-1] or "e" in snapshot[owners["r"]]

    def test_snapshot_is_stable_under_updates(self):
        engine = Engine()
        result = engine.run(
            parse_program(self.PROGRAM),
            inputs={"e": [("a", "b")], "blocked": [("z",)]},
            retain_state=True,
        )
        snapshot = result.per_stratum_facts()
        frozen = {
            index: {p: set(facts) for p, facts in relations.items()}
            for index, relations in snapshot.items()
        }
        engine.apply_delta(result, added={"e": [("b", "c")]})
        assert {
            index: {p: set(facts) for p, facts in relations.items()}
            for index, relations in snapshot.items()
        } == frozen
        assert result.facts("ok") == {("a", "b"), ("b", "c")}


# ---------------------------------------------------------------------------
# Materializer update (registry delta through the retained pipeline)
# ---------------------------------------------------------------------------


def _canon_graph(graph):
    def can(value):
        return value if isinstance(value, (str, int, float, bool)) else "<derived>"

    nodes = {
        (can(n.id), n.label,
         tuple(sorted((k, can(v)) for k, v in n.properties.items())))
        for n in graph.nodes()
    }
    edges = {
        (can(e.source), can(e.target), e.label,
         tuple(sorted((k, can(v)) for k, v in e.properties.items())))
        for e in graph.edges()
    }
    return nodes, edges


def _control_sigma():
    return parse_metalog(programs.CONTROL_PROGRAM)


@pytest.fixture()
def retained(company_schema, owns_instance):
    materializer = IntensionalMaterializer()
    report = materializer.materialize(
        company_schema, owns_instance, _control_sigma(),
        instance_oid=9, retain=True,
    )
    return materializer, report


def _owns_graph():
    """A fresh copy of the conftest ``owns_instance`` shape, for building
    expected registries (``update`` maintains the caller's graph in
    place, so the fixture object itself reflects the delta afterwards)."""
    data = PropertyGraph("owns")
    for business in ("B1", "B2", "B3"):
        data.add_node(
            business, "Business",
            fiscalCode=f"FC{business}", businessName=f"{business} SpA",
            legalNature="spa", shareholdingCapital=1000.0,
        )
    data.add_edge("B1", "B2", "OWNS", percentage=0.6)
    data.add_edge("B2", "B3", "OWNS", percentage=0.3)
    data.add_edge("B1", "B3", "OWNS", percentage=0.3)
    return data


def _reference(data):
    return IntensionalMaterializer().materialize(
        company_super_schema(), data, _control_sigma(), instance_oid=9
    )


class TestMaterializerUpdate:
    def test_insert_differential(self, retained, owns_instance):
        materializer, _report = retained
        delta = RegistryDelta(
            add_nodes=[("B4", "Business", {
                "fiscalCode": "FCB4", "businessName": "B4 SpA",
                "legalNature": "spa", "shareholdingCapital": 500.0})],
            add_edges=[("o4", "B3", "B4", "OWNS", {"percentage": 0.9})],
        )
        outcome = materializer.update(delta)
        expected = _owns_graph()
        expected.add_node(
            "B4", "Business", fiscalCode="FCB4", businessName="B4 SpA",
            legalNature="spa", shareholdingCapital=500.0,
        )
        expected.add_edge("B3", "B4", "OWNS", percentage=0.9, edge_id="o4")
        assert _canon_graph(outcome.instance.data) == _canon_graph(
            _reference(expected).instance.data
        )
        # The registry graph passed to materialize() is maintained in place.
        assert owns_instance.has_node("B4")
        assert outcome.flush_delta.changed()
        assert outcome.engine_seconds > 0

    def test_delete_differential(self, retained, owns_instance):
        materializer, _report = retained
        edge = min(owns_instance.edges("OWNS"),
                   key=lambda e: (e.source, e.target))
        outcome = materializer.update(RegistryDelta(remove_edges=[edge.id]))
        expected = _owns_graph()
        match = min(
            (e for e in expected.edges("OWNS")
             if (e.source, e.target) == (edge.source, edge.target)),
            key=lambda e: str(e.id),
        )
        expected.remove_edge(match.id)
        assert _canon_graph(outcome.instance.data) == _canon_graph(
            _reference(expected).instance.data
        )

    def test_node_removal_cascades_incident_edges(self, retained):
        materializer, _report = retained
        outcome = materializer.update(RegistryDelta(remove_nodes=["B3"]))
        expected = _owns_graph()
        expected.remove_node("B3")
        assert _canon_graph(outcome.instance.data) == _canon_graph(
            _reference(expected).instance.data
        )
        assert not outcome.instance.data.has_node("B3")

    def test_chained_updates(self, retained):
        materializer, _report = retained
        materializer.update(RegistryDelta(
            add_nodes=[("B4", "Business", {"fiscalCode": "FCB4",
                                           "businessName": "B4 SpA"})],
            add_edges=[("o4", "B1", "B4", "OWNS", {"percentage": 0.8})],
        ))
        outcome = materializer.update(RegistryDelta(remove_nodes=["B4"]))
        assert _canon_graph(outcome.instance.data) == _canon_graph(
            _reference(_owns_graph()).instance.data
        )
        assert materializer.retained.updates_applied == 2

    def test_update_requires_retained_run(self, company_schema, owns_instance):
        materializer = IntensionalMaterializer()
        materializer.materialize(
            company_schema, owns_instance, _control_sigma(), instance_oid=9
        )
        with pytest.raises(EvaluationError, match="retain=True"):
            materializer.update(RegistryDelta(remove_nodes=["B1"]))

    def test_unknown_type_rejected(self, retained):
        materializer, _report = retained
        with pytest.raises(SchemaError):
            materializer.update(RegistryDelta(
                add_nodes=[("X1", "NotAType", {})]
            ))

    def test_duplicate_node_rejected(self, retained):
        materializer, _report = retained
        with pytest.raises(SchemaError, match="already"):
            materializer.update(RegistryDelta(
                add_nodes=[("B1", "Business", {})]
            ))

    def test_missing_endpoint_rejected(self, retained):
        materializer, _report = retained
        with pytest.raises(SchemaError, match="missing node"):
            materializer.update(RegistryDelta(
                add_edges=[("oX", "B1", "ghost", "OWNS", {"percentage": 0.5})]
            ))

    def test_remove_unknown_element_rejected(self, retained):
        materializer, _report = retained
        with pytest.raises(SchemaError, match="unknown"):
            materializer.update(RegistryDelta(remove_nodes=["ghost"]))

    def test_compile_cache_reused(self, company_schema, owns_instance):
        materializer = IntensionalMaterializer()
        sigma = _control_sigma()
        materializer.materialize(
            company_schema, owns_instance, sigma, instance_oid=9
        )
        first = dict(materializer._compile_cache)
        materializer.materialize(
            company_schema, owns_instance, sigma, instance_oid=9
        )
        assert len(materializer._compile_cache) == 1
        key, entry = next(iter(materializer._compile_cache.items()))
        assert first[key] is entry  # second run reused the compiled views


class TestRegistryDelta:
    def test_from_json_dict(self):
        delta = RegistryDelta.from_json_dict({
            "add_nodes": [{"id": "c9", "type": "Business",
                           "properties": {"businessName": "NewCo"}}],
            "add_edges": [{"id": "o9", "source": "c1", "target": "c9",
                           "type": "OWNS",
                           "properties": {"percentage": 0.6}}],
            "remove_nodes": ["c3"],
            "remove_edges": ["o7"],
        })
        assert delta.add_nodes == [
            ("c9", "Business", {"businessName": "NewCo"})
        ]
        assert delta.add_edges == [
            ("o9", "c1", "c9", "OWNS", {"percentage": 0.6})
        ]
        assert delta.remove_nodes == ["c3"] and delta.remove_edges == ["o7"]
        assert not delta.is_empty()

    def test_unknown_keys_rejected(self):
        with pytest.raises(SchemaError, match="unknown change keys"):
            RegistryDelta.from_json_dict({"nodes": []})

    def test_bad_entry_rejected(self):
        with pytest.raises(SchemaError, match="add_edges"):
            RegistryDelta.from_json_dict({
                "add_edges": [{"id": "o9", "source": "c1"}]
            })


# ---------------------------------------------------------------------------
# FlushDelta.diff and the store appliers
# ---------------------------------------------------------------------------


class TestFlushDeltaDiff:
    def test_categories(self):
        old = PropertyGraph("old")
        old.add_node("a", "A", x=1)
        old.add_node("b", "A", x=2)
        old.add_node("c", "A", x=3)
        old.add_edge("a", "b", "R", edge_id="e1")
        old.add_edge("b", "c", "R", edge_id="e2", w=1)
        new = PropertyGraph("new")
        new.add_node("a", "A", x=1)        # unchanged
        new.add_node("b", "B", x=2)        # label change -> remove + add
        new.add_node("d", "A", x=4)        # added; c removed
        new.add_edge("a", "b", "R", edge_id="e1")        # unchanged
        new.add_edge("a", "d", "R", edge_id="e3")        # added; e2 removed
        delta = FlushDelta.diff(old, new)
        assert {n[0] for n in delta.added_nodes} == {"b", "d"}
        assert {n[0] for n in delta.removed_nodes} == {"b", "c"}
        assert not delta.updated_nodes
        assert {e[0] for e in delta.added_edges} == {"e3"}
        assert {e[0] for e in delta.removed_edges} == {"e2"}
        assert delta.changed() and delta.total_changes == 6
        assert "+2" in delta.summary()

    def test_property_change_is_update(self):
        old = PropertyGraph("old")
        old.add_node("a", "A", x=1)
        new = PropertyGraph("new")
        new.add_node("a", "A", x=2)
        delta = FlushDelta.diff(old, new)
        assert delta.updated_nodes == [("a", "A", {"x": 2}, {"x": 1})]
        assert not delta.added_nodes and not delta.removed_nodes


def _business_props(fiscal_code, name):
    return {
        "fiscalCode": fiscal_code, "businessName": name,
        "legalNature": "spa", "shareholdingCapital": 1000.0,
    }


@pytest.fixture()
def pg_store(company_schema):
    store = GraphStore()
    store.deploy(
        SSST().translate(company_schema, "property-graph").target_schema
    )
    store.create_node("B1", ["Business", "LegalPerson"],
                      **_business_props("FC1", "One SpA"))
    store.create_node("B2", ["Business", "LegalPerson"],
                      **_business_props("FC2", "Two SpA"))
    store.create_relationship("B1", "B2", "OWNS", percentage=0.6)
    return store


class TestGraphStoreDelta:
    def test_apply_delta(self, pg_store, company_schema):
        delta = FlushDelta(
            added_nodes=[("B3", "Business", _business_props("FC3", "Three SpA"))],
            added_edges=[("x", "B2", "B3", "OWNS", {"percentage": 0.9})],
            updated_nodes=[("B1", "Business",
                            _business_props("FC1", "One"),
                            _business_props("FC1", "One SpA"))],
        )
        report = pg_store.apply_flush_delta(delta, schema=company_schema)
        assert report.nodes_added == 1 and report.edges_added == 1
        assert report.nodes_updated == 1 and report.skipped == 0
        assert pg_store.graph.node("B1").get("businessName") == "One"
        # Multi-label tagging follows the schema's generalizations.
        assert "LegalPerson" in pg_store.labels_of("B3")

    def test_removals_and_skips(self, pg_store):
        delta = FlushDelta(
            removed_edges=[("x", "B1", "B2", "OWNS", {"percentage": 0.6})],
            removed_nodes=[("B2", "Business", {}), ("ghost", "Business", {})],
        )
        report = pg_store.apply_flush_delta(delta)
        assert report.edges_removed == 1 and report.nodes_removed == 1
        assert report.skipped == 1  # the ghost removal is counted, not fatal
        assert not pg_store.graph.has_node("B2")

    def test_failed_insert_batch_rolls_back(self, pg_store, company_schema):
        delta = FlushDelta(
            added_nodes=[("B9", "Business", _business_props("FC9", "Nine SpA"))],
            added_edges=[("x", "B9", "nowhere", "OWNS", {"percentage": 0.1})],
        )
        with pytest.raises(Exception):
            pg_store.apply_flush_delta(delta, schema=company_schema)
        assert not pg_store.graph.has_node("B9")  # insert batch rolled back


@pytest.fixture()
def rel_engine():
    schema = RelationalSchema("mini")
    schema.tables["person"] = Table("person", [
        Column("pid", "string", is_pk=True),
        Column("name", "string"),
    ])
    schema.tables["pet"] = Table("pet", [
        Column("tag", "string", is_pk=True),
        Column("owner_pid", "string"),
    ])
    schema.foreign_keys.append(
        ForeignKey("fk_owner", "pet", ["owner_pid"], "person", ["pid"])
    )
    engine = RelationalEngine()
    engine.deploy(schema)
    engine.insert("person", pid="p1", name="Ada")
    engine.insert("person", pid="p2", name="Bob")
    engine.insert("pet", tag="t1", owner_pid="p1")
    return engine


class TestRelationalDelta:
    def test_apply_delta(self, rel_engine):
        counts = rel_engine.apply_flush_delta(
            added={"person": [{"pid": "p3", "name": "Cyd"}]},
            removed={"pet": [{"tag": "t1"}]},
        )
        assert counts == {"inserted": 1, "deleted": 1}
        assert rel_engine.count("person") == 3
        assert rel_engine.count("pet") == 0

    def test_fk_restrict_on_delete(self, rel_engine):
        with pytest.raises(IntegrityError):
            rel_engine.delete("person", pid="p1")  # referenced by pet t1
        assert rel_engine.count("person") == 2

    def test_failed_delta_rolls_back_everything(self, rel_engine):
        with pytest.raises(IntegrityError):
            rel_engine.apply_flush_delta(
                added={
                    "person": [{"pid": "p3", "name": "Cyd"}],
                    "pet": [{"tag": "t2", "owner_pid": "ghost"}],  # bad FK
                },
            )
        assert rel_engine.count("person") == 2  # p3 rolled back
        assert rel_engine.count("pet") == 1

    def test_delete_rebuilds_pk_index(self, rel_engine):
        rel_engine.apply_flush_delta(removed={"pet": [{"tag": "t1"}]})
        assert rel_engine.delete("person", pid="p1") == 1
        assert list(rel_engine.select("person", pid="p2"))[0]["name"] == "Bob"


class TestTripleStoreDelta:
    @pytest.fixture()
    def store(self, company_schema):
        store = TripleStore()
        store.deploy(SSST().translate(company_schema, "rdf").target_schema)
        store.add("B1", "rdf:type", "Business")
        store.add("B1", "fiscalCode", "FC1")
        store.add("B2", "rdf:type", "Business")
        store.add("B1", "OWNS", "B2")
        return store

    def test_apply_delta(self, store, company_schema):
        report = store.apply_flush_delta(FlushDelta(
            added_nodes=[("B3", "Business", {"fiscalCode": "FC3",
                                             "notDeclared": 1})],
            added_edges=[("x", "B2", "B3", "OWNS", {})],
            removed_edges=[("y", "B1", "B2", "OWNS", {})],
        ), schema=company_schema)
        assert report.nodes_added == 1
        assert report.edges_added == 1 and report.edges_removed == 1
        assert store.has("B3", "fiscalCode", "FC3")
        assert not store.has("B3", "notDeclared", 1)  # schema-filtered
        assert not store.has("B1", "OWNS", "B2")
        assert store.has("B2", "OWNS", "B3")

    def test_node_removal_retracts_attributes(self, store, company_schema):
        report = store.apply_flush_delta(FlushDelta(
            removed_nodes=[("B1", "Business", {"fiscalCode": "FC1"})],
        ), schema=company_schema)
        assert report.nodes_removed == 1
        assert not store.has("B1", "rdf:type", "Business")
        assert not store.has("B1", "fiscalCode", "FC1")

    def test_retract_is_undo_logged(self, store):
        savepoint = store.savepoint()
        assert store.retract("B1", "OWNS", "B2")
        assert not store.has("B1", "OWNS", "B2")
        store.rollback_to(savepoint)
        assert store.has("B1", "OWNS", "B2")
