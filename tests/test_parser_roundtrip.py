"""Property-based parse → pretty-print → parse round-trip tests.

Seeded random program generators (no third-party property-testing
library) for both concrete syntaxes.  The property: for any generated
program text, ``parse(str(parse(text)))`` must equal ``parse(text)`` —
the printed form is itself valid syntax and loses nothing.  AST nodes
are frozen dataclasses, so equality is structural.
"""

import random

import pytest

from repro.metalog import parse_metalog
from repro.vadalog import parse_program

# ---------------------------------------------------------------------------
# Vadalog generator
# ---------------------------------------------------------------------------

_V_PREDS = ["p", "q", "r", "s"]
_V_STRINGS = ["a", "kappa", "x1", "v"]
_V_OPS = ["+", "-", "*"]
_V_CMPS = ["==", "!=", "<", "<=", ">", ">="]


def _v_const(rng):
    roll = rng.random()
    if roll < 0.4:
        return str(rng.randrange(0, 50))
    if roll < 0.7:
        return f'"{rng.choice(_V_STRINGS)}"'
    if roll < 0.9:
        return f"{rng.randrange(1, 9)}.5"
    return rng.choice(["true", "false"])


def _vadalog_rule(rng):
    bound = []
    parts = []
    for _ in range(rng.randrange(1, 4)):
        pred = rng.choice(_V_PREDS)
        terms = []
        for _ in range(rng.randrange(1, 4)):
            roll = rng.random()
            if bound and roll < 0.35:
                terms.append(rng.choice(bound))
            elif roll < 0.55:
                terms.append(_v_const(rng))
            else:
                fresh = f"V{len(bound)}"
                bound.append(fresh)
                terms.append(fresh)
        parts.append(f"{pred}({', '.join(terms)})")
    if bound and rng.random() < 0.3:
        negated = rng.sample(bound, rng.randrange(1, min(2, len(bound)) + 1))
        parts.append(f"not absent({', '.join(negated)})")
    if bound and rng.random() < 0.4:
        parts.append(
            f"{rng.choice(bound)} {rng.choice(_V_CMPS)} {rng.randrange(10)}"
        )
    if bound and rng.random() < 0.4:
        fresh = f"V{len(bound)}"
        parts.append(
            f"{fresh} = {rng.choice(bound)} "
            f"{rng.choice(_V_OPS)} {rng.randrange(1, 5)}"
        )
        bound.append(fresh)
    if bound and rng.random() < 0.25:
        fresh = f"V{len(bound)}"
        group = rng.choice(bound)
        parts.append(f"{fresh} = msum({rng.choice(bound)}, <{group}>)")
        bound.append(fresh)
    head_terms = []
    for _ in range(rng.randrange(1, 3)):
        roll = rng.random()
        if bound and roll < 0.55:
            head_terms.append(rng.choice(bound))
        elif bound and roll < 0.7:
            picked = rng.sample(bound, min(len(bound), 2))
            head_terms.append(f"#f({', '.join(picked)})")
        else:
            head_terms.append(f"E{rng.randrange(3)}")
    return f"{', '.join(parts)} -> out{rng.randrange(3)}({', '.join(head_terms)})."


def _vadalog_program(rng):
    lines = [_vadalog_rule(rng) for _ in range(rng.randrange(1, 5))]
    if rng.random() < 0.3:
        lines.append(f'@output("out{rng.randrange(3)}").')
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# MetaLog generator
# ---------------------------------------------------------------------------

_M_LABELS = ["Company", "Person", "Asset"]
_M_RELS = ["OWNS", "CONTROLS", "KNOWS"]
_M_ATTRS = ["name", "percentage", "since"]


def _m_attrs(rng, bound):
    if rng.random() < 0.5:
        return ""
    pairs = []
    for attr in rng.sample(_M_ATTRS, rng.randrange(1, 3)):
        if rng.random() < 0.6:
            fresh = f"w{len(bound)}"
            bound.append(fresh)
            pairs.append(f"{attr}: {fresh}")
        else:
            pairs.append(f'{attr}: "{rng.choice(["alpha", "beta"])}"')
    return "; " + ", ".join(pairs)


def _m_node(rng, bound):
    fresh = f"x{len(bound)}"
    bound.append(fresh)
    label = f": {rng.choice(_M_LABELS)}" if rng.random() < 0.8 else ""
    return f"({fresh}{label}{_m_attrs(rng, bound)})"


def _m_edge(rng, bound):
    rel = rng.choice(_M_RELS)
    if rng.random() < 0.3:
        return f"[:{rel}]*"  # one-or-more repetition (Example 4.4)
    return f"[:{rel}{_m_attrs(rng, bound)}]"


def _metalog_rule(rng):
    bound = []
    pattern = _m_node(rng, bound)
    for _ in range(rng.randrange(1, 3)):
        pattern += _m_edge(rng, bound) + _m_node(rng, bound)
    parts = [pattern]
    weights = [b for b in bound if b.startswith("w")]
    if weights and rng.random() < 0.4:
        fresh = f"w{len(bound)}"
        bound.append(fresh)
        parts.append(f"{fresh} = msum({rng.choice(weights)}, <{bound[0]}>)")
        weights.append(fresh)
    if weights and rng.random() < 0.4:
        parts.append(f"{rng.choice(weights)} > 0.5")
    source, target = bound[0], rng.choice([b for b in bound if b.startswith("x")])
    rel = rng.choice(_M_RELS)
    if rng.random() < 0.7:
        head = f"exists c : ({source})[c: {rel}]({target})"
    else:
        head = f"({source})[:{rel}]({target})"
    return f"{', '.join(parts)} -> {head}."


def _metalog_program(rng):
    return "\n".join(_metalog_rule(rng) for _ in range(rng.randrange(1, 4)))


# ---------------------------------------------------------------------------
# The round-trip property
# ---------------------------------------------------------------------------


class TestVadalogRoundTrip:
    @pytest.mark.parametrize("seed", range(30))
    def test_parse_print_parse_fixed_point(self, seed):
        text = _vadalog_program(random.Random(4000 + seed))
        first = parse_program(text)
        second = parse_program(str(first))
        assert second.rules == first.rules, text
        assert second.annotations == first.annotations, text
        assert str(second) == str(first), text

    def test_known_forms_survive(self):
        text = (
            'own(X, Y, W), V = msum(W, <Y>), V > 0.5, not blocked(X)'
            ' -> holding(#h(X, Y), X, E).\n'
            '@output("holding").'
        )
        first = parse_program(text)
        assert parse_program(str(first)).rules == first.rules


class TestMetaLogRoundTrip:
    @pytest.mark.parametrize("seed", range(30))
    def test_parse_print_parse_fixed_point(self, seed):
        text = _metalog_program(random.Random(5000 + seed))
        first = parse_metalog(text)
        second = parse_metalog(str(first))
        assert second.rules == first.rules, text
        assert str(second) == str(first), text

    def test_known_forms_survive(self):
        text = (
            "(x: Company)[:CONTROLS](z: Company)"
            "[:OWNS; percentage: w](y: Company),\n"
            "    v = msum(w, <z>), v > 0.5 -> exists c : (x)[c: CONTROLS](y).\n"
            "(x: Person)[:KNOWS]*(y: Person) -> (x)[:KNOWS](y)."
        )
        first = parse_metalog(text)
        assert parse_metalog(str(first)).rules == first.rules
