"""Columnar fact storage: interner/relation units, the storage-level
randomized differential, the 52-program columnar-vs-tuple battery (plus
incremental chained-delta and workers=2 parallel batteries), spill-to-disk,
and the semantic-equality regression for ``Relation.lookup``."""

import random

import pytest

from repro.obs import RecordingTracer, ResourceGovernor
from repro.vadalog import Engine, parse_program
from repro.vadalog.columnar import ColumnarRelation, SpillStore, ValueInterner
from repro.vadalog.database import Database, Relation

from tests.test_engine_plans import (
    _aggregate_case,
    _canon,
    _existential_case,
    _recursion_case,
)
from tests.test_incremental import _mutation, _mutated_inputs

# ---------------------------------------------------------------------------
# Value interner
# ---------------------------------------------------------------------------


class TestValueInterner:
    def test_bool_gets_its_own_exact_code(self):
        itn = ValueInterner()
        c_one = itn.encode(1)
        c_true = itn.encode(True)
        c_float = itn.encode(1.0)
        assert c_one != c_true
        assert c_float == c_one  # 1 and 1.0 are values_equal: one code
        # ... but all three share one ==-equivalence class.
        assert itn.eq[c_one] == itn.eq[c_true]

    def test_zero_family(self):
        itn = ValueInterner()
        c_false = itn.encode(False)
        c_zero = itn.encode(0)
        assert c_false != c_zero
        assert itn.eq[c_false] == itn.eq[c_zero]
        # The 0-family and 1-family never mix.
        c_one = itn.encode(1)
        assert itn.eq[c_zero] != itn.eq[c_one]

    def test_probe_without_insert(self):
        itn = ValueInterner()
        itn.encode("a")
        assert itn.probe("a") is not None
        assert itn.probe("b") is None
        assert len(itn) == 1

    def test_probe_eq_cross_type(self):
        itn = ValueInterner()
        c_one = itn.encode(1)
        # True was never interned exactly, but its ==-class was.
        assert itn.probe(True) is None
        assert itn.probe_eq(True) == itn.eq[c_one]
        assert itn.probe_eq(2) is None

    def test_decode_is_first_seen_representative(self):
        itn = ValueInterner()
        code = itn.encode(1)
        assert itn.encode(1.0) == code
        assert itn.values[code] == 1

    def test_ordinary_values_are_distinct(self):
        itn = ValueInterner()
        codes = [itn.encode(v) for v in ("a", "b", 2, 2.5, None)]
        assert len(set(codes)) == 5
        for code in codes:
            assert itn.eq[code] == code


# ---------------------------------------------------------------------------
# Relation facade parity + units
# ---------------------------------------------------------------------------


def _both_backends():
    return [Relation("r"), ColumnarRelation("r", interner=ValueInterner())]


class TestColumnarRelationFacade:
    def test_add_dedups_like_a_python_set(self):
        rel = ColumnarRelation("p", interner=ValueInterner())
        assert rel.add((True,)) is True
        assert rel.add((1,)) is False  # == the stored (True,)
        assert rel.add((0,)) is True
        assert len(rel) == 2

    def test_contains_and_remove_are_eq_level(self):
        # Dedup/containment is ``==``-level (Python set semantics) in BOTH
        # backends; only ``lookup`` filters at values_equal granularity.
        for rel in _both_backends():
            rel.add((1, "a"))
            assert (1.0, "a") in rel
            assert (True, "a") in rel  # True == 1, set semantics
            assert rel.remove((1.0, "a")) is True
            assert len(rel) == 0

    def test_arity_enforced(self):
        rel = ColumnarRelation("p", interner=ValueInterner())
        rel.add(("a", "b"))
        with pytest.raises(Exception):
            rel.add(("a",))

    def test_lookup_key_matches_tuple_backend(self):
        facts = [("a", 1), ("a", 2), ("b", 1), ("a", 1)]
        results = []
        for rel in _both_backends():
            rel.add_many(facts)
            results.append(
                (
                    sorted(map(repr, rel.lookup_key((0,), ("a",)))),
                    sorted(map(repr, rel.lookup_key((0, 1), ("a", 1)))),
                    sorted(map(repr, rel.lookup_key((0,), ("zzz",)))),
                )
            )
        assert results[0] == results[1]

    def test_copy_is_independent(self):
        for rel in _both_backends():
            rel.add(("a", "b"))
            clone = rel.copy()
            clone.add(("c", "d"))
            assert len(rel) == 1 and len(clone) == 2
            assert sorted(clone.lookup_key((0,), ("a",))) == [("a", "b")]

    def test_reset_replaces_extension(self):
        for rel in _both_backends():
            rel.add_many([("a", "b"), ("c", "d")])
            list(rel.lookup_key((0,), ("a",)))  # force an index
            rel.reset([("x", "y")])
            assert sorted(rel) == [("x", "y")]
            assert list(rel.lookup_key((0,), ("a",))) == []

    def test_tombstones_then_compact(self):
        rel = ColumnarRelation("p", interner=ValueInterner())
        rel.add_many([(i, i + 1) for i in range(50)])
        for i in range(0, 50, 2):
            assert rel.remove((i, i + 1))
        assert len(rel) == 25
        assert rel.has_dead_rows
        assert sorted(rel) == [(i, i + 1) for i in range(1, 50, 2)]
        rel.compact()
        assert not rel.has_dead_rows
        assert len(rel) == 25
        assert sorted(rel.lookup_key((0,), (3,))) == [(3, 4)]

    def test_readd_after_remove(self):
        # The DRed passes remove and re-add the same facts repeatedly;
        # the dedup table and index buckets must stay consistent.
        rel = ColumnarRelation("p", interner=ValueInterner())
        for _ in range(3):
            assert rel.add(("a", "b")) is True
            assert sorted(rel.lookup_key((0,), ("a",))) == [("a", "b")]
            assert rel.remove(("a", "b")) is True
            assert list(rel.lookup_key((0,), ("a",))) == []
        assert len(rel) == 0


class TestLookupSemanticEquality:
    """Regression (satellite): ``lookup`` must not equate 1/1.0/True."""

    @pytest.mark.parametrize("backend", ["tuple", "columnar"])
    def test_mixed_int_float_bool(self, backend):
        rel = (
            Relation("p")
            if backend == "tuple"
            else ColumnarRelation("p", interner=ValueInterner())
        )
        rel.add_many([(1, "int"), (True, "bool"), (0, "zero"), (False, "false")])
        assert sorted(rel.lookup([(0, 1)])) == [(1, "int")]
        assert sorted(rel.lookup([(0, 1.0)])) == [(1, "int")]
        assert sorted(rel.lookup([(0, True)])) == [(True, "bool")]
        assert sorted(rel.lookup([(0, 0)])) == [(0, "zero")]
        assert sorted(rel.lookup([(0, False)])) == [(False, "false")]
        # Multi-constraint path goes through the same verification.
        assert sorted(rel.lookup([(0, 1), (1, "int")])) == [(1, "int")]
        assert list(rel.lookup([(0, 1), (1, "bool")])) == []


# ---------------------------------------------------------------------------
# Storage-level randomized differential
# ---------------------------------------------------------------------------


def _semantic_key(fact):
    """values_equal-classes of a fact (bools tagged, numerics unified)."""
    out = []
    for v in fact:
        if isinstance(v, bool):
            out.append(("B", v))
        elif isinstance(v, (int, float)):
            out.append(("N", float(v)))
        else:
            out.append(v)
    return tuple(out)


class TestRandomizedStorageDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_interleaved_mutations_and_probes(self, seed):
        rng = random.Random(9000 + seed)
        tup = Relation("r")
        col = ColumnarRelation("r", interner=ValueInterner())
        vals = ["a", "b", "c", 1, 2, True, False, 0, 1.0, 2.5]
        for op in range(300):
            action = rng.random()
            fact = (rng.choice(vals), rng.choice(vals))
            if action < 0.5:
                assert tup.add(fact) == col.add(fact), (seed, op, fact)
            elif action < 0.68:
                assert tup.remove(fact) == col.remove(fact), (seed, op, fact)
            elif action < 0.72:
                col.compact()
            else:
                if action < 0.85:
                    positions, key = (rng.randrange(2),), (rng.choice(vals),)
                    positions = (positions[0],)
                    a = tup.lookup_key(positions, key)
                    b = col.lookup_key(positions, key)
                elif action < 0.95:
                    key = (rng.choice(vals), rng.choice(vals))
                    a = tup.lookup_key((0, 1), key)
                    b = col.lookup_key((0, 1), key)
                else:
                    a, b = tup, col
                left = sorted(map(repr, map(_semantic_key, a)))
                right = sorted(map(repr, map(_semantic_key, b)))
                assert left == right, (seed, op, fact)
        assert sorted(map(repr, map(_semantic_key, tup))) == sorted(
            map(repr, map(_semantic_key, col))
        )


# ---------------------------------------------------------------------------
# Engine battery: columnar vs tuple backend, bit-identical facts + stats
# ---------------------------------------------------------------------------


def columnar_differential(text, predicates, semi_naive=True, **inputs):
    """Columnar batch execution vs the tuple-at-a-time oracle."""
    program = parse_program(text)
    fast = Engine(semi_naive=semi_naive, columnar=True).run(program, inputs=inputs)
    oracle = Engine(semi_naive=semi_naive, columnar=False).run(program, inputs=inputs)
    assert fast.database.columnar
    assert not oracle.database.columnar
    for predicate in predicates:
        assert _canon(fast.facts(predicate)) == _canon(
            oracle.facts(predicate)
        ), predicate
    assert fast.stats.iterations == oracle.stats.iterations
    assert fast.stats.rule_firings == oracle.stats.rule_firings
    assert fast.stats.facts_derived == oracle.stats.facts_derived
    assert fast.stats.nulls_created == oracle.stats.nulls_created
    assert fast.stats.strata == oracle.stats.strata
    return fast, oracle


class TestColumnarBattery:
    """The 52-program randomized battery, columnar vs tuple backend."""

    @pytest.mark.parametrize("seed", range(20))
    def test_negation_free_recursion(self, seed):
        text, predicates, inputs = _recursion_case(random.Random(1000 + seed))
        columnar_differential(text, predicates, semi_naive=bool(seed % 2), **inputs)

    @pytest.mark.parametrize("seed", range(16))
    def test_monotonic_aggregates(self, seed):
        text, predicates, inputs = _aggregate_case(random.Random(2000 + seed))
        columnar_differential(text, predicates, **inputs)

    @pytest.mark.parametrize("seed", range(16))
    def test_existential_skolem(self, seed):
        text, predicates, inputs = _existential_case(random.Random(3000 + seed))
        columnar_differential(text, predicates, **inputs)

    def test_bool_int_distinction_columnar(self):
        # The storage-semantics fixture: p dedups (True,)/(1,) at ==
        # level, the join must still distinguish True from 1.
        columnar_differential(
            "p(X), q(X) -> r(X).",
            ["r"],
            p=[(True,), (1,), (0,)],
            q=[(1,), (False,)],
        )

    def test_stratified_negation_columnar(self):
        columnar_differential(
            "e(X, Y) -> reach(Y).\nnode(X), not reach(X) -> root(X).",
            ["root", "reach"],
            e=[("a", "b"), ("b", "c"), ("d", "c")],
            node=[("a",), ("b",), ("c",), ("d",)],
        )

    def test_vectorized_negation_multi_key(self):
        # Two bound positions in the negated atom: the anti-join folds
        # an FNV key and must exact-verify candidates.
        columnar_differential(
            "a(X, Y), b(Y, Z), not c(X, Z) -> d(X, Z).",
            ["d"],
            a=[(1, 2), (2, 3), (3, 4), (4, 4)],
            b=[(2, 5), (3, 6), (4, 7)],
            c=[(1, 5), (3, 3), (2, 99)],
        )

    def test_vectorized_negation_constant_and_wildcard(self):
        columnar_differential(
            "a(X, Y), not c(X, 5, _) -> d(X, Y).",
            ["d"],
            a=[(1, 2), (2, 3), (3, 4)],
            c=[(1, 5, "w"), (2, 6, "w"), (9, 5, "w")],
        )

    def test_vectorized_negation_bound_var_repeat(self):
        # The same bound variable at two positions of the negated atom
        # (safety rejects *free* repeats, so both slots join the key).
        columnar_differential(
            "a(X, Y), not c(X, X) -> d(X, Y).",
            ["d"],
            a=[(1, 2), (2, 3), (3, 4), (1.0, 9)],
            c=[(1, 1), (2, 3), (3, 3.0)],
        )

    def test_vectorized_negation_mixed_types_and_nan(self):
        nan = float("nan")
        columnar_differential(
            "p(X), not q(X) -> r(X).",
            ["r"],
            p=[(True,), (1,), (0,), (nan,), ("s",)],
            q=[(1.0,), (False,), (nan,)],
        )


# ---------------------------------------------------------------------------
# Incremental chained-delta battery in columnar mode
# ---------------------------------------------------------------------------


def columnar_delta_differential(text, predicates, inputs, rng, kind):
    """Chained deltas: columnar retained state vs tuple retained state vs
    a from-scratch tuple oracle, after each of two updates."""
    program = parse_program(text)
    col_engine = Engine(columnar=True)
    tup_engine = Engine(columnar=False)
    col = col_engine.run(program, inputs=inputs, retain_state=True)
    tup = tup_engine.run(program, inputs=inputs, retain_state=True)
    templates = {
        p: sorted(facts, key=repr)[0] for p, facts in inputs.items() if facts
    }
    current = inputs
    for round_no in range(2):
        added, removed = _mutation(rng, current, templates, kind)
        col_engine.apply_delta(col, added=added, removed=removed)
        tup_engine.apply_delta(tup, added=added, removed=removed)
        current = _mutated_inputs(current, added, removed)
        oracle = Engine(use_plans=False, columnar=False).run(
            program, inputs=current
        )
        for predicate in predicates:
            canon_col = _canon(col.facts(predicate))
            assert canon_col == _canon(tup.facts(predicate)), (
                f"columnar vs tuple delta mismatch on {predicate} "
                f"(round {round_no})"
            )
            assert canon_col == _canon(oracle.facts(predicate)), (
                f"columnar delta vs oracle mismatch on {predicate} "
                f"(round {round_no})"
            )


KINDS = ("insert", "delete", "mixed")


class TestColumnarIncrementalBattery:
    @pytest.mark.parametrize("seed", range(9))
    def test_recursion_deltas(self, seed):
        rng = random.Random(5000 + seed)
        text, predicates, inputs = _recursion_case(rng)
        columnar_delta_differential(text, predicates, inputs, rng, KINDS[seed % 3])

    @pytest.mark.parametrize("seed", range(6))
    def test_aggregate_deltas(self, seed):
        rng = random.Random(6000 + seed)
        text, predicates, inputs = _aggregate_case(rng)
        columnar_delta_differential(text, predicates, inputs, rng, KINDS[seed % 3])

    @pytest.mark.parametrize("seed", range(6))
    def test_existential_deltas(self, seed):
        rng = random.Random(7000 + seed)
        text, predicates, inputs = _existential_case(rng)
        columnar_delta_differential(text, predicates, inputs, rng, KINDS[seed % 3])


# ---------------------------------------------------------------------------
# Parallel battery in columnar mode
# ---------------------------------------------------------------------------


class TestColumnarParallelBattery:
    @pytest.mark.parametrize("seed", [0, 3, 7, 11])
    def test_recursion_workers2(self, seed, monkeypatch):
        import repro.vadalog.parallel as parallel

        monkeypatch.setattr(parallel, "DEFAULT_MIN_PARTITION", 1)
        text, predicates, inputs = _recursion_case(random.Random(1000 + seed))
        program = parse_program(text)
        par = Engine(workers=2, columnar=True).run(program, inputs=inputs)
        ser = Engine(columnar=True).run(program, inputs=inputs)
        oracle = Engine(columnar=False).run(program, inputs=inputs)
        for predicate in predicates:
            canon_par = _canon(par.facts(predicate))
            assert canon_par == _canon(ser.facts(predicate)), predicate
            assert canon_par == _canon(oracle.facts(predicate)), predicate
        assert par.stats.rule_firings == oracle.stats.rule_firings
        assert par.stats.facts_derived == oracle.stats.facts_derived

    @pytest.mark.parametrize("seed", [2, 9])
    def test_aggregates_workers2(self, seed, monkeypatch):
        import repro.vadalog.parallel as parallel

        monkeypatch.setattr(parallel, "DEFAULT_MIN_PARTITION", 1)
        text, predicates, inputs = _aggregate_case(random.Random(2000 + seed))
        program = parse_program(text)
        par = Engine(workers=2, columnar=True).run(program, inputs=inputs)
        oracle = Engine(columnar=False).run(program, inputs=inputs)
        for predicate in predicates:
            assert _canon(par.facts(predicate)) == _canon(
                oracle.facts(predicate)
            ), predicate


# ---------------------------------------------------------------------------
# Backend conversion + spill-to-disk
# ---------------------------------------------------------------------------


class TestBackendConversion:
    def test_round_trip_preserves_facts(self):
        db = Database()
        db.add_all("e", [("a", "b"), ("b", "c"), (1, 2.5)])
        db.add_all("p", [(True,), (0,)])
        col = db.to_backend(True)
        back = col.to_backend(False)
        for predicate in ("e", "p"):
            assert db.facts(predicate) == col.facts(predicate)
            assert db.facts(predicate) == back.facts(predicate)

    def test_engine_converts_mismatched_database(self):
        db = Database()  # tuple backend
        db.add_all("e", [("a", "b"), ("b", "c")])
        program = parse_program("e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z).")
        result = Engine(columnar=True).run(program, database=db)
        assert result.database.columnar
        assert not db.columnar  # the input is untouched
        assert ("a", "c") in result.facts("tc")


class TestSpill:
    def test_spill_and_rehydrate_round_trip(self):
        db = Database(columnar=True)
        facts = [(f"n{i}", f"n{i + 1}", float(i)) for i in range(500)]
        db.add_all("e", facts)
        spilled = db.spill_over_budget(0)
        assert spilled == ["e"]
        assert db.total_resident_facts() == 0
        assert db.count("e") == 500  # len() needs no rehydration
        # Any access rehydrates transparently.
        assert sorted(db.relation("e").lookup_key((0,), ("n7",))) == [
            ("n7", "n8", 7.0)
        ]
        assert db.total_resident_facts() == 500
        db.close()

    def test_keep_set_is_never_spilled(self):
        db = Database(columnar=True)
        db.add_all("big", [(i,) for i in range(100)])
        db.add_all("hot", [(i,) for i in range(50)])
        spilled = db.spill_over_budget(0, keep=["hot"])
        assert spilled == ["big"]
        assert not db.relation("hot").spilled
        db.close()

    def test_budget_spills_largest_first_until_under(self):
        db = Database(columnar=True)
        db.add_all("a", [(i,) for i in range(100)])
        db.add_all("b", [(i,) for i in range(10)])
        spilled = db.spill_over_budget(50)
        assert spilled == ["a"]
        assert db.total_resident_facts() == 10
        db.close()

    def test_tuple_backend_is_a_noop(self):
        db = Database()
        db.add_all("a", [(i,) for i in range(100)])
        assert db.spill_over_budget(0) == []

    def test_governor_driven_spill_during_run(self):
        edges = [(f"n{i}", f"n{(i * 7 + 3) % 40}") for i in range(40)]
        text = (
            "e(X, Y) -> tc(X, Y).\n"
            "tc(X, Y), e(Y, Z) -> tc(X, Z).\n"
            "tc(X, Y) -> reach(Y).\n"
        )
        program = parse_program(text)
        tracer = RecordingTracer()
        governor = ResourceGovernor(max_resident_facts=10)
        spilling = Engine(governor=governor, tracer=tracer).run(
            program, inputs={"e": edges}
        )
        plain = Engine(columnar=False).run(program, inputs={"e": edges})
        assert spilling.status == "fixpoint"
        for predicate in ("tc", "reach"):
            assert spilling.facts(predicate) == plain.facts(predicate)
        events = [
            e for e in tracer.events if e.get("name") == "engine.spilled"
        ]
        assert events, "expected at least one spill event"
        spilling.database.close()

    def test_spill_store_page_round_trip(self):
        store = SpillStore()
        cols = [list(range(20000)), [i * 3 for i in range(20000)]]
        store.write("r", 2, cols)
        assert [list(col) for col in store.read("r", 2)] == cols
        store.close()
