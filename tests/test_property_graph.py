"""Property-graph substrate tests."""

import pytest

from repro.errors import GraphError
from repro.graph.property_graph import PropertyGraph


@pytest.fixture()
def graph():
    g = PropertyGraph("g")
    g.add_node("a", "Person", name="Ada")
    g.add_node("b", "Person", name="Bob")
    g.add_node("c", "Company", name="ACME")
    g.add_edge("a", "c", "OWNS", edge_id="e1", percentage=0.6)
    g.add_edge("b", "c", "OWNS", edge_id="e2", percentage=0.4)
    g.add_edge("a", "b", "KNOWS", edge_id="e3")
    return g


class TestConstruction:
    def test_counts(self, graph):
        assert graph.node_count == 3
        assert graph.edge_count == 3
        assert len(graph) == 3

    def test_auto_ids_are_fresh(self):
        g = PropertyGraph()
        first = g.add_node()
        second = g.add_node()
        assert first.id != second.id

    def test_duplicate_node_rejected(self, graph):
        with pytest.raises(GraphError):
            graph.add_node("a")

    def test_duplicate_edge_id_rejected(self, graph):
        with pytest.raises(GraphError):
            graph.add_edge("a", "b", edge_id="e1")

    def test_edge_requires_existing_endpoints(self, graph):
        with pytest.raises(GraphError):
            graph.add_edge("a", "missing")
        with pytest.raises(GraphError):
            graph.add_edge("missing", "a")


class TestAccess:
    def test_labels(self, graph):
        # Sorted tuples, not sets: label iteration order is part of the
        # deterministic-flush contract (PR 9's sorted-label rule).
        assert graph.node_labels() == ("Company", "Person")
        assert graph.edge_labels() == ("KNOWS", "OWNS")

    def test_labels_deterministic_after_removal(self, graph):
        graph.remove_node("c")
        assert graph.node_labels() == ("Person",)
        assert graph.edge_labels() == ("KNOWS",)

    def test_nodes_by_label(self, graph):
        assert {n.id for n in graph.nodes("Person")} == {"a", "b"}
        assert {n.id for n in graph.nodes()} == {"a", "b", "c"}

    def test_edges_by_label(self, graph):
        assert {e.id for e in graph.edges("OWNS")} == {"e1", "e2"}

    def test_adjacency(self, graph):
        assert {e.target for e in graph.out_edges("a")} == {"c", "b"}
        assert {e.source for e in graph.in_edges("c")} == {"a", "b"}
        assert {n.id for n in graph.successors("a", "OWNS")} == {"c"}
        assert {n.id for n in graph.predecessors("c")} == {"a", "b"}

    def test_degrees(self, graph):
        assert graph.out_degree("a") == 2
        assert graph.in_degree("c") == 2
        assert graph.in_degree("a") == 0

    def test_property_access(self, graph):
        assert graph.node("a")["name"] == "Ada"
        assert graph.node("a").get("missing", 1) == 1
        assert graph.edge("e1")["percentage"] == 0.6

    def test_unknown_node_raises(self, graph):
        with pytest.raises(GraphError):
            graph.node("zzz")

    def test_find_nodes_and_edges(self, graph):
        assert [n.id for n in graph.find_nodes("Person", name="Ada")] == ["a"]
        found = list(graph.find_edges("OWNS", source="a"))
        assert [e.id for e in found] == ["e1"]
        assert [e.id for e in graph.find_edges("OWNS", target="c", percentage=0.4)] == ["e2"]


class TestMutation:
    def test_set_properties(self, graph):
        graph.set_node_property("a", "age", 36)
        graph.set_edge_property("e1", "percentage", 0.7)
        assert graph.node("a")["age"] == 36
        assert graph.edge("e1")["percentage"] == 0.7

    def test_remove_edge_updates_indexes(self, graph):
        graph.remove_edge("e1")
        assert graph.edge_count == 2
        assert graph.out_degree("a") == 1
        assert "e1" not in {e.id for e in graph.edges("OWNS")}

    def test_remove_node_cascades(self, graph):
        graph.remove_node("c")
        assert graph.node_count == 2
        assert graph.edge_count == 1  # only KNOWS survives
        assert not graph.has_edge("e1")


class TestInterop:
    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.set_node_property("a", "name", "Eve")
        assert graph.node("a")["name"] == "Ada"
        assert clone.node_count == graph.node_count

    def test_networkx_round_trip(self, graph):
        nxg = graph.to_networkx()
        assert nxg.number_of_nodes() == 3
        assert nxg.number_of_edges() == 3
        back = PropertyGraph.from_networkx(nxg)
        assert back.node_count == 3
        assert back.edge_count == 3
        assert back.node("a").label == "Person"
        assert next(iter(back.edges("KNOWS"))).source == "a"
