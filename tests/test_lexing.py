"""Tokenizer tests: the lexical ground shared by Vadalog and MetaLog."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParseError
from repro.lexing import Token, TokenStream, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text) if t.kind != "EOF"]


class TestBasicTokens:
    def test_identifiers(self):
        assert values("abc Abc _x a1_b") == ["abc", "Abc", "_x", "a1_b"]

    def test_numbers_int_and_float(self):
        assert values("12 3.5 0.25") == [12, 3.5, 0.25]

    def test_number_followed_by_rule_dot(self):
        # "p(1)." must not swallow the terminator into the number.
        assert values("p(1).") == ["p", "(", 1, ")", "."]

    def test_float_vs_path_concat(self):
        # "0.5" is one float; "] . [" keeps the dot as punctuation.
        assert values("0.5 ] . [") == [0.5, "]", ".", "["]

    def test_strings_with_escapes(self):
        assert values(r'"a\"b" "line\nbreak"') == ['a"b', "line\nbreak"]

    def test_multichar_punctuation(self):
        assert values("-> == != <= >= <-") == ["->", "==", "!=", "<=", ">=", "<-"]

    def test_comments_are_skipped(self):
        assert values("a % comment\nb // another\nc") == ["a", "b", "c"]

    def test_positions_are_tracked(self):
        tokens = tokenize("a\n  bb")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind == "EOF"
        assert tokenize("x")[-1].kind == "EOF"


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"unterminated')

    def test_string_with_newline(self):
        with pytest.raises(ParseError):
            tokenize('"broken\nstring"')

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("a \x01 b")


class TestTokenStream:
    def test_accept_and_expect(self):
        stream = TokenStream.from_text("a (")
        assert stream.accept("IDENT").value == "a"
        assert stream.expect_punct("(")
        assert stream.at_eof()

    def test_expect_failure_mentions_position(self):
        stream = TokenStream.from_text("a")
        with pytest.raises(ParseError) as excinfo:
            stream.expect_punct("(")
        assert "line 1" in str(excinfo.value)

    def test_backtracking(self):
        stream = TokenStream.from_text("a b c")
        checkpoint = stream.save()
        stream.advance()
        stream.advance()
        stream.restore(checkpoint)
        assert stream.current.value == "a"

    def test_peek_does_not_advance(self):
        stream = TokenStream.from_text("a b")
        assert stream.peek().value == "b"
        assert stream.current.value == "a"


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=60))
def test_tokenizer_terminates_or_raises_cleanly(text):
    """Any printable-ASCII input either tokenizes or raises ParseError."""
    try:
        tokens = tokenize(text)
    except ParseError:
        return
    assert tokens[-1].kind == "EOF"
    columns = [(t.line, t.column) for t in tokens]
    assert columns == sorted(columns)
