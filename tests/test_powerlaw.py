"""Power-law fitting tests (the scale-free check of Section 2.1)."""

import math
import random

import pytest

from repro.graph.powerlaw import fit_power_law


def zipf_sample(rng, alpha, size, k_max=10_000):
    """Inverse-CDF sampling from a truncated discrete power law."""
    weights = [k ** -alpha for k in range(1, k_max + 1)]
    total = sum(weights)
    out = []
    for _ in range(size):
        u = rng.random() * total
        acc = 0.0
        for k, w in enumerate(weights, start=1):
            acc += w
            if acc >= u:
                out.append(k)
                break
    return out


class TestFit:
    def test_recovers_exponent(self):
        rng = random.Random(1234)
        degrees = zipf_sample(rng, alpha=2.5, size=3000)
        fit = fit_power_law(degrees, k_min=1)
        assert 2.2 < fit.alpha < 2.8

    def test_power_law_beats_exponential_on_zipf(self):
        rng = random.Random(99)
        degrees = zipf_sample(rng, alpha=2.2, size=2000)
        fit = fit_power_law(degrees)
        assert fit.is_plausibly_scale_free

    def test_exponential_data_is_not_scale_free(self):
        rng = random.Random(7)
        degrees = [max(1, int(rng.expovariate(0.4))) for _ in range(3000)]
        fit = fit_power_law(degrees, k_min=1)
        assert not fit.is_plausibly_scale_free

    def test_kmin_scan_picks_reasonable_cutoff(self):
        rng = random.Random(5)
        # Power law only above k=4: uniform noise below.
        tail = zipf_sample(rng, alpha=2.4, size=1500)
        noise = [rng.randint(1, 4) for _ in range(1500)]
        fit = fit_power_law(tail + noise)
        assert fit.k_min >= 1
        assert fit.n_tail > 100

    def test_degenerate_input_raises(self):
        with pytest.raises(ValueError):
            fit_power_law([0, 0, 0])

    def test_all_equal_degrees(self):
        fit = fit_power_law([3] * 100, k_min=1)
        assert math.isfinite(fit.alpha)
