"""The query service: snapshot semantics, endpoint contracts, the result
cache, resource budgets, the HTTP layer, and the read/write concurrency
battery (many reader threads racing interleaved delta applications, with
every response checked against its epoch's exact expected answers)."""

import json
import threading
import time
import urllib.request

import pytest

from repro.serve import (
    KGModelServer,
    ResultCache,
    ServeMetrics,
    ServeState,
    ServiceHandlers,
    build_server,
)
from repro.vadalog import Engine, parse_program

TC = "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."

CONTROL = (
    "company(X) -> controls(X, X).\n"
    "controls(X, Z), own(Z, Y, W), V = msum(W, <Z>), V > 0.5"
    " -> controls(X, Y)."
)


def make_state(**kwargs):
    return ServeState(
        TC,
        inputs={"e": [("a", "b"), ("b", "c"), ("x", "y")]},
        check_wardedness=False,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# ServeState: materialization, snapshots, isolation
# ---------------------------------------------------------------------------


class TestServeState:
    def test_base_materialization_is_epoch_zero(self):
        state = make_state()
        snap = state.snapshot
        assert snap.epoch == 0
        assert snap.facts["tc"] == {
            ("a", "b"), ("a", "c"), ("b", "c"), ("x", "y")
        }
        assert set(snap.edb) == {"e"}
        assert snap.count("e") == 3
        assert snap.arity("tc") == 2

    def test_delta_publishes_next_epoch(self):
        state = make_state()
        delta = state.apply_delta(added={"e": [("c", "d")]})
        snap = state.snapshot
        assert snap.epoch == 1
        assert ("a", "d") in snap.facts["tc"]
        assert ("c", "d") in delta.added.get("tc", set())

    def test_snapshot_isolation_across_deltas(self):
        # The frozen snapshot must not alias any structure the writer
        # mutates: an applied delta leaves old epochs byte-identical.
        state = make_state()
        old = state.snapshot
        old_tc = old.facts["tc"]
        old_edb = old.edb["e"]
        state.apply_delta(added={"e": [("c", "d")]}, removed={"e": [("x", "y")]})
        assert old.epoch == 0
        assert old.facts["tc"] == old_tc
        assert old.facts["tc"] == {
            ("a", "b"), ("a", "c"), ("b", "c"), ("x", "y")
        }
        assert old.edb["e"] == old_edb
        new = state.snapshot
        assert new.epoch == 1
        assert ("x", "y") not in new.facts["tc"]

    def test_removal_retracts_derived_facts(self):
        state = make_state()
        state.apply_delta(removed={"e": [("b", "c")]})
        assert state.snapshot.facts["tc"] == {("a", "b"), ("x", "y")}

    def test_subscribers_see_every_epoch(self):
        state = make_state()
        seen = []
        state.subscribe(lambda snap: seen.append(snap.epoch))
        state.apply_delta(added={"e": [("c", "d")]})
        state.apply_delta(added={"e": [("d", "f")]})
        assert seen == [1, 2]

    def test_epoch_gauge_exported(self):
        state = make_state()
        state.apply_delta(added={"e": [("c", "d")]})
        metrics = state.metrics.snapshot()
        assert metrics["counters"]["serve.epoch"] == 1
        assert metrics["counters"]["serve.deltas"] == 1

    def test_program_text_accepted(self):
        state = ServeState(
            CONTROL,
            inputs={
                "company": [("c1",), ("c2",)],
                "own": [("c1", "c2", 0.6)],
            },
        )
        assert ("c1", "c2") in state.snapshot.facts["controls"]


# ---------------------------------------------------------------------------
# ResultCache
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_hit_miss_accounting(self):
        cache = ResultCache(capacity=4)
        assert cache.get(0, "k") is None
        cache.put(0, "k", "v")
        assert cache.get(0, "k") == "v"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put(0, "a", 1)
        cache.put(0, "b", 2)
        cache.get(0, "a")  # refresh a
        cache.put(0, "c", 3)  # evicts b
        assert cache.get(0, "a") == 1
        assert cache.get(0, "b") is None
        assert cache.get(0, "c") == 3

    def test_epoch_keys_never_collide(self):
        cache = ResultCache()
        cache.put(0, "k", "old")
        cache.put(1, "k", "new")
        assert cache.get(0, "k") == "old"
        assert cache.get(1, "k") == "new"

    def test_on_epoch_drops_superseded(self):
        cache = ResultCache()
        cache.put(0, "a", 1)
        cache.put(0, "b", 2)
        cache.put(1, "c", 3)

        class Snap:
            epoch = 1

        cache.on_epoch(Snap())
        assert len(cache) == 1
        assert cache.stats()["invalidations"] == 2

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put(0, "k", "v")
        assert cache.get(0, "k") is None


# ---------------------------------------------------------------------------
# Handlers: endpoint contracts (driven without sockets)
# ---------------------------------------------------------------------------


def get(handlers, path, **params):
    return handlers.handle("GET", path, {k: str(v) for k, v in params.items()})


class TestHandlers:
    def test_healthz(self):
        handlers = ServiceHandlers(make_state())
        status, payload = get(handlers, "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "epoch": 0}

    def test_schema_marks_derived_predicates(self):
        handlers = ServiceHandlers(make_state())
        status, payload = get(handlers, "/schema")
        assert status == 200
        by_name = {p["name"]: p for p in payload["predicates"]}
        assert by_name["tc"]["derived"] and not by_name["e"]["derived"]
        assert by_name["tc"]["arity"] == 2
        assert payload["total_facts"] == 7

    def test_query_snapshot_mode(self):
        handlers = ServiceHandlers(make_state())
        status, payload = get(handlers, "/query", q='tc("a", Y)?')
        assert status == 200
        assert payload["answers"] == [["a", "b"], ["a", "c"]]
        assert payload["epoch"] == 0
        assert not payload["cached"]

    def test_engine_modes_agree_with_direct_evaluation(self):
        inputs = {"e": [("a", "b"), ("b", "c"), ("x", "y")]}
        direct = Engine().run(parse_program(TC), inputs=inputs)
        expected = sorted(
            [list(f) for f in direct.facts("tc") if f[0] == "a"]
        )
        handlers = ServiceHandlers(make_state())
        for mode in ("snapshot", "magic", "full"):
            status, payload = get(
                handlers, "/query", q='tc("a", Y)?', engine=mode
            )
            assert status == 200
            assert sorted(payload["answers"]) == expected, mode
        _, magic = get(handlers, "/query", q='tc("a", Y)?', engine="magic")
        assert magic["engine_stats"]["facts_derived"] > 0

    def test_query_cache_round_trip_and_invalidation(self):
        handlers = ServiceHandlers(make_state())
        _, first = get(handlers, "/query", q='tc("a", Y)?')
        _, second = get(handlers, "/query", q='tc("a", Y)?')
        assert not first["cached"] and second["cached"]
        assert second["answers"] == first["answers"]
        # A delta bumps the epoch; the same request misses and recomputes.
        handlers.handle("POST", "/delta", {}, {"added": {"e": [["c", "d"]]}})
        status, third = get(handlers, "/query", q='tc("a", Y)?')
        assert not third["cached"]
        assert third["epoch"] == 1
        assert ["a", "d"] in third["answers"]
        assert handlers.cache.stats()["invalidations"] >= 1

    def test_query_limit(self):
        handlers = ServiceHandlers(make_state())
        status, payload = get(handlers, "/query", q="tc(X, Y)?", limit=2)
        assert status == 200
        assert len(payload["answers"]) == 2
        assert payload["limited"]
        assert payload["answer_count"] == 4

    def test_query_budget_exceeded_is_503_with_partial(self):
        # max_facts=1 on the full chase trips the graceful governor.
        handlers = ServiceHandlers(make_state())
        status, payload = get(
            handlers, "/query", q="tc(X, Y)?", engine="full", max_facts=1
        )
        assert status == 503
        assert payload["status"] != "fixpoint"
        assert "partial" in payload["error"]
        assert payload["engine_stats"]["facts_derived"] >= 1

    def test_query_client_errors(self):
        handlers = ServiceHandlers(make_state())
        assert get(handlers, "/query")[0] == 400
        assert get(handlers, "/query", q="not a query!!")[0] == 400
        assert get(handlers, "/query", q="tc(X, Y)?", engine="warp")[0] == 400
        assert get(handlers, "/query", q="tc(X, Y)?", limit="many")[0] == 400
        assert get(handlers, "/nope")[0] == 404
        assert handlers.handle("PUT", "/query", {})[0] == 405

    def test_neighborhood(self):
        handlers = ServiceHandlers(make_state())
        status, payload = get(
            handlers, "/neighborhood", node="a", predicate="tc", depth=1
        )
        assert status == 200
        assert payload["layers"][0] == ["a"]
        assert sorted(payload["layers"][1]) == ["b", "c"]
        status, payload = get(
            handlers, "/neighborhood", node="c", predicate="e",
            direction="in",
        )
        assert status == 200
        assert payload["layers"][1] == ["b"]

    def test_neighborhood_truncates_to_503(self):
        handlers = ServiceHandlers(make_state())
        status, payload = get(
            handlers, "/neighborhood", node="a", predicate="tc",
            depth=2, max_visited=1,
        )
        assert status == 503
        assert payload["truncated"]

    def test_path(self):
        handlers = ServiceHandlers(make_state())
        status, payload = get(
            handlers, "/path", predicate="e", **{"from": "a", "to": "c"}
        )
        assert status == 200
        assert payload["path"] == ["a", "b", "c"]
        assert payload["length"] == 2
        status, payload = get(
            handlers, "/path", predicate="e", **{"from": "a", "to": "x"}
        )
        assert status == 200
        assert payload["path"] is None

    def test_delta_rejects_derived_and_readonly(self):
        handlers = ServiceHandlers(make_state())
        status, payload = handlers.handle(
            "POST", "/delta", {}, {"added": {"tc": [["a", "z"]]}}
        )
        assert status == 400
        assert "derived" in payload["error"]
        assert handlers.handle("POST", "/delta", {}, {})[0] == 400
        readonly = ServiceHandlers(make_state(), readonly=True)
        status, _ = readonly.handle(
            "POST", "/delta", {}, {"added": {"e": [["c", "d"]]}}
        )
        assert status == 403

    def test_delta_reports_strata_classification(self):
        handlers = ServiceHandlers(make_state())
        status, payload = handlers.handle(
            "POST", "/delta", {}, {"added": {"e": [["c", "d"]]}}
        )
        assert status == 200
        assert payload["epoch"] == 1
        # The report covers the extensional delta and its derived wake:
        # c->d extends three closure paths (a->d, b->d, c->d).
        assert payload["added"] == {"e": 1, "tc": 3}
        assert sum(payload["strata"].values()) >= 1

    def test_stats_exposes_cache_and_metrics(self):
        handlers = ServiceHandlers(make_state())
        get(handlers, "/query", q='tc("a", Y)?')
        get(handlers, "/query", q='tc("a", Y)?')
        status, payload = get(handlers, "/stats")
        assert status == 200
        assert payload["cache"]["hits"] == 1
        assert payload["cache"]["hit_rate"] == 0.5
        counters = payload["metrics"]["counters"]
        assert counters["serve.requests.query"] == 2
        assert counters["serve.cache.hits"] == 1
        assert counters["serve.status.200"] >= 2

    def test_existential_nulls_encode_as_tagged_objects(self):
        state = ServeState(
            "person(X) -> hasid(X, Y).",
            inputs={"person": [("p1",)]},
        )
        handlers = ServiceHandlers(state)
        status, payload = get(handlers, "/query", q='hasid("p1", Y)?')
        assert status == 200
        [[_, null]] = payload["answers"]
        assert isinstance(null, dict) and "$null" in null
        json.dumps(payload)  # the whole payload must be serializable


# ---------------------------------------------------------------------------
# HTTP layer: real sockets
# ---------------------------------------------------------------------------


def fetch(url, body=None):
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode() if body is not None else None,
        headers={"Content-Type": "application/json"} if body else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHTTPServer:
    def test_round_trip(self):
        handlers = ServiceHandlers(make_state())
        with build_server(handlers) as server:
            status, payload = fetch(f"{server.url}/healthz")
            assert (status, payload["status"]) == (200, "ok")
            status, payload = fetch(
                f"{server.url}/query?q=tc(%22a%22,%20Y)?&engine=magic"
            )
            assert status == 200
            assert payload["answers"] == [["a", "b"], ["a", "c"]]
            status, payload = fetch(
                f"{server.url}/delta", {"added": {"e": [["c", "d"]]}}
            )
            assert (status, payload["epoch"]) == (200, 1)
            status, payload = fetch(f"{server.url}/query?q=tc(%22a%22,%20Y)?")
            assert ["a", "d"] in payload["answers"]

    def test_error_statuses_over_http(self):
        handlers = ServiceHandlers(make_state())
        with build_server(handlers) as server:
            assert fetch(f"{server.url}/query")[0] == 400
            assert fetch(f"{server.url}/nope")[0] == 404


# ---------------------------------------------------------------------------
# The concurrency battery: ≥8 readers racing ≥20 interleaved deltas
# ---------------------------------------------------------------------------


class TestConcurrencyBattery:
    READERS = 10
    DELTAS = 24
    BASE = 4  # chain a0 -> a1 -> ... -> a4 at epoch 0

    def expected_chain(self, epoch):
        """At epoch e the chain reaches a{BASE+e}: tc('a0', Y) answers."""
        return [[f"a{i}"] for i in range(1, self.BASE + epoch + 1)]

    def test_readers_never_see_torn_epochs(self):
        edges = [(f"a{i}", f"a{i+1}") for i in range(self.BASE)]
        state = ServeState(TC, inputs={"e": edges}, check_wardedness=False)
        handlers = ServiceHandlers(state)
        expected = {
            epoch: sorted(
                [["a0", f"a{i}"] for i in range(1, self.BASE + epoch + 1)]
            )
            for epoch in range(self.DELTAS + 1)
        }

        stop = threading.Event()
        errors = []
        reads = [0] * self.READERS
        epochs_seen = [set() for _ in range(self.READERS)]
        modes = ("snapshot", "magic")

        def reader(index):
            mode = modes[index % len(modes)]
            while not stop.is_set() or reads[index] < 5:
                status, payload = handlers.handle(
                    "GET", "/query",
                    {"q": 'tc("a0", Y)?', "engine": mode},
                )
                if status != 200:
                    errors.append((index, "status", status, payload))
                    return
                epoch = payload["epoch"]
                if sorted(payload["answers"]) != expected.get(epoch):
                    errors.append((index, "torn", epoch, payload["answers"]))
                    return
                epochs_seen[index].add(epoch)
                reads[index] += 1

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in range(self.READERS)
        ]
        for thread in threads:
            thread.start()

        for i in range(self.DELTAS):
            status, payload = handlers.handle(
                "POST", "/delta", {},
                {"added": {"e": [[f"a{self.BASE + i}",
                                  f"a{self.BASE + i + 1}"]]}},
            )
            assert status == 200
            assert payload["epoch"] == i + 1
            time.sleep(0.002)  # let readers interleave mid-stream

        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == [], errors[:3]
        assert all(count >= 5 for count in reads)
        assert state.snapshot.epoch == self.DELTAS
        # Readers collectively observed writer progress, not one frozen
        # epoch: the union must span several distinct epochs.
        union = set().union(*epochs_seen)
        assert len(union) >= 3
        # And the cache stayed coherent: hits only ever served the
        # epoch embedded in their key.
        stats = handlers.cache.stats()
        assert stats["hits"] + stats["misses"] == sum(reads)

    def test_concurrent_mixed_endpoints_stay_consistent(self):
        edges = [(f"a{i}", f"a{i+1}") for i in range(self.BASE)]
        state = ServeState(TC, inputs={"e": edges}, check_wardedness=False)
        handlers = ServiceHandlers(state)
        stop = threading.Event()
        errors = []

        def prober():
            while not stop.is_set():
                status, schema = handlers.handle("GET", "/schema", {})
                if status != 200:
                    errors.append(("schema", status))
                    return
                # Within one response, counts are mutually consistent.
                total = sum(p["facts"] for p in schema["predicates"])
                if total != schema["total_facts"]:
                    errors.append(("schema-torn", schema))
                    return
                status, payload = handlers.handle(
                    "GET", "/neighborhood",
                    {"node": "a0", "predicate": "tc", "depth": "1"},
                )
                if status != 200:
                    errors.append(("neighborhood", status))
                    return

        threads = [
            threading.Thread(target=prober, daemon=True) for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for i in range(self.DELTAS):
            handlers.handle(
                "POST", "/delta", {},
                {"added": {"e": [[f"b{i}", f"b{i + 1}"]]}},
            )
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []


# ---------------------------------------------------------------------------
# Keep-alive connection reuse + /delta validation
# ---------------------------------------------------------------------------


class TestKeepAlive:
    def test_one_socket_serves_many_requests(self):
        import http.client

        handlers = ServiceHandlers(make_state())
        with build_server(handlers) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
                sock = conn.sock
                assert sock is not None
                # GETs and a POST ride the same TCP connection.
                for _ in range(3):
                    conn.request("GET", "/schema")
                    response = conn.getresponse()
                    assert response.status == 200
                    response.read()
                    assert conn.sock is sock
                body = json.dumps({"added": {"e": [["k1", "k2"]]}}).encode()
                conn.request(
                    "POST", "/delta", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["epoch"] == 1
                assert conn.sock is sock
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert json.loads(response.read())["epoch"] == 1
                assert conn.sock is sock
            finally:
                conn.close()

    def test_oversized_body_closes_the_connection(self, monkeypatch):
        import http.client

        from repro.serve import server as server_module

        monkeypatch.setattr(server_module, "_MAX_BODY", 64)
        handlers = ServiceHandlers(make_state())
        with build_server(handlers) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                # The unread oversized body cannot be allowed to sit in
                # the socket: it would be parsed as the next request.
                conn.request("POST", "/delta", body=b"x" * 1000)
                response = conn.getresponse()
                assert response.status == 413
                response.read()
                with pytest.raises(
                    (ConnectionError, http.client.HTTPException, OSError)
                ):
                    conn.request("GET", "/healthz")
                    conn.getresponse()
            finally:
                conn.close()

    def test_malformed_json_body_is_structured_400(self):
        import http.client

        handlers = ServiceHandlers(make_state())
        with build_server(handlers) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                conn.request("POST", "/delta", body=b"{not json")
                response = conn.getresponse()
                assert response.status == 400
                assert "JSON" in json.loads(response.read())["error"]
                # The connection survives a body-level 400.
                conn.request("GET", "/healthz")
                assert conn.getresponse().status == 200
            finally:
                conn.close()


class TestDeltaValidation:
    def post_delta(self, handlers, body):
        return handlers.handle("POST", "/delta", {}, body)

    def test_arity_mismatch_is_structured_400(self):
        handlers = ServiceHandlers(make_state())
        status, payload = self.post_delta(
            handlers, {"added": {"e": [["a", "b", "c"]]}}
        )
        assert status == 400
        assert payload["kind"] == "arity_mismatch"
        assert payload["predicate"] == "e"
        assert (payload["expected"], payload["got"]) == (2, 3)

    def test_arity_checked_on_removals_too(self):
        handlers = ServiceHandlers(make_state())
        status, payload = self.post_delta(
            handlers, {"removed": {"e": [["a"]]}}
        )
        assert status == 400
        assert payload["kind"] == "arity_mismatch"

    def test_new_predicate_sets_its_own_arity(self):
        handlers = ServiceHandlers(make_state())
        status, _ = self.post_delta(
            handlers, {"added": {"brand_new": [["a", "b", "c"]]}}
        )
        assert status == 200

    def test_derived_predicate_rejected_with_kind(self):
        handlers = ServiceHandlers(make_state())
        status, payload = self.post_delta(
            handlers, {"added": {"tc": [["a", "b"]]}}
        )
        assert status == 400
        assert payload["kind"] == "derived_predicate"
        assert payload["predicate"] == "tc"

    def test_non_scalar_values_rejected(self):
        handlers = ServiceHandlers(make_state())
        status, payload = self.post_delta(
            handlers, {"added": {"e": [["a", {"x": 1}]]}}
        )
        assert status == 400

    def test_rejected_delta_leaves_state_untouched(self):
        handlers = ServiceHandlers(make_state())
        before = handlers.state.snapshot.epoch
        self.post_delta(handlers, {"added": {"e": [["a", "b", "c"]]}})
        assert handlers.state.snapshot.epoch == before
