"""The paper's numbered examples, reproduced one by one.

Each test corresponds to a specific example or figure of the paper and
asserts the behaviour the text describes.
"""

import pytest

from repro.core import GraphDictionary
from repro.core.dictionary import dictionary_catalog
from repro.finkg.company_schema import company_super_schema
from repro.graph.property_graph import PropertyGraph
from repro.metalog import compile_metalog, parse_metalog, run_on_graph
from repro.vadalog import Engine, parse_program


class TestExample41And42CompanyControl:
    """Example 4.1 (MetaLog) and 4.2 (Vadalog) must agree."""

    INPUTS = {
        "company": [("x",), ("z1",), ("z2",), ("y",)],
        "own": [
            ("x", "z1", 0.6),
            ("x", "z2", 0.55),
            ("z1", "y", 0.3),
            ("z2", "y", 0.25),
        ],
    }

    def test_vadalog_version(self):
        result = Engine().run(
            parse_program(
                "company(X) -> controls(X, X).\n"
                "controls(X, Z), own(Z, Y, W), V = msum(W, <Z>), V > 0.5"
                " -> controls(X, Y)."
            ),
            inputs=self.INPUTS,
        )
        pairs = {p for p in result.facts("controls") if p[0] != p[1]}
        # x controls z1 and z2 directly; z1+z2 jointly own 55% of y.
        assert pairs == {("x", "z1"), ("x", "z2"), ("x", "y")}

    def test_metalog_version_agrees(self):
        graph = PropertyGraph()
        for company, in self.INPUTS["company"]:
            graph.add_node(company, "Business")
        for owner, company, pct in self.INPUTS["own"]:
            graph.add_edge(owner, company, "OWNS", percentage=pct)
        outcome = run_on_graph(
            parse_metalog(
                "(x: Business) -> exists c : (x)[c: CONTROLS](x).\n"
                "(x: Business)[:CONTROLS](z: Business)"
                "[:OWNS; percentage: w](y: Business),"
                " v = msum(w, <z>), v > 0.5 -> exists c : (x)[c: CONTROLS](y)."
            ),
            graph,
        )
        pairs = {
            (e.source, e.target) for e in outcome.graph.edges("CONTROLS")
            if e.source != e.target
        }
        assert pairs == {("x", "z1"), ("x", "z2"), ("x", "y")}


class TestExample43And44DescFrom:
    """Example 4.3: DESCFROM via Kleene star; 4.4: its Vadalog shape."""

    @pytest.fixture()
    def dictionary(self):
        schema = company_super_schema()
        dictionary = GraphDictionary()
        dictionary.store(schema)
        return dictionary

    PROGRAM = (
        "(x: SM_Node) ([:SM_CHILD]- . [:SM_PARENT])* (y: SM_Node)"
        " -> exists w : (x)[w: DESCFROM](y)."
    )

    def test_descfrom_over_company_dictionary(self, dictionary):
        outcome = run_on_graph(
            parse_metalog(self.PROGRAM), dictionary.graph,
            catalog=dictionary.catalog(),
        )
        schema = company_super_schema()
        oids = {n.type_name: n.oid for n in schema.nodes}
        pairs = {
            (e.source, e.target) for e in outcome.graph.edges("DESCFROM")
        }
        assert (oids["PhysicalPerson"], oids["Person"]) in pairs
        assert (oids["PublicListedCompany"], oids["Business"]) in pairs
        # At any level: transitive ancestors reached too.
        assert (oids["PublicListedCompany"], oids["Person"]) in pairs
        # Star means one-or-more (the paper's own translation): no
        # reflexive DESCFROM.
        assert (oids["Person"], oids["Person"]) not in pairs

    def test_compiled_shape_matches_example_44(self):
        compiled = compile_metalog(
            parse_metalog(self.PROGRAM), dictionary_catalog()
        )
        # One user rule + the two beta rules of Example 4.4.
        assert len(compiled.program.rules) == 3
        beta = next(iter(compiled.auxiliary_predicates))
        main = compiled.program.rules[0]
        assert any(a.predicate == beta for a in main.body_atoms())
        assert {a.predicate for a in main.body_atoms()} == {"SM_Node", beta}
        # The @input annotations of Example 4.4 are generated.
        inputs = compiled.program.input_predicates()
        assert {"SM_Node", "SM_CHILD", "SM_PARENT"} <= set(inputs)


class TestExample51TypeAccumulation:
    """Example 5.1: DeleteGeneralizations(1) accumulates ancestor types."""

    def test_types_accumulate_in_s_minus(self):
        from repro.ssst import SSST

        result = SSST().translate(company_super_schema(), "property-graph")
        graph = result.dictionary
        # Find the S- construct of PublicListedCompany and its types.
        target = None
        for node in graph.nodes("SM_Node"):
            if node.get("schemaOID") == "123-" and ":node:PublicListedCompany" in str(node.id):
                target = node
        assert target is not None
        type_names = {
            graph.node(e.target).get("name")
            for e in graph.out_edges(target.id, "SM_HAS_NODE_TYPE")
        }
        assert type_names == {
            "PublicListedCompany", "Business", "LegalPerson", "Person",
        }


class TestExample52EdgeInheritance:
    """Example 5.2: outgoing edges are inherited by children."""

    def test_inherited_edge_constructs_exist(self):
        from repro.ssst import SSST

        result = SSST().translate(company_super_schema(), "property-graph")
        graph = result.dictionary
        # HOLDS is declared Person -> Share; in S-, a copy from
        # PhysicalPerson must exist.
        copies = 0
        for edge_node in graph.nodes("SM_Edge"):
            if edge_node.get("schemaOID") != "123-":
                continue
            provenance = str(edge_node.id)
            if ":edge:HOLDS" in provenance and ":node:PhysicalPerson" in provenance:
                copies += 1
        assert copies == 1


class TestExample61InstanceCopyRule:
    """Example 6.1-flavoured: I_SM_Attributes round-trip with Skolem OIDs."""

    def test_instance_attribute_constructs(self, company_schema, tiny_instance):
        from repro.core import SuperInstance

        dictionary = GraphDictionary()
        dictionary.store(company_schema)
        SuperInstance.from_plain_graph(
            company_schema, tiny_instance, 234
        ).to_dictionary(dictionary.graph)
        attributes = [
            n for n in dictionary.graph.nodes("I_SM_Attribute")
            if n.get("instanceOID") == 234
        ]
        assert attributes
        # Every instance attribute references a schema attribute.
        for attribute in attributes:
            targets = [
                e.target
                for e in dictionary.graph.out_edges(attribute.id, "SM_REFERENCES")
            ]
            assert len(targets) == 1
            assert dictionary.graph.node(targets[0]).label == "SM_Attribute"


class TestExample62InputView:
    """Example 6.2: the Business input view feeds Sigma from I_SM_*."""

    def test_business_atoms_from_instance_constructs(
        self, company_schema, owns_instance
    ):
        from repro.ssst import IntensionalMaterializer

        report = IntensionalMaterializer().materialize(
            company_schema, owns_instance,
            parse_metalog(
                "(x: Business; businessName: n) -> exists c :"
                " (x)[c: CONTROLS](x)."
            ),
            instance_oid=55,
        )
        self_controls = {
            e.source for e in report.instance.data.edges("CONTROLS")
        }
        assert self_controls == {"B1", "B2", "B3"}
