"""Deployment backends: relational engine, DDL, graph store, triple store."""

import pytest

from repro.deploy import (
    CSVDataset,
    GraphStore,
    RelationalEngine,
    TripleStore,
    generate_cypher_constraints,
    generate_ddl,
    generate_label_documentation,
    generate_rdfs,
    load_graph_store,
    load_triple_store,
    parse_ddl,
)
from repro.errors import DeploymentError, IntegrityError
from repro.models.relational import Column, ForeignKey, RelationalSchema, Table
from repro.finkg.company_schema import company_super_schema
from repro.ssst import SSST


@pytest.fixture()
def mini_schema():
    schema = RelationalSchema("mini")
    schema.tables["person"] = Table("person", [
        Column("pid", "string", is_pk=True),
        Column("age", "int", optional=True),
        Column("name", "string"),
    ])
    schema.tables["pet"] = Table("pet", [
        Column("tag", "string", is_pk=True),
        Column("owner_pid", "string"),
    ])
    schema.foreign_keys.append(
        ForeignKey("fk_owner", "pet", ["owner_pid"], "person", ["pid"])
    )
    return schema


@pytest.fixture()
def engine(mini_schema):
    engine = RelationalEngine()
    engine.deploy(mini_schema)
    return engine


class TestRelationalEngine:
    def test_insert_and_select(self, engine):
        engine.insert("person", pid="p1", name="Ada", age=36)
        engine.insert("person", pid="p2", name="Bob")
        assert engine.count("person") == 2
        assert list(engine.select("person", pid="p1"))[0]["name"] == "Ada"

    def test_primary_key_enforced(self, engine):
        engine.insert("person", pid="p1", name="Ada")
        with pytest.raises(IntegrityError):
            engine.insert("person", pid="p1", name="Imposter")

    def test_not_null_enforced(self, engine):
        with pytest.raises(IntegrityError):
            engine.insert("person", pid="p1")  # name missing

    def test_domain_enforced(self, engine):
        with pytest.raises(IntegrityError):
            engine.insert("person", pid="p1", name="Ada", age="old")

    def test_unknown_column_rejected(self, engine):
        with pytest.raises(IntegrityError):
            engine.insert("person", pid="p1", name="A", shoe_size=42)

    def test_foreign_key_enforced(self, engine):
        with pytest.raises(IntegrityError):
            engine.insert("pet", tag="t1", owner_pid="ghost")
        engine.insert("person", pid="p1", name="Ada")
        engine.insert("pet", tag="t1", owner_pid="p1")

    def test_deferred_constraints(self, engine):
        with engine.deferred():
            engine.insert("pet", tag="t1", owner_pid="p1")  # forward ref
            engine.insert("person", pid="p1", name="Ada")
        with pytest.raises(IntegrityError):
            with engine.deferred():
                engine.insert("pet", tag="t2", owner_pid="nobody")

    def test_extract_source_protocol(self, engine):
        engine.insert("person", pid="p1", name="Ada", age=1)
        rows = list(engine.extract("person"))
        assert rows == [("p1", 1, "Ada")]  # pk first, then alphabetical
        assert list(engine.extract("person(name, pid)")) == [("Ada", "p1")]

    def test_unknown_table(self, engine):
        with pytest.raises(DeploymentError):
            engine.insert("ghosts", a=1)


class TestDDL:
    def test_generate_contains_constraints(self, mini_schema):
        ddl = generate_ddl(mini_schema)
        assert "CREATE TABLE person" in ddl
        assert "pid VARCHAR(255) NOT NULL" in ddl
        assert "age INTEGER" in ddl and "age INTEGER NOT NULL" not in ddl
        assert "PRIMARY KEY (pid)" in ddl
        assert "FOREIGN KEY (owner_pid) REFERENCES person (pid)" in ddl

    def test_round_trip(self, mini_schema):
        parsed = parse_ddl(generate_ddl(mini_schema))
        assert set(parsed.tables) == {"person", "pet"}
        person = parsed.table("person")
        assert person.primary_key() == ["pid"]
        assert person.column("age").optional
        assert not person.column("name").optional
        fk = parsed.foreign_keys[0]
        assert (fk.source_table, fk.target_table) == ("pet", "person")

    def test_company_ddl_round_trip(self):
        schema = SSST().translate(company_super_schema(), "relational").target_schema
        parsed = parse_ddl(generate_ddl(schema))
        assert set(parsed.tables) == set(schema.tables)
        for name, table in schema.tables.items():
            assert set(parsed.table(name).primary_key()) == set(table.primary_key())

    def test_parsed_ddl_deploys(self, mini_schema):
        engine = RelationalEngine()
        engine.deploy(parse_ddl(generate_ddl(mini_schema)))
        engine.insert("person", pid="p", name="N")


@pytest.fixture(scope="module")
def pg_store():
    store = GraphStore()
    schema = SSST().translate(company_super_schema(), "property-graph").target_schema
    store.deploy(schema)
    return store, schema


class TestGraphStore:
    def test_multi_label_node(self, pg_store):
        store, _ = pg_store
        store.create_node(
            "b9", ["Business", "LegalPerson", "Person"],
            fiscalCode="F9", businessName="B", legalNature="spa",
            shareholdingCapital=1.0,
        )
        assert store.labels_of("b9") == {"Business", "LegalPerson", "Person"}

    def test_unknown_label_rejected(self, pg_store):
        store, _ = pg_store
        with pytest.raises(IntegrityError):
            store.create_node("x", ["Spaceship"], fiscalCode="F")

    def test_undeclared_property_rejected(self, pg_store):
        store, _ = pg_store
        with pytest.raises(IntegrityError):
            store.create_node(
                "x", ["Person"], fiscalCode="FX", favouriteColor="blue"
            )

    def test_unique_constraint(self, pg_store):
        store, _ = pg_store
        store.create_node("u1", ["Person"], fiscalCode="UNIQ-1")
        with pytest.raises(IntegrityError):
            store.create_node("u2", ["Person"], fiscalCode="UNIQ-1")

    def test_relationship_endpoint_labels_checked(self, pg_store):
        store, _ = pg_store
        store.create_node("pl", ["Place"], placeId="PL", street="s",
                          city="c", postalCode="p")
        with pytest.raises(IntegrityError):
            # RESIDES goes Person -> Place, not Place -> Person.
            store.create_relationship("pl", "u1", "RESIDES")
        store.create_relationship("u1", "pl", "RESIDES")

    def test_cypher_rendering(self, pg_store):
        _, schema = pg_store
        cypher = generate_cypher_constraints(schema)
        assert "REQUIRE n.fiscalCode IS UNIQUE" in cypher
        docs = generate_label_documentation(schema)
        assert "(:Person)" in docs


class TestTripleStore:
    @pytest.fixture()
    def store(self):
        store = TripleStore()
        schema = SSST().translate(company_super_schema(), "rdf").target_schema
        store.deploy(schema)
        return store

    def test_subclass_inference(self, store):
        store.add("b1", "rdf:type", "Business")
        assert "b1" in store.instances_of("LegalPerson")
        assert "b1" in store.instances_of("Person")

    def test_domain_range_typing(self, store):
        store.add("b1", "rdf:type", "Business")
        store.add("b2", "rdf:type", "Business")
        store.add("b1", "OWNS", "b2")
        # rdfs2: the subject of OWNS is typed with its domain (Person).
        assert "b1" in store.instances_of("Person")

    def test_undeclared_predicate_rejected(self, store):
        with pytest.raises(IntegrityError):
            store.add("a", "LIKES", "b")

    def test_domain_violation_rejected(self, store):
        store.add("pl", "rdf:type", "Place")
        with pytest.raises(IntegrityError):
            store.add("pl", "OWNS", "pl")  # a Place cannot own

    def test_pattern_queries(self, store):
        store.add("b1", "rdf:type", "Business")
        store.add("b2", "rdf:type", "Business")
        store.add("b1", "OWNS", "b2")
        assert set(store.extract("OWNS")) == {("b1", "b2")}
        assert ("b1",) in set(store.extract("rdf:type Business"))

    def test_rdfs_document(self):
        schema = SSST().translate(company_super_schema(), "rdf").target_schema
        doc = generate_rdfs(schema)
        assert "kg:PhysicalPerson rdfs:subClassOf kg:Person ." in doc
        assert "rdfs:domain kg:Person" in doc
        assert "@prefix rdfs:" in doc


class TestLoaders:
    def test_graph_store_loader(self, company_schema, tiny_instance):
        store = GraphStore()
        schema = SSST().translate(
            company_super_schema(), "property-graph"
        ).target_schema
        store.deploy(schema)
        nodes, edges = load_graph_store(company_schema, tiny_instance, store)
        assert nodes == tiny_instance.node_count
        assert edges == tiny_instance.edge_count
        # MTV-style extraction works against the deployed store.
        rows = list(store.extract("(n:Business) return n"))
        assert len(rows) == 3

    def test_triple_store_loader(self, company_schema, tiny_instance):
        store = TripleStore()
        schema = SSST().translate(company_super_schema(), "rdf").target_schema
        store.deploy(schema)
        added = load_triple_store(company_schema, tiny_instance, store)
        assert added > 0
        assert "B1" in store.instances_of("Person")
        assert ("p1", "S0") in set(store.extract("HOLDS"))


class TestCSVModel:
    @pytest.fixture(scope="class")
    def csv_schema(self):
        return SSST().translate(company_super_schema(), "csv").target_schema

    def test_translation_mirrors_relational_layout(self, csv_schema):
        relational = SSST().translate(
            company_super_schema(), "relational"
        ).target_schema
        assert set(csv_schema.files) == set(relational.tables)
        for name, table in relational.tables.items():
            assert set(csv_schema.file(name).header()) == {
                c.name for c in table.columns
            }

    def test_no_constraints_survive(self, csv_schema):
        # The CSV model keeps only a documentation-level isId marker.
        share = csv_schema.file("Share")
        assert "BELONGS_TO_fiscalCode" in share.header()  # bare reference
        id_columns = [c for c in share.columns if c.is_id]
        assert [c.name for c in id_columns] == ["shareId"]

    def test_dataset_round_trip(self, csv_schema):
        dataset = CSVDataset()
        dataset.deploy(csv_schema)
        dataset.append("Person", fiscalCode="X1")
        dataset.append(
            "HOLDS", HOLDS_src_fiscalCode="X1", HOLDS_tgt_shareId="S1",
            right="ownership",
        )
        text = dataset.render("HOLDS")
        assert text.splitlines()[0] == "HOLDS_src_fiscalCode,HOLDS_tgt_shareId,right"
        other = CSVDataset()
        other.deploy(csv_schema)
        assert other.load_text("HOLDS", text) == 1
        assert list(other.extract("HOLDS")) == [("X1", "S1", "ownership")]

    def test_unknown_column_rejected(self, csv_schema):
        dataset = CSVDataset()
        dataset.deploy(csv_schema)
        with pytest.raises(IntegrityError):
            dataset.append("Person", shoeSize=42)

    def test_header_mismatch_rejected(self, csv_schema):
        dataset = CSVDataset()
        dataset.deploy(csv_schema)
        with pytest.raises(IntegrityError):
            dataset.load_text("Person", "wrong,header\n1,2\n")

    def test_none_round_trips_as_empty_cell(self, csv_schema):
        dataset = CSVDataset()
        dataset.deploy(csv_schema)
        dataset.append("Person", fiscalCode="X1")  # RESIDES_placeId absent
        text = dataset.render("Person")
        other = CSVDataset()
        other.deploy(csv_schema)
        other.load_text("Person", text)
        assert other.rows("Person")[0]["RESIDES_placeId"] is None
