"""Differential battery: the columnar property graph vs the object oracle.

Every test drives :class:`ColumnarPropertyGraph` and the object-backed
:class:`PropertyGraph` through the same script and asserts bit-identical
observable state — same iteration order, same errors, same lazy-view
properties — then the full pipeline (generator → extraction → chase →
materialize → deploy) and the serve layer's zero-copy column-block
epochs get the same treatment.
"""

import math
import threading
import time

import pytest

from repro.deploy import (
    GraphStore,
    RelationalEngine,
    TripleStore,
    load_graph_store,
    load_triple_store,
)
from repro.errors import DeploymentError, GraphError
from repro.finkg import ShareholdingConfig, generate_company_kg, programs
from repro.finkg.company_schema import company_super_schema
from repro.graph import (
    GRAPH_BACKEND_ENV,
    ColumnarPropertyGraph,
    PropertyGraph,
    default_graph_backend,
    make_graph,
)
from repro.metalog import (
    GraphCatalog,
    compile_metalog,
    graph_to_database,
    parse_metalog,
)
from repro.metalog.mtv import materialize_into_graph
from repro.serve import ServeState, ServiceHandlers
from repro.serve.state import FrozenColumnBlock
from repro.ssst import SSST, graph_instance_to_relational
from repro.vadalog import Engine

TC = "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."


def snapshot(graph):
    """Everything observable, in observation order."""
    node_ids = [n.id for n in graph.nodes()]
    # Properties are flattened through repr so NaN-valued cells compare
    # equal ('nan' == 'nan') instead of poisoning the whole snapshot.
    return {
        "nodes": [
            (n.id, n.label, repr(sorted(n.properties.items(), key=repr)))
            for n in graph.nodes()
        ],
        "edges": [
            (e.id, e.source, e.target, e.label,
             repr(sorted(e.properties.items(), key=repr)))
            for e in graph.edges()
        ],
        "node_labels": graph.node_labels(),
        "edge_labels": graph.edge_labels(),
        "per_label_nodes": {
            label: [n.id for n in graph.nodes(label)]
            for label in graph.node_labels()
        },
        "per_label_edges": {
            label: [e.id for e in graph.edges(label)]
            for label in graph.edge_labels()
        },
        "out": {nid: [e.id for e in graph.out_edges(nid)] for nid in node_ids},
        "in": {nid: [e.id for e in graph.in_edges(nid)] for nid in node_ids},
        "degrees": {
            nid: (graph.out_degree(nid), graph.in_degree(nid))
            for nid in node_ids
        },
        "counts": (graph.node_count, graph.edge_count),
    }


def run_pair(script):
    """Run ``script`` against both backends; return (oracle, columnar)."""
    oracle = PropertyGraph("g")
    columnar = ColumnarPropertyGraph("g")
    returned = (script(oracle), script(columnar))
    assert snapshot(oracle) == snapshot(columnar)
    return oracle, columnar, returned


def build_mixed(graph):
    """Nodes/edges with every property shape the engine can produce."""
    graph.add_node("a", "Person", name="Ada", age=36, tall=True, score=1.5)
    graph.add_node("b", "Person", name="Bob", age=None, nick="bo")
    graph.add_node("c", "Company", name="ACME", tags=("x", "y"),
                   meta={"k": [1, 2]})
    auto = graph.add_node(label="Person")
    graph.add_node("d", None, weird=float("nan"))
    graph.add_edge("a", "c", "OWNS", edge_id="e1", percentage=0.6)
    graph.add_edge("b", "c", "OWNS", edge_id="e2", percentage=0.4,
                   since=2020)
    graph.add_edge("a", "b", "KNOWS", edge_id="e3")
    graph.add_edge("c", auto.id, "EMPLOYS")
    return auto.id


class TestApiParity:
    def test_mixed_construction(self):
        run_pair(build_mixed)

    def test_error_parity(self):
        def script(graph):
            build_mixed(graph)
            errors = []
            for action in (
                lambda: graph.add_node("a"),
                lambda: graph.add_edge("a", "b", edge_id="e1"),
                lambda: graph.add_edge("a", "missing"),
                lambda: graph.add_edge("missing", "a"),
                lambda: graph.node("zzz"),
                lambda: graph.edge("zzz"),
                lambda: graph.remove_node("zzz"),
                lambda: graph.remove_edge("zzz"),
            ):
                with pytest.raises(GraphError) as excinfo:
                    action()
                errors.append(str(excinfo.value))
            return errors

        _, _, (oracle_errors, columnar_errors) = run_pair(script)
        assert oracle_errors == columnar_errors

    def test_mutation_script(self):
        def script(graph):
            build_mixed(graph)
            graph.set_node_property("a", "age", 37)
            graph.set_node_property("b", "name", None)
            graph.set_edge_property("e1", "percentage", 0.7)
            # In-place mutation through the (lazy) properties mapping —
            # the mtv update path and the deploy delta path both do this.
            props = graph.node("a").properties
            props["city"] = "Rome"
            props.pop("tall")
            props.update(age=40, extra=[1])
            props.setdefault("score", 9.9)  # present: no-op
            props.setdefault("fresh", "yes")
            del props["extra"]
            edge_props = graph.edge("e2").properties
            edge_props.clear()
            graph.remove_edge("e3")
            graph.remove_node("c")  # cascades into e1, e2, EMPLOYS
            graph.add_node("c", "Company", name="ACME2")
            graph.add_edge("a", "c", "OWNS", edge_id="e1", percentage=1.0)

        run_pair(script)

    def test_removal_heavy_interleaving(self):
        def script(graph):
            for i in range(40):
                graph.add_node(f"n{i}", "N", rank=i)
            for i in range(39):
                graph.add_edge(f"n{i}", f"n{i+1}", "NEXT", edge_id=f"x{i}")
            for i in range(0, 40, 3):
                graph.remove_node(f"n{i}")
            for i in range(40, 50):
                graph.add_node(f"n{i}", "N", rank=i)
                graph.add_edge(f"n{i-1}", f"n{i}", "NEXT", edge_id=f"x{i}") \
                    if graph.has_node(f"n{i-1}") else None

        run_pair(script)

    def test_bulk_loaders(self):
        def script(graph):
            graph.add_nodes_bulk(
                "Business",
                ["B0", "B1", "B2"],
                names=("cap", "active"),
                columns=[[10.0, 20.0, None], [True, False, True]],
                constants={"country": "IT"},
            )
            graph.add_nodes_bulk("Person", ["P0", "P1"])
            graph.add_edges_bulk(
                "OWNS",
                ["o0", "o1", "o2"],
                ["P0", "P1", "B0"],
                ["B0", "B1", "B2"],
                names=("percentage",),
                columns=[[0.5, None, 0.9]],
            )
            return (
                graph.nodes_table("Business", ["cap", "active", "country",
                                               "missing"]),
                graph.edges_table("OWNS", ["percentage"]),
                sorted(graph.existing_node_ids(["P0", "B2", "nope"])),
                sorted(graph.existing_edge_ids(["o1", "nope"])),
            )

        _, _, (oracle_out, columnar_out) = run_pair(script)
        assert oracle_out == columnar_out

    def test_bulk_error_parity(self):
        def script(graph):
            graph.add_node("dup", "N")
            errors = []
            for action in (
                lambda: graph.add_nodes_bulk("N", ["x", "dup"]),
                lambda: graph.add_edges_bulk(
                    "E", ["e0"], ["dup"], ["missing"]),
            ):
                with pytest.raises(GraphError) as excinfo:
                    action()
                errors.append(str(excinfo.value))
            return errors

        _, _, (oracle_errors, columnar_errors) = run_pair(script)
        assert oracle_errors == columnar_errors

    def test_rollback_parity(self):
        def script(graph):
            build_mixed(graph)
            mark = graph.insertion_mark()
            graph.add_node("t1", "Tmp")
            graph.add_node("t2", "Tmp")
            graph.add_edge("t1", "t2", "TMP", edge_id="te")
            graph.set_node_property("a", "age", 99)
            return graph.rollback_to_mark(mark)

        _, _, (oracle_undone, columnar_undone) = run_pair(script)
        assert oracle_undone == columnar_undone == 3

    def test_rollback_refuses_interleaved_deletions(self):
        def script(graph):
            build_mixed(graph)
            mark = graph.insertion_mark()
            graph.add_node("t1", "Tmp")
            graph.remove_edge("e3")
            with pytest.raises(DeploymentError) as excinfo:
                graph.rollback_to_mark(mark)
            return str(excinfo.value)

        oracle = PropertyGraph("g")
        columnar = ColumnarPropertyGraph("g")
        assert script(oracle) == script(columnar)

    def test_copy_independence(self):
        def script(graph):
            build_mixed(graph)
            clone = graph.copy()
            clone.set_node_property("a", "name", "Eve")
            clone.remove_node("b")
            clone.add_node("z", "Person")
            return snapshot(clone)

        _, _, (oracle_clone, columnar_clone) = run_pair(script)
        assert oracle_clone == columnar_clone

    def test_networkx_round_trip(self):
        def script(graph):
            build_mixed(graph)
            nxg = graph.to_networkx()
            back = type(graph).from_networkx(nxg)
            return snapshot(back)

        _, _, (oracle_back, columnar_back) = run_pair(script)
        assert oracle_back == columnar_back

    def test_labels_are_sorted_tuples(self):
        def script(graph):
            build_mixed(graph)
            assert graph.node_labels() == ("Company", "Person")
            assert graph.edge_labels() == ("EMPLOYS", "KNOWS", "OWNS")
            graph.remove_node("c")
            assert graph.node_labels() == ("Person",)
            assert graph.edge_labels() == ("KNOWS",)

        script(PropertyGraph("g"))
        script(ColumnarPropertyGraph("g"))


class TestFindProbeParity:
    """find_nodes/find_edges: the interned-code probe must agree with
    the per-object ``==`` oracle on every equality corner."""

    SEARCHES = [
        {"name": "Ada"},
        {"name": "Ada", "age": 36},
        {"age": None},           # matches absent AND stored-None
        {"tall": True},
        {"tall": 1},             # bool/int cross: 1 == True
        {"age": 36.0},           # int/float cross
        {"score": float("nan")},  # NaN never == — per-object fallback
        {"tags": ("x", "y")},
        {"tags": ["x", "y"]},    # unhashable search value — fallback
        {"meta": {"k": [1, 2]}},
        {"name": "Nobody"},
        {"unseen_key": "v"},
    ]

    def test_find_nodes(self):
        oracle = PropertyGraph("g")
        columnar = ColumnarPropertyGraph("g")
        build_mixed(oracle)
        build_mixed(columnar)
        for search in self.SEARCHES:
            for label in (None, "Person", "Company", "Ghost"):
                expected = [n.id for n in oracle.find_nodes(label, **search)]
                got = [n.id for n in columnar.find_nodes(label, **search)]
                assert got == expected, (label, search)

    def test_find_edges(self):
        oracle = PropertyGraph("g")
        columnar = ColumnarPropertyGraph("g")
        build_mixed(oracle)
        build_mixed(columnar)
        searches = [
            {},
            {"source": "a"},
            {"target": "c", "percentage": 0.4},
            {"percentage": 0.6},
            {"since": None},
            {"percentage": "0.6"},  # type mismatch: no match either way
        ]
        for search in searches:
            for label in (None, "OWNS", "KNOWS", "Ghost"):
                expected = [e.id for e in oracle.find_edges(label, **search)]
                got = [e.id for e in columnar.find_edges(label, **search)]
                assert got == expected, (label, search)


class TestPipelineDifferential:
    """generator → extraction → chase → materialize → deploy, both
    backends, bit-identical at every boundary."""

    CONFIG = ShareholdingConfig(companies=120, seed=7)

    def test_control_pipeline(self):
        outputs = {}
        for flag in (False, True):
            graph = generate_company_kg(self.CONFIG, columnar=flag)
            assert isinstance(
                graph, ColumnarPropertyGraph if flag else PropertyGraph
            )
            sigma = parse_metalog(programs.CONTROL_PROGRAM)
            compiled = compile_metalog(sigma, GraphCatalog.from_graph(graph))
            database = graph_to_database(
                graph, compiled.catalog,
                node_labels=compiled.input_node_labels,
                edge_labels=compiled.input_edge_labels,
                columnar=True, bulk=True,
            )
            result = Engine(columnar=True).run(
                compiled.program, database=database
            )
            target = graph.copy()
            materialize_into_graph(result, compiled, target, bulk=True)
            outputs[flag] = (
                {
                    predicate: sorted(map(repr, database.relation(predicate)))
                    for predicate in database.predicates()
                },
                snapshot(target),
            )
        assert outputs[False] == outputs[True]

    @staticmethod
    def _tiny(graph):
        graph.add_node("p1", "PhysicalPerson", fiscalCode="FCp1",
                       name="Ada Rossi", surname="Rossi", gender="female")
        for business in ("B1", "B2", "B3"):
            graph.add_node(
                business, "Business",
                fiscalCode=f"FC{business}", businessName=f"{business} SpA",
                legalNature="spa", shareholdingCapital=1000.0,
            )
        stakes = [
            ("p1", "B1", 0.8, "S0"),
            ("B1", "B2", 0.6, "S1"),
            ("B2", "B3", 0.3, "S2"),
            ("B1", "B3", 0.3, "S3"),
        ]
        for owner, company, pct, share_id in stakes:
            graph.add_node(share_id, "Share", shareId=share_id,
                           percentage=pct)
            graph.add_edge(owner, share_id, "HOLDS", right="ownership")
            graph.add_edge(share_id, company, "BELONGS_TO")
        return graph

    def test_three_deployments_agree(self, company_schema):
        """The deploy layer sees identical data whichever backend holds
        the instance AND whichever backend the graph store runs on."""
        ssst = SSST()
        relational_schema = ssst.translate(company_schema, "relational")
        pg_schema = ssst.translate(company_schema, "property-graph")
        rdf_schema = ssst.translate(company_schema, "rdf")

        extractions = []
        for data_flag in (False, True):
            data = self._tiny(make_graph("tiny", columnar=data_flag))
            for store_flag in (False, True):
                store = GraphStore(columnar=store_flag)
                store.deploy(pg_schema.target_schema)
                load_graph_store(company_schema, data, store)
                extractions.append([
                    sorted(map(repr,
                               store.extract("(n:Business) return n"))),
                    sorted(map(repr, store.extract(
                        "() -[:HOLDS]-> () return (e)"
                    ))),
                ])
            engine = RelationalEngine()
            engine.deploy(relational_schema.target_schema)
            graph_instance_to_relational(company_schema, data, engine)
            triples = TripleStore()
            triples.deploy(rdf_schema.target_schema)
            load_triple_store(company_schema, data, triples)
            assert engine.count("Business") == 3
            assert len(triples.instances_of("Business")) == 3
        assert all(e == extractions[0] for e in extractions[1:])


class TestServeColumnEpochs:
    """The zero-copy snapshot layer over columnar relations."""

    INPUTS = {"e": [("a", "b"), ("b", "c"), ("x", "y")]}

    def test_blocks_equal_frozenset_oracle(self):
        col = ServeState(TC, inputs=self.INPUTS, check_wardedness=False,
                         columnar=True)
        obj = ServeState(TC, inputs=self.INPUTS, check_wardedness=False,
                         columnar=False)
        snap_col, snap_obj = col.snapshot, obj.snapshot
        assert set(snap_col.facts) == set(snap_obj.facts)
        for predicate, expected in snap_obj.facts.items():
            block = snap_col.facts[predicate]
            assert isinstance(block, FrozenColumnBlock)
            assert isinstance(expected, frozenset)
            assert block == expected          # Set-mixin equality
            assert expected == frozenset(block)
            assert len(block) == len(expected)
            for fact in expected:
                assert fact in block
        # Stays equal after a delta on both sides.
        delta = {"added": {"e": [("c", "d")]}, "removed": {"e": [("x", "y")]}}
        col.apply_delta(**delta)
        obj.apply_delta(**delta)
        for predicate, expected in obj.snapshot.facts.items():
            assert col.snapshot.facts[predicate] == expected

    def test_cow_reuses_untouched_blocks(self):
        program = TC + "\nu(X) -> v(X)."
        state = ServeState(
            program,
            inputs={"e": [("a", "b")], "u": [("k",)]},
            check_wardedness=False,
        )
        old = state.snapshot
        state.apply_delta(added={"e": [("b", "c")]})
        new = state.snapshot
        # Untouched component: block and edb tuple alias the old epoch.
        assert new.facts["v"] is old.facts["v"]
        assert new.edb["u"] is old.edb["u"]
        # Touched component: fresh block, fresh tuple.
        assert new.facts["tc"] is not old.facts["tc"]
        assert new.edb["e"] is not old.edb["e"]

    def test_old_epoch_survives_tombstoning_removal(self):
        state = ServeState(TC, inputs=self.INPUTS, check_wardedness=False)
        old = state.snapshot
        before = set(old.facts["tc"])
        state.apply_delta(removed={"e": [("b", "c"), ("x", "y")]})
        # The live relation tombstoned rows in place; the frozen block
        # copied the live mask and must replay the old extension.
        assert set(old.facts["tc"]) == before
        assert old.facts["tc"] == before
        assert ("x", "y") not in state.snapshot.facts["tc"]

    def test_torn_epoch_battery_on_column_blocks(self):
        """The test_serve concurrency battery, pinned to columnar=True
        with a block-type assertion: 10 readers, 24 deltas, exact
        per-epoch answers."""
        readers_n, deltas_n, base = 10, 24, 4
        edges = [(f"a{i}", f"a{i+1}") for i in range(base)]
        state = ServeState(TC, inputs={"e": edges}, check_wardedness=False,
                           columnar=True)
        assert isinstance(state.snapshot.facts["tc"], FrozenColumnBlock)
        handlers = ServiceHandlers(state)
        expected = {
            epoch: sorted(
                [["a0", f"a{i}"] for i in range(1, base + epoch + 1)]
            )
            for epoch in range(deltas_n + 1)
        }
        stop = threading.Event()
        errors = []
        reads = [0] * readers_n

        def reader(index):
            mode = ("snapshot", "magic")[index % 2]
            while not stop.is_set() or reads[index] < 5:
                status, payload = handlers.handle(
                    "GET", "/query",
                    {"q": 'tc("a0", Y)?', "engine": mode},
                )
                if status != 200:
                    errors.append((index, "status", status))
                    return
                if sorted(payload["answers"]) != expected.get(
                    payload["epoch"]
                ):
                    errors.append((index, "torn", payload["epoch"]))
                    return
                reads[index] += 1

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in range(readers_n)
        ]
        for thread in threads:
            thread.start()
        for i in range(deltas_n):
            status, payload = handlers.handle(
                "POST", "/delta", {},
                {"added": {"e": [[f"a{base + i}", f"a{base + i + 1}"]]}},
            )
            assert (status, payload["epoch"]) == (200, i + 1)
            time.sleep(0.002)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == [], errors[:3]
        assert all(count >= 5 for count in reads)
        assert state.snapshot.epoch == deltas_n
        assert isinstance(state.snapshot.facts["tc"], FrozenColumnBlock)


class TestBackendFactory:
    def test_default_is_columnar(self, monkeypatch):
        monkeypatch.delenv(GRAPH_BACKEND_ENV, raising=False)
        assert default_graph_backend() is True
        assert isinstance(make_graph("g"), ColumnarPropertyGraph)

    def test_env_selects_object_backend(self, monkeypatch):
        monkeypatch.setenv(GRAPH_BACKEND_ENV, "object")
        assert default_graph_backend() is False
        assert isinstance(make_graph("g"), PropertyGraph)
        # An explicit argument still wins over the environment.
        assert isinstance(
            make_graph("g", columnar=True), ColumnarPropertyGraph
        )

    def test_generator_respects_flag(self):
        config = ShareholdingConfig(companies=20, seed=3)
        assert isinstance(
            generate_company_kg(config, columnar=False), PropertyGraph
        )
        assert isinstance(
            generate_company_kg(config, columnar=True),
            ColumnarPropertyGraph,
        )
