"""MTV compiler tests: the three translation phases of Section 4."""

import pytest

from repro.errors import MetaLogError
from repro.graph.property_graph import PropertyGraph
from repro.metalog import (
    GraphCatalog,
    compile_metalog,
    graph_to_database,
    invert_path,
    is_recursive,
    parse_metalog,
    parse_metalog_rule,
    run_on_graph,
)
from repro.metalog.analysis import validate
from repro.metalog.ast import PathEdge, PathSeq, PathStar, PathAlt, EdgeAtom
from repro.vadalog.ast import SkolemTerm
from repro.vadalog.terms import Variable


@pytest.fixture()
def ownership_graph():
    g = PropertyGraph("own")
    for c in "abc":
        g.add_node(c, "Business", name=c)
    g.add_edge("a", "b", "OWNS", percentage=0.6)
    g.add_edge("b", "c", "OWNS", percentage=0.4)
    g.add_edge("a", "c", "OWNS", percentage=0.2)
    return g


class TestPhase1Extraction:
    def test_node_and_edge_layout(self, ownership_graph):
        catalog = GraphCatalog.from_graph(ownership_graph)
        db = graph_to_database(ownership_graph, catalog)
        assert db.facts("Business") == {("a", "a"), ("b", "b"), ("c", "c")}
        owns = db.facts("OWNS")
        assert len(owns) == 3
        fact = next(f for f in owns if f[1] == "a" and f[2] == "b")
        assert fact[3] == 0.6  # percentage at its catalog position

    def test_missing_properties_become_none(self):
        g = PropertyGraph()
        g.add_node(1, "P", x=1)
        g.add_node(2, "P")  # no x
        catalog = GraphCatalog.from_graph(g)
        db = graph_to_database(g, catalog)
        assert db.facts("P") == {(1, 1), (2, None)}

    def test_label_restriction(self, ownership_graph):
        catalog = GraphCatalog.from_graph(ownership_graph)
        db = graph_to_database(ownership_graph, catalog, node_labels=[], edge_labels=["OWNS"])
        assert db.count("Business") == 0
        assert db.count("OWNS") == 3


class TestPhase2Atoms:
    def test_node_atom_positions(self):
        catalog = GraphCatalog()
        catalog.extend_node("P", ["age", "name"])
        compiled = compile_metalog(
            parse_metalog('(x: P; name: n) -> exists c : (x)[c: R](x).'), catalog
        )
        rule = compiled.program.rules[0]
        atom = rule.body_atoms()[0]
        assert atom.predicate == "P"
        assert atom.terms[0] == Variable("x")
        assert atom.terms[2] == Variable("n")  # name after age (sorted)
        assert atom.terms[1].name == "_"  # anonymous age

    def test_unknown_attribute_extends_catalog(self):
        compiled = compile_metalog(
            parse_metalog("(x: P; brand: b) -> exists c : (x)[c: R](x).")
        )
        assert "brand" in compiled.catalog.node_properties["P"]

    def test_edge_oid_and_endpoints(self):
        compiled = compile_metalog(
            parse_metalog("(x: A)[e: R; w: v](y: B) -> exists c : (x)[c: S](y).")
        )
        atom = next(a for a in compiled.program.rules[0].body_atoms() if a.predicate == "R")
        assert atom.terms[0] == Variable("e")
        assert atom.terms[1] == Variable("x")
        assert atom.terms[2] == Variable("y")
        assert atom.terms[3] == Variable("v")

    def test_inverted_edge_swaps_endpoints(self):
        compiled = compile_metalog(
            parse_metalog("(x: A)[:R]-(y: B) -> exists c : (x)[c: S](y).")
        )
        atom = next(a for a in compiled.program.rules[0].body_atoms() if a.predicate == "R")
        assert atom.terms[1] == Variable("y") and atom.terms[2] == Variable("x")


class TestPhase3Paths:
    def test_concatenation_threads_fresh_variables(self):
        compiled = compile_metalog(
            parse_metalog("(x: A) [:R] . [:S] (y: B) -> exists c : (x)[c: T](y).")
        )
        atoms = {a.predicate: a for a in compiled.program.rules[0].body_atoms()}
        r, s = atoms["R"], atoms["S"]
        assert r.terms[1] == Variable("x")
        assert s.terms[2] == Variable("y")
        assert r.terms[2] == s.terms[1]  # shared intermediate

    def test_star_generates_beta_rules(self):
        compiled = compile_metalog(
            parse_metalog(
                "(x: SM_Node) ([:SM_CHILD]- . [:SM_PARENT])* (y: SM_Node)"
                " -> exists w : (x)[w: DESCFROM](y)."
            )
        )
        beta = next(iter(compiled.auxiliary_predicates))
        beta_rules = [
            r for r in compiled.program.rules if beta in r.head_predicates()
        ]
        assert len(beta_rules) == 2  # base + step, exactly Example 4.4
        step = next(r for r in beta_rules if beta in r.body_predicates())
        assert len(step.body_atoms()) == 3  # beta + the two dictionary edges

    def test_alternation_generates_alpha_rules(self):
        compiled = compile_metalog(
            parse_metalog("(x: A) ([:R] | [:S]) (y: B) -> exists c : (x)[c: T](y).")
        )
        alpha = next(iter(compiled.auxiliary_predicates))
        alpha_rules = [
            r for r in compiled.program.rules if alpha in r.head_predicates()
        ]
        assert len(alpha_rules) == 2  # one per branch

    def test_alternation_exports_shared_variables(self):
        compiled = compile_metalog(
            parse_metalog(
                "(x: A) ([:R; w: v] | [:S; w: v]) (y: B), v > 1"
                " -> exists c : (x)[c: T](y)."
            )
        )
        alpha = next(iter(compiled.auxiliary_predicates))
        call = next(
            a for r in compiled.program.rules for a in r.body_atoms()
            if a.predicate == alpha and Variable("x") in a.terms
        )
        assert Variable("v") in call.terms  # the paper's z tuple

    def test_alternation_branch_missing_export_rejected(self):
        with pytest.raises(MetaLogError):
            compile_metalog(
                parse_metalog(
                    "(x: A) ([:R; w: v] | [:S]) (y: B), v > 1"
                    " -> exists c : (x)[c: T](y)."
                )
            )

    def test_star_cannot_export_variables(self):
        with pytest.raises(MetaLogError):
            compile_metalog(
                parse_metalog(
                    "(x: A) ([:R; w: v])* (y: B), v > 1 -> exists c : (x)[c: T](y)."
                )
            )

    def test_invert_path_structure(self):
        r = PathEdge(EdgeAtom(None, "R"))
        s = PathEdge(EdgeAtom(None, "S"))
        inverted = invert_path(PathSeq((r, s)))
        assert isinstance(inverted, PathSeq)
        assert inverted.parts[0].edge.label == "S" and inverted.parts[0].edge.inverted
        double = invert_path(invert_path(PathStar(PathAlt((r, s)))))
        assert double == PathStar(PathAlt((r, s)))


class TestValidation:
    def test_star_in_recursive_program_rejected(self):
        program = parse_metalog(
            "(x: A) ([:R])* (y: A) -> exists c : (x)[c: R](y)."
        )
        assert is_recursive(program)
        with pytest.raises(MetaLogError):
            validate(program)

    def test_schema_oid_selectors_break_false_recursion(self):
        program = parse_metalog(
            "(n: SM_Node; schemaOID: 1) -> exists x = skN(n) :"
            " (x: SM_Node; schemaOID: 2)."
        )
        assert not is_recursive(program)

    def test_unbound_attribute_head_variable_rejected(self):
        with pytest.raises(MetaLogError):
            validate(parse_metalog("(x: A) -> exists c : (x)[c: R; w: v](x)."))

    def test_unbound_skolem_argument_rejected(self):
        with pytest.raises(MetaLogError):
            validate(parse_metalog("(x: A) -> exists c = sk(zz) : (x)[c: R](x)."))


class TestEndToEnd:
    def test_annotations_emitted(self, ownership_graph):
        compiled = compile_metalog(
            parse_metalog(
                "(x: Business)[:OWNS; percentage: w](y: Business), w > 0.5"
                " -> exists c : (x)[c: MAJOR](y)."
            )
        )
        inputs = compiled.program.input_predicates()
        assert "Business" in inputs and "OWNS" in inputs
        assert "return" in str(inputs["OWNS"].arguments[1])
        assert compiled.program.output_predicates() == ["MAJOR"]

    def test_run_on_graph_materializes_edges(self, ownership_graph):
        outcome = run_on_graph(
            parse_metalog(
                "(x: Business)[:OWNS; percentage: w](y: Business), w > 0.5"
                " -> exists c : (x)[c: MAJOR](y)."
            ),
            ownership_graph,
        )
        assert outcome.new_edges == 1
        edge = next(iter(outcome.graph.edges("MAJOR")))
        assert (edge.source, edge.target) == ("a", "b")
        # Original graph untouched (no inplace).
        assert not list(ownership_graph.edges("MAJOR"))

    def test_run_on_graph_inplace(self, ownership_graph):
        run_on_graph(
            parse_metalog("(x: Business) -> exists c : (x)[c: SELF](x)."),
            ownership_graph,
            inplace=True,
        )
        assert len(list(ownership_graph.edges("SELF"))) == 3

    def test_derived_node_with_attributes(self, ownership_graph):
        outcome = run_on_graph(
            parse_metalog(
                '(x: Business; name: n) -> exists m = skMirror(n) :'
                ' (m: Mirror; name: n).'
            ),
            ownership_graph,
        )
        assert outcome.new_nodes == 3
        names = {n.get("name") for n in outcome.graph.nodes("Mirror")}
        assert names == {"a", "b", "c"}

    def test_rerun_is_idempotent_with_skolems(self, ownership_graph):
        program = parse_metalog(
            '(x: Business; name: n) -> exists m = skMirror(n) : (m: Mirror; name: n).'
        )
        once = run_on_graph(program, ownership_graph)
        twice = run_on_graph(program, once.graph)
        assert twice.new_nodes == 0


class TestNegatedPatterns:
    def test_negated_edge_compiles_and_runs(self, ownership_graph):
        outcome = run_on_graph(
            parse_metalog(
                "(x: Business), (y: Business), x != y, not (x)[:OWNS](y)"
                " -> exists c : (x)[c: NO_STAKE](y)."
            ),
            ownership_graph,
        )
        pairs = {(e.source, e.target) for e in outcome.graph.edges("NO_STAKE")}
        # a owns b and c, b owns c: the complement of OWNS on distinct pairs.
        assert pairs == {("b", "a"), ("c", "a"), ("c", "b")}

    def test_negated_node_label(self, ownership_graph):
        graph = ownership_graph.copy()
        graph.add_node("p", "Person", name="p")
        outcome = run_on_graph(
            parse_metalog(
                "(x: Business), not (x: Person)"
                " -> exists c : (x)[c: PURE_BUSINESS](x)."
            ),
            graph,
        )
        assert {e.source for e in outcome.graph.edges("PURE_BUSINESS")} == {
            "a", "b", "c",
        }

    def test_unsafe_negated_variable_rejected(self):
        with pytest.raises(MetaLogError):
            compile_metalog(
                parse_metalog(
                    "(x: A), not (x)[:R](y) -> exists c : (x)[c: S](x)."
                )
            )

    def test_negated_conjunction_rejected(self):
        with pytest.raises(MetaLogError):
            compile_metalog(
                parse_metalog(
                    "(x: A), (y: B), not (x: A)[:R](y: B)"
                    " -> exists c : (x)[c: S](y)."
                )
            )

    def test_negated_bare_node_rejected(self):
        with pytest.raises(MetaLogError):
            compile_metalog(
                parse_metalog("(x: A), not (x) -> exists c : (x)[c: S](x).")
            )
