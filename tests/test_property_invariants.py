"""Cross-cutting property-based invariants (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.finkg.control import control_pairs
from repro.finkg.ownership import integrated_ownership
from repro.graph import summarize
from repro.graph.property_graph import PropertyGraph
from repro.vadalog import Engine, parse_program


@st.composite
def normalized_stakes(draw):
    """Random stake sets with no over-assigned company."""
    n = draw(st.integers(2, 7))
    entities = [f"e{i}" for i in range(n)]
    stakes = {}
    for _ in range(draw(st.integers(1, 12))):
        owner = draw(st.sampled_from(entities))
        company = draw(st.sampled_from(entities))
        if owner != company:
            stakes[(owner, company)] = draw(st.floats(0.05, 1.0))
    inbound = {}
    for (_, company), pct in stakes.items():
        inbound[company] = inbound.get(company, 0.0) + pct
    return [
        (owner, company, pct / max(1.0, inbound[company] / 0.95))
        for (owner, company), pct in sorted(stakes.items())
    ]


class TestControlInvariants:
    @given(normalized_stakes(), st.floats(0.1, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_control_is_monotone_in_threshold(self, stakes, threshold):
        """Lowering the threshold can only add control pairs."""
        strict = control_pairs(stakes, threshold=threshold)
        loose = control_pairs(stakes, threshold=threshold / 2)
        assert strict <= loose

    @given(normalized_stakes())
    @settings(max_examples=40, deadline=None)
    def test_adding_a_stake_is_monotone(self, stakes):
        """More ownership never destroys existing control."""
        before = control_pairs(stakes)
        extended = stakes + [("fresh-owner", "e0", 0.02)]
        after = control_pairs(extended)
        assert before <= after

    @given(normalized_stakes())
    @settings(max_examples=40, deadline=None)
    def test_control_is_transitively_closed(self, stakes):
        pairs = control_pairs(stakes)
        for a, b in pairs:
            for c, d in pairs:
                # Self-control pairs are excluded from the result by
                # definition (Example 4.1 seeds them but they carry no
                # information), so transitivity is checked modulo a != d.
                if b == c and a != d:
                    assert (a, d) in pairs


class TestOwnershipInvariants:
    @given(normalized_stakes())
    @settings(max_examples=40, deadline=None)
    def test_values_in_unit_interval(self, stakes):
        io = integrated_ownership(stakes)
        assert all(0.0 <= value <= 1.0 + 1e-9 for value in io.values())

    @given(normalized_stakes())
    @settings(max_examples=40, deadline=None)
    def test_at_least_direct_ownership(self, stakes):
        io = integrated_ownership(stakes)
        direct = {}
        for owner, company, pct in stakes:
            direct[(owner, company)] = direct.get((owner, company), 0.0) + pct
        for key, pct in direct.items():
            assert io.get(key, 0.0) >= pct - 1e-9


class TestChaseIsAModel:
    @given(st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_closure_satisfies_its_rules(self, edges):
        """The fixpoint satisfies every rule: no unfired instance left."""
        result = Engine().run(
            parse_program(
                "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
            ),
            inputs={"e": edges},
        )
        tc = result.facts("tc")
        edge_set = set(edges)
        for x, y in edge_set:
            assert (x, y) in tc
        for x, y in tc:
            for y2, z in edge_set:
                if y2 == y:
                    assert (x, z) in tc


class TestStatisticsInvariants:
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_component_partitions(self, edges):
        graph = PropertyGraph()
        for i in range(10):
            graph.add_node(i)
        for source, target in edges:
            graph.add_edge(source, target)
        stats = summarize(graph, with_power_law=False, with_clustering=False)
        assert stats.scc_count <= stats.nodes
        assert stats.wcc_count <= stats.scc_count  # WCCs merge SCCs
        assert stats.largest_wcc <= stats.nodes
        assert stats.largest_scc <= stats.largest_wcc
        # Averages times counts give back the node total.
        assert stats.avg_scc_size * stats.scc_count == pytest.approx(stats.nodes)
        assert stats.avg_wcc_size * stats.wcc_count == pytest.approx(stats.nodes)


class TestGSLRoundTripProperty:
    @given(
        st.integers(1, 4),
        st.integers(0, 3),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_text_round_trip(self, node_count, edge_count, total, disjoint):
        from repro.core import SuperSchema, parse_gsl, to_gsl_text

        schema = SuperSchema("R", 1)
        nodes = []
        for i in range(node_count):
            node = schema.node(f"N{i}")
            node.attribute("k", is_id=True)
            nodes.append(node)
        for j in range(min(edge_count, node_count)):
            schema.edge(
                f"E{j}", nodes[j % node_count], nodes[(j + 1) % node_count],
                is_intensional=(j % 2 == 0),
            )
        if node_count >= 3:
            schema.generalization(
                nodes[0], [nodes[1], nodes[2]], total=total, disjoint=disjoint
            )
        back = parse_gsl(to_gsl_text(schema))
        assert {n.type_name for n in back.nodes} == {
            n.type_name for n in schema.nodes
        }
        for edge in schema.edges:
            assert back.get_edge(edge.type_name).is_intensional == edge.is_intensional
        assert len(back.generalizations) == len(schema.generalizations)
        if schema.generalizations:
            assert back.generalizations[0].is_total == total
            assert back.generalizations[0].is_disjoint == disjoint
