"""SQL pushdown of the intensional component (Section 6 future work)."""

import pytest

from repro.deploy import generate_sql_views
from repro.finkg import programs
from repro.finkg.company_schema import company_super_schema
from repro.metalog import parse_metalog
from repro.ssst import SSST, translate_sigma_for_relational


@pytest.fixture(scope="module")
def relational_schema():
    return SSST().translate(company_super_schema(), "relational").target_schema


def compile_sigma(text, relational_schema):
    return translate_sigma_for_relational(
        parse_metalog(text), company_super_schema(), relational_schema
    )


class TestPushdown:
    def test_owns_program_fully_pushable(self, relational_schema):
        compiled = compile_sigma(programs.OWNS_PROGRAM, relational_schema)
        push = generate_sql_views(compiled.program, relational_schema)
        assert len(push.views) == 1 and not push.retained
        sql = push.sql()
        assert "CREATE VIEW v_OWNS AS" in sql
        assert "SUM(DISTINCT" in sql
        assert "GROUP BY" in sql
        assert "t3.right = 'ownership'" in sql
        assert "IS NOT NULL" in sql  # the FK non-null guard
        assert "'None'" not in sql

    def test_recursive_rules_are_retained(self, relational_schema):
        compiled = compile_sigma(programs.CONTROL_PROGRAM, relational_schema)
        push = generate_sql_views(compiled.program, relational_schema)
        assert not push.views
        assert len(push.retained) == 2
        assert all("recursive" in why for _, why in push.retained)

    def test_plain_join_rule(self, relational_schema):
        compiled = compile_sigma(
            "(p: PhysicalPerson; surname: s), (q: PhysicalPerson; surname: s),"
            " p != q -> exists r : (p)[r: IS_RELATED_TO](q).",
            relational_schema,
        )
        push = generate_sql_views(compiled.program, relational_schema)
        assert len(push.views) == 1
        sql = push.views[0]
        assert "FROM PhysicalPerson t0" in sql
        assert "<>" in sql  # the p != q filter

    def test_constant_filters_and_conditions(self, relational_schema):
        compiled = compile_sigma(
            '(x: Business; legalNature: "spa", shareholdingCapital: c),'
            " c > 1000 -> exists e : (x)[e: CONTROLS](x).",
            relational_schema,
        )
        push = generate_sql_views(compiled.program, relational_schema)
        sql = push.views[0]
        assert "= 'spa'" in sql
        assert "> 1000" in sql

    def test_multiple_views_get_unique_names(self, relational_schema):
        compiled = compile_sigma(
            "(x: Business) -> exists c : (x)[c: CONTROLS](x).\n"
            "(x: PublicListedCompany) -> exists c : (x)[c: CONTROLS](x).",
            relational_schema,
        )
        push = generate_sql_views(compiled.program, relational_schema)
        names = [v.splitlines()[0] for v in push.views]
        assert len(set(names)) == 2
