"""Core layer: meta-model, super-model, SuperSchema, validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    META_MODEL,
    SUPER_MODEL_DICTIONARY,
    GraphDictionary,
    SMEnumAttributeModifier,
    SMRangeAttributeModifier,
    SMUniqueAttributeModifier,
    SuperSchema,
    meta_construct,
    metamodel_dictionary,
)
from repro.core.supermodel import modifier_from_payload
from repro.errors import SchemaError


class TestMetaModel:
    def test_three_meta_constructs(self):
        assert {c.name for c in META_MODEL} == {
            "MM_Entity", "MM_Link", "MM_Property",
        }

    def test_lookup(self):
        assert meta_construct("MM_Entity").properties[1] == ("name", "string")
        with pytest.raises(KeyError):
            meta_construct("MM_Whatever")

    def test_figure2_dictionary(self):
        graph = metamodel_dictionary()
        assert graph.node_count == 3
        assert graph.edge_count == 4
        assert {e.label for e in graph.edges()} == {
            "MM_HAS_PROPERTY", "MM_SOURCE", "MM_TARGET",
        }


class TestSuperModelDictionary:
    def test_every_entry_specializes_a_meta_construct(self):
        names = {c.name for c in META_MODEL}
        assert all(e.specializes in names for e in SUPER_MODEL_DICTIONARY)

    def test_figure3_core_constructs_present(self):
        names = {e.name for e in SUPER_MODEL_DICTIONARY}
        assert {
            "SM_Node", "SM_Edge", "SM_Type", "SM_Attribute",
            "SM_Generalization", "SM_FROM", "SM_TO", "SM_PARENT",
            "SM_CHILD", "SM_HAS_NODE_TYPE",
        } <= names

    def test_intensional_variants_have_dashed_semantics(self):
        dashed = [
            e for e in SUPER_MODEL_DICTIONARY
            if e.name == "SM_Node" and "true" in e.attributes
        ]
        assert "dashed" in dashed[0].grapheme


class TestModifiers:
    def test_enum_requires_values(self):
        with pytest.raises(SchemaError):
            SMEnumAttributeModifier([])

    def test_range_requires_bound(self):
        with pytest.raises(SchemaError):
            SMRangeAttributeModifier()

    def test_payload_round_trip(self):
        original = SMEnumAttributeModifier(["a", "b"])
        rebuilt = modifier_from_payload(original.kind, original.payload())
        assert rebuilt == original
        assert modifier_from_payload(
            "SM_UniqueAttributeModifier", {}
        ) == SMUniqueAttributeModifier()

    def test_unknown_kind(self):
        with pytest.raises(SchemaError):
            modifier_from_payload("SM_MagicModifier", {})


class TestSuperSchemaBuilder:
    def test_cardinality_flags(self):
        schema = SuperSchema("S", 1)
        a = schema.node("A")
        a.attribute("k", is_id=True)
        b = schema.node("B")
        b.attribute("k2", is_id=True)
        one_to_many = schema.edge("R", a, b, source_card="1..1", target_card="0..N")
        assert one_to_many.is_one_to_many
        assert one_to_many.multiplicity == "1:N"
        assert one_to_many.cardinality_labels() == ("1..1", "0..N")
        many_to_many = schema.edge("S", a, b)
        assert many_to_many.is_many_to_many

    def test_bad_cardinality_rejected(self):
        schema = SuperSchema("S", 1)
        a = schema.node("A")
        with pytest.raises(SchemaError):
            schema.edge("R", a, a, source_card="2..N")

    def test_duplicate_names_rejected(self):
        schema = SuperSchema("S", 1)
        schema.node("A")
        with pytest.raises(SchemaError):
            schema.node("A")
        a = schema.get_node("A")
        a.attribute("x")
        with pytest.raises(SchemaError):
            a.attribute("x")

    def test_id_attribute_cannot_be_optional(self):
        schema = SuperSchema("S", 1)
        a = schema.node("A")
        with pytest.raises(SchemaError):
            a.attribute("k", is_id=True, is_optional=True)

    def test_foreign_node_rejected(self):
        first = SuperSchema("S1", 1)
        second = SuperSchema("S2", 2)
        alien = second.node("X")
        first.node("A")
        with pytest.raises(SchemaError):
            first.edge("R", "A", alien)


class TestHierarchy:
    @pytest.fixture()
    def schema(self):
        s = SuperSchema("H", 1)
        root = s.node("Root")
        root.attribute("k", is_id=True)
        mid = s.node("Mid")
        mid.attribute("m")
        leaf = s.node("Leaf")
        leaf.attribute("l")
        other = s.node("Other")
        s.generalization(root, [mid, other], total=True)
        s.generalization(mid, [leaf])
        return s

    def test_navigation(self, schema):
        assert [n.type_name for n in schema.ancestors_of("Leaf")] == ["Mid", "Root"]
        assert {n.type_name for n in schema.descendants_of("Root")} == {
            "Mid", "Other", "Leaf",
        }
        assert [n.type_name for n in schema.children_of("Root")] == ["Mid", "Other"]
        assert {n.type_name for n in schema.leaves_under("Root")} == {"Leaf", "Other"}

    def test_inherited_attributes_and_identity(self, schema):
        names = [a.name for a in schema.inherited_attributes("Leaf")]
        assert names == ["l", "m", "k"]  # own first, then up the chain
        assert [a.name for a in schema.identifier_of("Leaf")] == ["k"]

    def test_shadowing_keeps_own_attribute(self, schema):
        schema.get_node("Leaf").attribute("m", data_type="int")
        attrs = {a.name: a for a in schema.inherited_attributes("Leaf")}
        assert attrs["m"].data_type == "int"


class TestValidation:
    def test_company_schema_is_valid(self, company_schema):
        assert company_schema.validate() == []

    def test_missing_identifier_flagged(self):
        schema = SuperSchema("S", 1)
        schema.node("A")
        problems = schema.validate(strict=False)
        assert any("identifying" in p for p in problems)
        with pytest.raises(SchemaError):
            schema.validate(strict=True)

    def test_generalization_cycle_flagged(self):
        schema = SuperSchema("S", 1)
        a = schema.node("A")
        a.attribute("k", is_id=True)
        b = schema.node("B")
        schema.generalization(a, [b])
        schema.generalization(b, [a])
        problems = schema.validate(strict=False)
        assert any("cycle" in p for p in problems)

    def test_extensional_edge_to_intensional_node_flagged(self):
        schema = SuperSchema("S", 1)
        a = schema.node("A")
        a.attribute("k", is_id=True)
        ghost = schema.node("Ghost", is_intensional=True)
        schema.edge("R", a, ghost)  # extensional edge
        problems = schema.validate(strict=False)
        assert any("intensional" in p for p in problems)

    def test_self_child_rejected_immediately(self):
        schema = SuperSchema("S", 1)
        a = schema.node("A")
        with pytest.raises(SchemaError):
            schema.generalization(a, [a])


class TestDictionaryRoundTrip:
    def test_company_schema_round_trip(self, company_schema):
        dictionary = GraphDictionary()
        dictionary.store(company_schema)
        loaded = dictionary.load(company_schema.schema_oid)
        assert {n.type_name for n in loaded.nodes} == {
            n.type_name for n in company_schema.nodes
        }
        assert {e.type_name for e in loaded.edges} == {
            e.type_name for e in company_schema.edges
        }
        holds = loaded.get_edge("HOLDS")
        assert (holds.is_opt2, holds.is_fun2) == (False, False)  # 1..N left
        gender = loaded.get_node("PhysicalPerson").get_attribute("gender")
        assert isinstance(gender.modifiers[0], SMEnumAttributeModifier)
        assert set(gender.modifiers[0].values) == {"female", "male"}

    def test_two_schemas_share_one_dictionary(self):
        dictionary = GraphDictionary()
        for oid in (1, 2):
            schema = SuperSchema(f"S{oid}", oid)
            node = schema.node("A")
            node.attribute("k", is_id=True)
            dictionary.store(schema)
        assert len(dictionary.load(1).nodes) == 1
        assert len(dictionary.load(2).nodes) == 1
        assert set(dictionary.schema_oids()) == {1, 2}
        assert set(dictionary.discover_schema_oids()) == {1, 2}

    def test_duplicate_oid_rejected(self, company_schema):
        dictionary = GraphDictionary()
        dictionary.store(company_schema)
        with pytest.raises(SchemaError):
            dictionary.store(company_schema)


@st.composite
def random_schemas(draw):
    schema = SuperSchema("R", draw(st.integers(1, 9)))
    node_count = draw(st.integers(1, 5))
    nodes = []
    for i in range(node_count):
        node = schema.node(f"N{i}", is_intensional=draw(st.booleans()))
        node.attribute(f"id{i}", is_id=True)
        for j in range(draw(st.integers(0, 3))):
            node.attribute(
                f"a{j}",
                data_type=draw(st.sampled_from(["string", "int", "float"])),
                is_optional=draw(st.booleans()),
            )
        nodes.append(node)
    for k in range(draw(st.integers(0, 4))):
        source = draw(st.sampled_from(nodes))
        target = draw(st.sampled_from(nodes))
        edge = schema.edge(
            f"E{k}", source, target, is_intensional=True,
            source_card=draw(st.sampled_from(["0..N", "1..1", "0..1", "1..N"])),
            target_card=draw(st.sampled_from(["0..N", "1..1"])),
        )
        if draw(st.booleans()):
            edge.attribute("w", "float")
    if len(nodes) >= 3 and draw(st.booleans()):
        schema.generalization(
            nodes[0], [nodes[1], nodes[2]],
            total=draw(st.booleans()), disjoint=draw(st.booleans()),
        )
    return schema


@given(random_schemas())
@settings(max_examples=40, deadline=None)
def test_dictionary_round_trip_random(schema):
    dictionary = GraphDictionary()
    dictionary.store(schema)
    loaded = dictionary.load(schema.schema_oid)
    assert {n.type_name for n in loaded.nodes} == {n.type_name for n in schema.nodes}
    for edge in schema.edges:
        back = loaded.get_edge(edge.type_name)
        assert back.source.type_name == edge.source.type_name
        assert back.target.type_name == edge.target.type_name
        assert back.multiplicity == edge.multiplicity
        assert [a.name for a in back.attributes] == [a.name for a in edge.attributes]
    assert len(loaded.generalizations) == len(schema.generalizations)
    for original, back in zip(
        sorted(schema.generalizations, key=lambda g: str(g.oid)),
        sorted(loaded.generalizations, key=lambda g: str(g.oid)),
    ):
        assert back.is_total == original.is_total
        assert back.is_disjoint == original.is_disjoint
        assert {c.type_name for c in back.children} == {
            c.type_name for c in original.children
        }
