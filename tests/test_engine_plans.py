"""Compiled join plans: differential battery against the interpreted
matcher, plan-compilation unit tests, composite-index tests, and the
graph fast paths that ride along in the same change."""

import random

import pytest

from repro.graph.algorithms import strongly_connected_components, topological_order
from repro.graph.property_graph import PropertyGraph
from repro.vadalog import Engine, parse_program
from repro.vadalog.ast import Condition
from repro.vadalog.database import Relation
from repro.vadalog.plan import (
    AssignFilter,
    CondFilter,
    NegFilter,
    compile_body,
    execute_plan,
)
from repro.vadalog.terms import Null, Variable


# ---------------------------------------------------------------------------
# Differential battery: Engine(use_plans=True) vs Engine(use_plans=False)
# ---------------------------------------------------------------------------


def _canon(facts):
    """Null ordinals are run-dependent; compare up to null identity."""
    multiset = {}
    distinct_nulls = set()
    for fact in facts:
        key = tuple(
            ("<null>", t.label) if isinstance(t, Null) else t for t in fact
        )
        multiset[key] = multiset.get(key, 0) + 1
        distinct_nulls.update(t for t in fact if isinstance(t, Null))
    return multiset, len(distinct_nulls)


def differential(text, predicates, semi_naive=True, **inputs):
    """Run with plans on and off; assert identical output per predicate."""
    program = parse_program(text)
    fast = Engine(semi_naive=semi_naive, use_plans=True).run(program, inputs=inputs)
    slow = Engine(semi_naive=semi_naive, use_plans=False).run(program, inputs=inputs)
    assert fast.stats.plans_compiled > 0
    assert slow.stats.plans_compiled == 0
    for predicate in predicates:
        assert _canon(fast.facts(predicate)) == _canon(slow.facts(predicate)), predicate
    return fast, slow


class TestDifferential:
    @pytest.mark.parametrize("semi_naive", [True, False])
    def test_transitive_closure(self, semi_naive):
        edges = [(i, (i * 7 + 3) % 25) for i in range(25)] + [(3, 3), (0, 7)]
        differential(
            "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z).",
            ["tc"],
            semi_naive=semi_naive,
            e=edges,
        )

    def test_mutual_recursion(self):
        differential(
            "start(X) -> even(X).\n"
            "even(X), succ(X, Y) -> odd(Y).\n"
            "odd(X), succ(X, Y) -> even(Y).",
            ["even", "odd"],
            start=[(0,)],
            succ=[(i, i + 1) for i in range(8)],
        )

    def test_stratified_negation(self):
        differential(
            "node(X), not bad(X) -> good(X).\n"
            "edge(X, Y), bad(X) -> bad(Y).",
            ["good", "bad"],
            node=[(i,) for i in range(6)],
            edge=[(0, 1), (1, 2), (4, 5)],
            bad=[(0,)],
        )

    def test_assignments_conditions_functions(self):
        differential(
            'p(X, Y), Z = X + Y, Z > 3, S = concat("v", tostring(Z)) -> q(X, S).',
            ["q"],
            p=[(1, 1), (2, 2), (3, 3)],
        )

    def test_constants_and_repeated_variables(self):
        differential(
            'p(X, X, "k") -> q(X).\np(X, Y, _), q(Y) -> r(X, Y).',
            ["q", "r"],
            p=[(1, 1, "k"), (2, 2, "other"), (3, 1, "z"), (1, 1, "z")],
        )

    def test_bool_int_distinction(self):
        # Hash buckets equate True/1/1.0; the chase must not.
        differential(
            "p(X), q(X) -> r(X).",
            ["r"],
            p=[(True,), (1,), (0,)],
            q=[(1,), (False,)],
        )

    def test_existential_restricted_chase(self):
        # The second rule is satisfied by existing facts for some tuples:
        # the restricted chase must invent nulls only for the others.
        differential(
            "person(X) -> hasid(X, Y).\n",
            ["hasid"],
            person=[("a",), ("b",), ("c",)],
            hasid=[("a", "id-a")],
        )

    def test_skolem_oids(self):
        differential(
            "own(X, Y, W) -> holding(#h(X, Y), X, Y, W).",
            ["holding"],
            own=[("a", "b", 0.4), ("b", "c", 0.6)],
        )

    def test_multi_head_shared_existential(self):
        differential(
            "c(X) -> officer(X, P), person(P).",
            ["officer", "person"],
            c=[("acme",), ("globex",)],
        )

    def test_monotonic_aggregation_control(self):
        differential(
            "company(X) -> controls(X, X).\n"
            "controls(X, Z), own(Z, Y, W), V = msum(W, <Z>), V > 0.5"
            " -> controls(X, Y).",
            ["controls"],
            company=[("a",), ("b",), ("c",), ("d",)],
            own=[
                ("a", "b", 0.6),
                ("b", "c", 0.4),
                ("a", "c", 0.2),
                ("c", "d", 0.51),
                ("b", "d", 0.2),
            ],
        )

    def test_aggregate_post_condition_and_projection(self):
        differential(
            "own(Z, Y, W), V = msum(W, <Z>), V > 0.5 -> major(Y).",
            ["major"],
            own=[("a", "c", 0.3), ("b", "c", 0.3), ("a", "d", 0.2)],
        )


# ---------------------------------------------------------------------------
# Randomized differential battery
#
# Seeded program generators over three terminating-by-construction
# families; every generated program must evaluate identically with
# plans on and off.  52 programs total, deterministic per seed.
# ---------------------------------------------------------------------------


def _rand_pairs(rng, size, count):
    pairs = set()
    for _ in range(count):
        pairs.add((f"n{rng.randrange(size)}", f"n{rng.randrange(size)}"))
    return sorted(pairs)


def _rand_weighted(rng, size, count):
    triples = set()
    for _ in range(count):
        triples.add((
            f"n{rng.randrange(size)}",
            f"n{rng.randrange(size)}",
            round(rng.uniform(0.05, 0.95), 2),
        ))
    return sorted(triples)


def _recursion_case(rng):
    """Negation-free recursion over a finite domain (no value invention)."""
    size = rng.randrange(4, 9)
    edges = _rand_pairs(rng, size, rng.randrange(6, 18))
    variant = rng.randrange(4)
    if variant == 0:
        text = "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
        return text, ["tc"], {"e": edges}
    if variant == 1:
        text = "e(X, Y) -> tc(X, Y).\ntc(X, Y), tc(Y, Z) -> tc(X, Z)."
        return text, ["tc"], {"e": edges}
    if variant == 2:
        text = (
            "seed(X) -> even(X).\n"
            "even(X), e(X, Y) -> odd(Y).\n"
            "odd(X), e(X, Y) -> even(Y)."
        )
        return text, ["even", "odd"], {
            "seed": [(f"n{rng.randrange(size)}",)], "e": edges,
        }
    text = (
        "f(X, Y) -> sg(X, Y).\n"
        "up(X, U), sg(U, V), up(Y, V) -> sg(X, Y)."
    )
    ups = _rand_pairs(rng, size, rng.randrange(6, 14))
    return text, ["sg"], {"f": edges, "up": ups}


def _aggregate_case(rng):
    """Monotonic aggregates (msum / mcount / mmax), some recursive."""
    size = rng.randrange(4, 8)
    triples = _rand_weighted(rng, size, rng.randrange(6, 16))
    variant = rng.randrange(3)
    if variant == 0:
        text = (
            "company(X) -> controls(X, X).\n"
            "controls(X, Z), own(Z, Y, W), V = msum(W, <Z>), V > 0.5"
            " -> controls(X, Y)."
        )
        companies = sorted(
            {(a,) for a, _, _ in triples} | {(b,) for _, b, _ in triples}
        )
        return text, ["controls"], {"company": companies, "own": triples}
    if variant == 1:
        text = "own(Z, Y, W), C = mcount(W, <Z>), C > 1 -> popular(Y)."
        return text, ["popular"], {"own": triples}
    text = "own(Z, Y, W), V = mmax(W, <Z>), V > 0.4 -> strong(Y, V)."
    return text, ["strong"], {"own": triples}


def _existential_case(rng):
    """Existential heads: restricted-chase nulls and Skolem linkers."""
    size = rng.randrange(3, 7)
    names = [f"n{i}" for i in range(size)]
    variant = rng.randrange(3)
    if variant == 0:
        # Some tuples pre-satisfied: nulls only for the rest.
        people = [(n,) for n in rng.sample(names, rng.randrange(2, size + 1))]
        known = [(n, f"id-{n}") for n in rng.sample(names, rng.randrange(1, size))]
        text = "person(X) -> hasid(X, Y)."
        return text, ["hasid"], {"person": people, "hasid": known}
    if variant == 1:
        weighted = _rand_weighted(rng, size, rng.randrange(4, 10))
        text = (
            "own(X, Y, W) -> holding(#h(X, Y), X, Y, W).\n"
            "holding(H, X, Y, W) -> via(H, Y)."
        )
        return text, ["holding", "via"], {"own": weighted}
    companies = [(n,) for n in rng.sample(names, rng.randrange(2, size + 1))]
    text = (
        "c(X) -> officer(X, P), person(P).\n"
        "officer(X, P) -> rep(P, X)."
    )
    return text, ["officer", "person", "rep"], {"c": companies}


class TestRandomizedDifferential:
    @pytest.mark.parametrize("seed", range(20))
    def test_negation_free_recursion(self, seed):
        text, predicates, inputs = _recursion_case(random.Random(1000 + seed))
        differential(text, predicates, semi_naive=bool(seed % 2), **inputs)

    @pytest.mark.parametrize("seed", range(16))
    def test_monotonic_aggregates(self, seed):
        text, predicates, inputs = _aggregate_case(random.Random(2000 + seed))
        differential(text, predicates, **inputs)

    @pytest.mark.parametrize("seed", range(16))
    def test_existential_skolem(self, seed):
        text, predicates, inputs = _existential_case(random.Random(3000 + seed))
        differential(text, predicates, **inputs)


# ---------------------------------------------------------------------------
# Plan compilation
# ---------------------------------------------------------------------------


def _body(text):
    return parse_program(text).rules[0].body


class TestCompilation:
    def test_static_join_order_follows_bound_atoms(self):
        # q(Y, Z) has one bound position once p binds X, Y; r(W) has none:
        # the greedy order must visit p, then q, then r.
        body = _body("p(X, Y), r(W), q(Y, Z) -> out(X, W).")
        plan = compile_body(body)
        assert [s.predicate for s in plan.steps] == ["p", "q", "r"]

    def test_initially_bound_variables_steer_the_order(self):
        body = _body("p(X, Y), q(Y, Z) -> out(X, Z).")
        plan = compile_body(body, bound=[Variable("Z")])
        assert [s.predicate for s in plan.steps] == ["q", "p"]

    def test_bind_check_and_key_slots(self):
        body = _body('p(X, X, "k", _, Y) -> out(X, Y).')
        plan = compile_body(body)
        (step,) = plan.steps
        assert step.positions == (2,)          # only the constant probes
        assert step.key_parts == ((False, "k"),)
        assert step.bind == ((0, Variable("X")), (4, Variable("Y")))
        assert step.check == ((1, Variable("X")),)

    def test_second_step_probes_on_bound_variable(self):
        body = _body("tc(X, Y), e(Y, Z) -> tc(X, Z).")
        plan = compile_body(body)
        first, second = plan.steps
        assert first.positions == ()
        assert second.predicate == "e"
        assert second.positions == (0,)
        assert second.key_parts == ((True, Variable("Y")),)

    def test_filters_attach_to_earliest_ready_step(self):
        body = _body("p(X), X > 1, q(X, Y), Y = X + 1 -> out(Y).")
        plan = compile_body(body)
        assert not plan.prefix
        first, second = plan.steps
        assert [type(f) for f in first.filters] == [CondFilter, AssignFilter]
        assert [type(f) for f in second.filters] == []
        # The ready assignment ran right after p bound X, so q's Y slot is
        # a bound probe rather than a novel binding.
        assert second.positions == (0, 1)

    def test_ready_filters_with_no_prior_atom_go_to_prefix(self):
        body = _body("X = 1 + 1, p(X) -> out(X).")
        plan = compile_body(body)
        assert [type(f) for f in plan.prefix] == [AssignFilter]
        assert plan.prefix[0].binds
        (step,) = plan.steps
        assert step.positions == (0,)

    def test_negation_becomes_a_filter(self):
        body = _body("p(X), not q(X) -> out(X).")
        plan = compile_body(body)
        (step,) = plan.steps
        assert [type(f) for f in step.filters] == [NegFilter]

    def test_execute_plan_yields_fresh_dicts(self):
        from repro.vadalog.database import Database

        body = _body("e(X, Y), e(Y, Z) -> out(X, Z).")
        plan = compile_body(body)
        db = Database()
        db.add_all("e", [(1, 2), (2, 3), (3, 4)])
        results = list(execute_plan(plan, db))
        as_tuples = {
            (s[Variable("X")], s[Variable("Y")], s[Variable("Z")]) for s in results
        }
        assert as_tuples == {(1, 2, 3), (2, 3, 4)}
        assert len({id(s) for s in results}) == len(results)

    def test_plan_cache_is_shared_across_runs(self):
        engine = Engine()
        program = parse_program("e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z).")
        first = engine.run(program, inputs={"e": [(1, 2)]})
        second = engine.run(program, inputs={"e": [(1, 2), (2, 3)]})
        assert first.stats.plans_compiled == 2
        assert second.stats.plans_compiled == 0


# ---------------------------------------------------------------------------
# Composite indexes
# ---------------------------------------------------------------------------


class TestCompositeIndex:
    def test_lookup_key_exact_match(self):
        rel = Relation("r")
        rel.add_many([(1, "a", 10), (1, "b", 20), (2, "a", 30), (1, "a", 40)])
        facts = set(rel.lookup_key((0, 1), (1, "a")))
        assert facts == {(1, "a", 10), (1, "a", 40)}
        assert set(rel.lookup_key((0, 1), (9, "a"))) == set()

    def test_single_position_delegates_to_plain_index(self):
        rel = Relation("r")
        rel.add_many([(1, "a"), (2, "b")])
        assert set(rel.lookup_key((1,), ("b",))) == {(2, "b")}

    def test_incremental_maintenance_after_build(self):
        rel = Relation("r")
        rel.add((1, "a"))
        assert set(rel.lookup_key((0, 1), (1, "a"))) == {(1, "a")}
        rel.add((1, "a"))  # duplicate: no double-count
        rel.add((1, "b"))
        assert list(rel.lookup_key((0, 1), (1, "a"))) == [(1, "a")]
        assert set(rel.lookup_key((0, 1), (1, "b"))) == {(1, "b")}

    def test_add_many_falls_back_once_indexed(self):
        rel = Relation("r")
        rel.add_many([(1, "a")])
        rel.lookup_key((0,), (1,))  # force an index
        added = rel.add_many([(1, "a"), (2, "b")])
        assert added == 1
        assert set(rel.lookup_key((0,), (2,))) == {(2, "b")}

    def test_copy_is_independent(self):
        rel = Relation("r")
        rel.add_many([(1, "a")])
        rel.lookup_key((0, 1), (1, "a"))
        clone = rel.copy()
        clone.add((2, "b"))
        assert (2, "b") not in rel
        assert set(clone.lookup_key((0, 1), (2, "b"))) == {(2, "b")}

    def test_arity_guard_in_bulk_path(self):
        from repro.errors import EvaluationError

        rel = Relation("r")
        with pytest.raises(EvaluationError):
            rel.add_many([(1, 2), (1, 2, 3)])


# ---------------------------------------------------------------------------
# PropertyGraph fast paths
# ---------------------------------------------------------------------------


def _sample_graph():
    g = PropertyGraph("sample")
    g.add_node("a", "Company", name="A")
    g.add_node("b", "Company", name="B")
    g.add_node("p", "Person")
    g.add_edge("a", "b", "OWNS", w=0.6)
    g.add_edge("p", "a", "OWNS", w=1.0)
    g.add_edge("a", "b", "SUPPLIES")
    g.add_node(label="Company")  # auto-id node
    return g


class TestPropertyGraphFastPaths:
    def test_copy_preserves_everything(self):
        g = _sample_graph()
        c = g.copy()
        assert c.node_count == g.node_count and c.edge_count == g.edge_count
        assert c.node_labels() == g.node_labels()
        assert c.edge_labels() == g.edge_labels()
        assert c.adjacency() == g.adjacency()
        assert c.degrees() == g.degrees()
        assert {e.id for e in c.edges("OWNS")} == {e.id for e in g.edges("OWNS")}
        assert c.node("a").properties == g.node("a").properties

    def test_copy_is_deep_enough(self):
        g = _sample_graph()
        c = g.copy()
        c.set_node_property("a", "name", "mutated")
        c.add_edge("b", "a", "OWNS")
        assert g.node("a")["name"] == "A"
        assert g.edge_count == 3

    def test_auto_id_counter_survives_copy(self):
        g = _sample_graph()
        c = g.copy()
        fresh = c.add_node(label="Company")
        assert fresh.id not in g  # no collision with ids minted before copy
        assert not g.has_node(fresh.id)

    def test_degrees_matches_per_node_queries(self):
        g = _sample_graph()
        for node in g.nodes():
            in_deg, out_deg = g.degrees()[node.id]
            assert in_deg == g.in_degree(node.id)
            assert out_deg == g.out_degree(node.id)

    def test_adjacency_with_label_filter(self):
        g = _sample_graph()
        adj = g.adjacency("OWNS")
        assert sorted(adj["a"]) == ["b"]
        assert adj["p"] == ["a"]
        assert adj["b"] == []
        full = g.adjacency()
        assert sorted(full["a"]) == ["b", "b"]

    def test_algorithms_still_correct_on_new_paths(self):
        g = PropertyGraph()
        for i in range(6):
            g.add_node(i)
        for s, t in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]:
            g.add_edge(s, t)
        sccs = {frozenset(c) for c in strongly_connected_components(g)}
        assert frozenset({0, 1, 2}) in sccs
        assert len(sccs) == 4

        dag = PropertyGraph()
        for i in range(5):
            dag.add_node(i)
        for s, t in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]:
            dag.add_edge(s, t)
        order = topological_order(dag)
        position = {n: i for i, n in enumerate(order)}
        assert all(position[s] < position[t]
                   for s, t in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        with pytest.raises(ValueError):
            topological_order(g)
