"""Failure-path tests: transactions, retry/backoff, fault injection,
quarantine, and checkpointed materialization.

Every scenario is deterministic — faults come from seeded
:class:`~repro.deploy.resilience.FaultInjector` streams and backoff goes
through fake sleeps, so nothing here ever waits on a real clock.
"""

import json

import pytest

from repro.deploy import (
    GRACEFUL,
    STRICT,
    CrashFault,
    FaultInjector,
    GraphStore,
    QuarantineReport,
    RelationalEngine,
    RetryPolicy,
    TripleStore,
    UndoLog,
    graph_store_state,
    load_graph_store,
    load_triple_store,
    no_retry,
    transaction,
)
from repro.errors import (
    IntegrityError,
    RetryExhaustedError,
    TransientDeploymentError,
)
from repro.finkg import programs
from repro.finkg.company_schema import company_super_schema
from repro.graph.property_graph import PropertyGraph
from repro.metalog import parse_metalog
from repro.obs import RecordingTracer, ResourceGovernor
from repro.ssst import (
    SSST,
    IntensionalMaterializer,
    MaterializationCheckpoint,
    graph_instance_to_relational,
    reason_over_relational,
)
from repro.vadalog.engine import Engine
from repro.vadalog.terms import Null, SkolemValue


def fake_sleep(record):
    def _sleep(seconds):
        record.append(seconds)
    return _sleep


def deployed_graph_store(**kwargs):
    store = GraphStore(**kwargs)
    store.deploy(SSST().translate(company_super_schema(), "property-graph").target_schema)
    return store


def deployed_triple_store(**kwargs):
    store = TripleStore(**kwargs)
    store.deploy(SSST().translate(company_super_schema(), "rdf").target_schema)
    return store


def triple_state(store):
    return frozenset(store.triples())


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_schedule_is_deterministic(self):
        a = RetryPolicy(seed=7, sleep=lambda _s: None)
        b = RetryPolicy(seed=7, sleep=lambda _s: None)
        assert a.schedule() == b.schedule()
        assert RetryPolicy(seed=8).schedule() != a.schedule()

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay=0.1, multiplier=2.0, max_delay=0.4,
            jitter=0.0, sleep=lambda _s: None,
        )
        schedule = policy.schedule()
        assert schedule[0] == pytest.approx(0.1)
        assert schedule[1] == pytest.approx(0.2)
        assert schedule[2] == pytest.approx(0.4)
        assert all(d == pytest.approx(0.4) for d in schedule[2:])

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(jitter=0.25, sleep=lambda _s: None)
        for attempt in range(1, policy.max_attempts):
            bare = min(
                policy.base_delay * policy.multiplier ** (attempt - 1),
                policy.max_delay,
            )
            assert bare <= policy.delay(attempt) <= bare * 1.25

    def test_succeeds_after_transients(self):
        slept = []
        policy = RetryPolicy(max_attempts=5, sleep=fake_sleep(slept), seed=3)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientDeploymentError("blip")
            return "done"

        assert policy.call(flaky) == "done"
        assert calls["n"] == 3
        assert slept == [policy.delay(1), policy.delay(2)]

    def test_exhaustion_carries_attempts_and_cause(self):
        slept = []
        policy = RetryPolicy(max_attempts=3, sleep=fake_sleep(slept))
        cause = TransientDeploymentError("always down")

        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(lambda: (_ for _ in ()).throw(cause))
        assert excinfo.value.attempts == 3
        assert excinfo.value.last_error is cause
        assert excinfo.value.__cause__ is cause
        assert len(slept) == 2  # two backoffs for three attempts

    def test_non_retryable_errors_pass_through(self):
        policy = RetryPolicy(sleep=lambda _s: None)
        with pytest.raises(ValueError):
            policy.call(lambda: (_ for _ in ()).throw(ValueError("fatal")))

    def test_no_retry_is_single_shot(self):
        with pytest.raises(RetryExhaustedError) as excinfo:
            no_retry().call(
                lambda: (_ for _ in ()).throw(TransientDeploymentError("x"))
            )
        assert excinfo.value.attempts == 1

    def test_retry_counter_reaches_tracer(self):
        tracer = RecordingTracer()
        policy = RetryPolicy(max_attempts=4, sleep=lambda _s: None)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 4:
                raise TransientDeploymentError("blip")
            return True

        assert policy.call(flaky, tracer=tracer)
        assert tracer.metrics.counters()["deploy.retries"] == 3


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_fault_stream_is_deterministic(self, company_schema, tiny_instance):
        def positions(seed):
            store = deployed_graph_store()
            injector = FaultInjector(store, fault_rate=0.4, seed=seed)
            hit = []
            for i, node in enumerate(tiny_instance.nodes()):
                try:
                    injector.create_node(node.id, [node.label], **node.properties)
                except TransientDeploymentError:
                    hit.append(i)
            return hit

        assert positions(11) == positions(11)
        assert positions(11) != positions(12)

    def test_crash_after_budget(self):
        store = deployed_graph_store()
        injector = FaultInjector(store, crash_after=2)
        injector.create_node("B1", ["Business", "LegalPerson", "Person"],
                             fiscalCode="F1", businessName="B1",
                             legalNature="spa", shareholdingCapital=1.0)
        injector.create_node("B2", ["Business", "LegalPerson", "Person"],
                             fiscalCode="F2", businessName="B2",
                             legalNature="spa", shareholdingCapital=1.0)
        with pytest.raises(CrashFault):
            injector.create_node("B3", ["Business"], fiscalCode="F3",
                                 businessName="B3", legalNature="spa",
                                 shareholdingCapital=1.0)
        assert injector.mutations_applied == 2

    def test_reads_and_savepoints_pass_through(self):
        store = deployed_graph_store()
        injector = FaultInjector(store, fault_rate=0.9, seed=1)
        # Reads and the savepoint protocol are not intercepted.
        assert injector.name == store.name
        savepoint = injector.savepoint()
        injector.release(savepoint)
        assert injector.graph is store.graph

    def test_faults_raised_before_mutation_applies(self):
        store = deployed_graph_store()
        injector = FaultInjector(store, fault_rate=0.999, seed=2)
        with pytest.raises(TransientDeploymentError):
            injector.create_node("B1", ["Business"], fiscalCode="F1",
                                 businessName="B1", legalNature="spa",
                                 shareholdingCapital=1.0)
        assert store.graph.node_count == 0  # nothing half-written


# ----------------------------------------------------------------------
# Savepoints and rollback
# ----------------------------------------------------------------------
class TestSavepoints:
    def test_undo_log_is_inert_without_savepoint(self):
        log = UndoLog()
        log.record(lambda: (_ for _ in ()).throw(AssertionError("ran")))
        assert not log.active  # nothing recorded outside a savepoint

    def test_graph_store_rollback_restores_unique_index(self):
        store = deployed_graph_store()
        savepoint = store.savepoint()
        store.create_node("B1", ["Business", "LegalPerson", "Person"],
                          fiscalCode="FC1", businessName="B1",
                          legalNature="spa", shareholdingCapital=1.0)
        store.rollback_to(savepoint)
        store.release(savepoint)
        assert store.graph.node_count == 0
        # The unique index entry is gone too: the same value loads again.
        store.create_node("B9", ["Business", "LegalPerson", "Person"],
                          fiscalCode="FC1", businessName="B9",
                          legalNature="spa", shareholdingCapital=1.0)

    def test_graph_store_rollback_removes_edges(self):
        store = deployed_graph_store()
        for oid in ("B1", "B2"):
            store.create_node(oid, ["Business", "LegalPerson", "Person"],
                              fiscalCode=f"F{oid}", businessName=oid,
                              legalNature="spa", shareholdingCapital=1.0)
        clean = graph_store_state(store)
        savepoint = store.savepoint()
        store.create_relationship("B1", "B2", "OWNS", percentage=0.5)
        store.rollback_to(savepoint)
        store.release(savepoint)
        assert graph_store_state(store) == clean

    def test_nested_savepoints_roll_back_independently(self):
        store = deployed_triple_store()
        outer = store.savepoint()
        store.add("B1", "rdf:type", "Business")
        inner = store.savepoint()
        store.add("B2", "rdf:type", "Business")
        store.rollback_to(inner)
        store.release(inner)
        assert "B1" in store.instances_of("Business")
        assert "B2" not in store.instances_of("Business")
        store.rollback_to(outer)
        store.release(outer)
        assert store.count() == 0 or "B1" not in store.instances_of("Business")

    def test_triple_store_rollback_undoes_entailments(self):
        store = deployed_triple_store()
        clean = triple_state(store)
        savepoint = store.savepoint()
        store.add("B1", "rdf:type", "Business")  # entails supertypes too
        assert triple_state(store) != clean
        store.rollback_to(savepoint)
        store.release(savepoint)
        assert triple_state(store) == clean

    def test_relational_engine_rollback_restores_pk_index(self):
        engine = RelationalEngine()
        engine.deploy(SSST().translate(company_super_schema(), "relational").target_schema)
        savepoint = engine.savepoint()
        engine.insert("Person", fiscalCode="FC1")
        engine.rollback_to(savepoint)
        engine.release(savepoint)
        assert engine.rows("Person") == []
        engine.insert("Person", fiscalCode="FC1")  # pk slot free again

    def test_transaction_context_manager(self):
        store = deployed_triple_store()
        with pytest.raises(RuntimeError):
            with transaction(store):
                store.add("B1", "rdf:type", "Business")
                raise RuntimeError("abort")
        assert store.count() == 0 or "B1" not in store.instances_of("Business")
        with transaction(store):
            store.add("B1", "rdf:type", "Business")
        assert "B1" in store.instances_of("Business")


# ----------------------------------------------------------------------
# Strict mode: fail fast, leave the store untouched
# ----------------------------------------------------------------------
class TestStrictMode:
    def test_mid_load_violation_rolls_back_everything(self, company_schema,
                                                      tiny_instance):
        dirty = tiny_instance.copy()
        # Same fiscalCode as B1: trips the unique constraint mid-load.
        dirty.add_node("B4", "Business", fiscalCode="FCB1",
                       businessName="Eve SpA", legalNature="spa",
                       shareholdingCapital=1.0)
        store = deployed_graph_store()
        empty = graph_store_state(store)
        with pytest.raises(IntegrityError):
            load_graph_store(company_schema, dirty, store, batch_size=2)
        # Committed batches were rolled back too: the store is pristine.
        assert graph_store_state(store) == empty

    def test_clean_strict_load_still_succeeds(self, company_schema, tiny_instance):
        store = deployed_graph_store()
        report = load_graph_store(company_schema, tiny_instance, store)
        nodes, edges = report  # historical unpacking
        assert nodes == tiny_instance.node_count
        assert edges == tiny_instance.edge_count
        assert report.mode == STRICT
        assert report.quarantined == 0


# ----------------------------------------------------------------------
# Graceful mode: quarantine and carry on
# ----------------------------------------------------------------------
class TestGracefulMode:
    @pytest.fixture()
    def dirty_instance(self, tiny_instance):
        dirty = tiny_instance.copy()
        dirty.add_node("M1", "Martian", antenna=2)  # unknown label
        dirty.add_node("B4", "Business", fiscalCode="FCB1",  # dup unique
                       businessName="Eve SpA", legalNature="spa",
                       shareholdingCapital=1.0)
        dirty.add_edge("B1", "M1", "WARPS")  # unknown edge label
        return dirty

    def test_clean_subset_loads(self, company_schema, tiny_instance,
                                dirty_instance):
        store = deployed_graph_store()
        quarantine = QuarantineReport()
        report = load_graph_store(
            company_schema, dirty_instance, store,
            mode=GRACEFUL, quarantine=quarantine,
        )
        assert report.nodes == tiny_instance.node_count
        assert report.edges == tiny_instance.edge_count
        # Unknown labels are counted as skips AND quarantined; the
        # integrity violation is quarantined by the batch runner.
        assert report.skipped_nodes == 1 and report.skipped_edges == 1
        assert quarantine.by_kind() == {"node": 2, "edge": 1}
        reasons = " ".join(r.reason for r in quarantine.rejections)
        assert "Martian" in reasons and "unique constraint" in reasons
        # The clean subset matches a clean load exactly.
        clean_store = deployed_graph_store()
        load_graph_store(company_schema, tiny_instance, clean_store)
        assert graph_store_state(store) == graph_store_state(clean_store)

    def test_quarantine_report_serializes(self, company_schema, dirty_instance,
                                          tmp_path):
        store = deployed_graph_store()
        quarantine = QuarantineReport()
        load_graph_store(company_schema, dirty_instance, store,
                         mode=GRACEFUL, quarantine=quarantine)
        path = tmp_path / "quarantine.json"
        quarantine.save(str(path))
        payload = json.loads(path.read_text())
        assert payload["quarantined"] == len(quarantine)
        assert {r["kind"] for r in payload["rejections"]} == {"node", "edge"}

    def test_strict_is_still_the_default(self, company_schema, dirty_instance):
        store = deployed_graph_store()
        with pytest.raises(IntegrityError):
            load_graph_store(company_schema, dirty_instance, store)


# ----------------------------------------------------------------------
# Transient faults + retry: loads converge on the clean state
# ----------------------------------------------------------------------
class TestTransientFaults:
    def test_faulty_graph_load_matches_clean_load(self, company_schema, small_kg):
        clean_store = deployed_graph_store()
        load_graph_store(company_schema, small_kg, clean_store)

        store = deployed_graph_store()
        injector = FaultInjector(store, fault_rate=0.1, seed=42)
        report = load_graph_store(
            company_schema, small_kg, injector,
            policy=RetryPolicy(sleep=lambda _s: None),
        )
        assert report.retries > 0
        assert injector.faults_injected == report.retries
        assert graph_store_state(store) == graph_store_state(clean_store)

    def test_faulty_triple_load_matches_clean_load(self, company_schema,
                                                   tiny_instance):
        clean_store = deployed_triple_store()
        load_triple_store(company_schema, tiny_instance, clean_store)

        store = deployed_triple_store()
        injector = FaultInjector(store, fault_rate=0.15, seed=9)
        report = load_triple_store(
            company_schema, tiny_instance, injector,
            policy=RetryPolicy(sleep=lambda _s: None),
        )
        assert report.retries > 0
        assert triple_state(store) == triple_state(clean_store)

    def test_transients_surface_without_policy(self, company_schema, small_kg):
        store = deployed_graph_store()
        injector = FaultInjector(store, fault_rate=0.3, seed=1)
        # The default policy is single-shot: the raw transient propagates
        # (and the open batch is rolled back on the way out).
        with pytest.raises(TransientDeploymentError):
            load_graph_store(company_schema, small_kg, injector)


# ----------------------------------------------------------------------
# Crash + idempotent replay
# ----------------------------------------------------------------------
class TestCrashReplay:
    def test_replay_after_crash_is_byte_identical(self, company_schema, small_kg):
        clean_store = deployed_graph_store()
        load_graph_store(company_schema, small_kg, clean_store)

        store = deployed_graph_store()
        injector = FaultInjector(store, crash_after=50)
        with pytest.raises(CrashFault):
            load_graph_store(company_schema, small_kg, injector, batch_size=20)
        partial = graph_store_state(store)
        assert partial != graph_store_state(clean_store)
        # Only whole batches survive the crash.
        assert store.graph.node_count % 20 == 0

        report = load_graph_store(company_schema, small_kg, store)
        assert report.replayed == store.graph.node_count - report.nodes or report.replayed > 0
        assert graph_store_state(store) == graph_store_state(clean_store)

    def test_triple_replay_after_crash(self, company_schema, tiny_instance):
        clean_store = deployed_triple_store()
        load_triple_store(company_schema, tiny_instance, clean_store)

        store = deployed_triple_store()
        injector = FaultInjector(store, crash_after=12)
        with pytest.raises(CrashFault):
            load_triple_store(company_schema, tiny_instance, injector,
                              batch_size=2)
        partial = triple_state(store)
        assert partial and partial != triple_state(clean_store)
        report = load_triple_store(company_schema, tiny_instance, store)
        assert report.replayed > 0
        assert triple_state(store) == triple_state(clean_store)

    def test_replaying_a_complete_load_is_a_no_op(self, company_schema,
                                                  tiny_instance):
        store = deployed_graph_store()
        load_graph_store(company_schema, tiny_instance, store)
        state = graph_store_state(store)
        report = load_graph_store(company_schema, tiny_instance, store)
        assert report.nodes == 0 and report.edges == 0
        assert report.replayed == tiny_instance.node_count + tiny_instance.edge_count
        assert graph_store_state(store) == state


# ----------------------------------------------------------------------
# Transactional relational write-back
# ----------------------------------------------------------------------
class TestRelationalSigma:
    @pytest.fixture()
    def deployed_relational(self, company_schema, tiny_instance):
        engine = RelationalEngine()
        engine.deploy(SSST().translate(company_super_schema(), "relational").target_schema)
        graph_instance_to_relational(company_schema, tiny_instance, engine)
        return engine

    def test_faulty_write_back_matches_clean(self, company_schema,
                                             deployed_relational):
        relational = SSST().translate(company_super_schema(), "relational").target_schema
        sigma = parse_metalog(programs.CONTROL_PROGRAM)
        baseline = reason_over_relational(
            sigma, company_schema, relational, deployed_relational, insert=False
        )
        assert baseline["CONTROLS"]  # the program does derive rows

        injector = FaultInjector(deployed_relational, fault_rate=0.6, seed=0)
        derived = reason_over_relational(
            sigma, company_schema, relational, injector,
            policy=RetryPolicy(sleep=lambda _s: None),
        )
        assert injector.faults_injected > 0
        kept = {tuple(sorted(r.items())) for r in derived["CONTROLS"]}
        # Every derived row survived the faults and was written back.
        stored = deployed_relational.rows("CONTROLS")
        assert len(stored) == len(kept) == len(baseline["CONTROLS"])

    def test_constraint_violations_are_quarantined(self, company_schema,
                                                   deployed_relational):
        relational = SSST().translate(company_super_schema(), "relational").target_schema
        quarantine = QuarantineReport()
        derived = reason_over_relational(
            parse_metalog(programs.PERSON_CONTROL_PROGRAM), company_schema,
            relational, deployed_relational, quarantine=quarantine,
        )
        # The self-seed CONTROLS(p1, p1) fails the Business-side FK; the
        # three Business self-seeds insert fine.
        assert len(quarantine) == 1
        (rejection,) = quarantine.rejections
        assert rejection.kind == "row" and "foreign key" in rejection.reason
        assert len(derived["CONTROLS"]) == 3


# ----------------------------------------------------------------------
# Checkpoint codec
# ----------------------------------------------------------------------
class TestCheckpointCodec:
    def test_value_round_trip(self):
        from repro.ssst.checkpoint import decode_value, encode_value

        values = [
            None, True, 0, 1.5, "x",
            Null("z", 3),
            SkolemValue("skF", ("a", 1)),
            SkolemValue("skNest", (Null("y", 1), SkolemValue("skI", (2,)))),
            ("tuple", Null("t", 9)),
            [1, Null("l", 2)],
        ]
        for value in values:
            encoded = json.loads(json.dumps(encode_value(value)))
            assert decode_value(encoded) == value

    def test_database_round_trip(self):
        from repro.ssst.checkpoint import database_payload, restore_database
        from repro.vadalog.database import Database

        database = Database()
        database.add("P", ("a", 1, Null("z", 1)))
        database.add("P", ("b", 2, SkolemValue("sk", ("b",))))
        database.add("Q", (None,))
        payload = json.loads(json.dumps(database_payload(database)))
        back = restore_database(payload)
        assert back.facts("P") == database.facts("P")
        assert back.facts("Q") == database.facts("Q")
        assert back.relation("P").arity == 3

    def test_graph_round_trip(self):
        from repro.ssst.checkpoint import graph_payload, restore_graph

        graph = PropertyGraph("g")
        graph.add_node("n1", "L", x=1)
        graph.add_node(Null("oid", 1), "L", value="held")
        graph.add_edge("n1", Null("oid", 1), "E", edge_id="e1", w=0.5)
        back = restore_graph(json.loads(json.dumps(graph_payload(graph))))
        assert back.has_node(Null("oid", 1))
        assert back.node("n1").get("x") == 1
        assert back.edge("e1").get("w") == 0.5
        assert back.edge("e1").target == Null("oid", 1)

    def test_unserializable_value_raises(self):
        from repro.errors import CheckpointError
        from repro.ssst.checkpoint import encode_value

        with pytest.raises(CheckpointError):
            encode_value(object())


# ----------------------------------------------------------------------
# Checkpointed materialization
# ----------------------------------------------------------------------
class TestCheckpointedMaterialization:
    def run(self, schema, data, tmp_path=None, engine=None, directory=None):
        checkpoint = None
        if directory is not None:
            checkpoint = MaterializationCheckpoint(str(directory))
        return IntensionalMaterializer(engine=engine).materialize(
            schema, data, parse_metalog(programs.CONTROL_PROGRAM),
            instance_oid=9, checkpoint=checkpoint,
        )

    @staticmethod
    def canon(report):
        graph = report.instance.data
        nodes = sorted(
            (str(n.id), n.label,
             tuple(sorted((k, str(v)) for k, v in n.properties.items())))
            for n in graph.nodes()
        )
        edges = sorted(
            (str(e.source), str(e.target), e.label,
             tuple(sorted((k, str(v)) for k, v in e.properties.items())))
            for e in graph.edges()
        )
        return nodes, edges

    def test_resume_skips_completed_phases(self, company_schema, owns_instance,
                                           tmp_path):
        baseline = self.run(company_super_schema(), owns_instance)
        first = self.run(company_schema, owns_instance,
                         directory=tmp_path / "ckpt")
        assert first.resumed_from is None

        # Resume: neither the load chase nor the reasoning chase runs.
        calls = []
        engine = Engine()
        original = engine.run

        def counting_run(program, **kwargs):
            calls.append(program)
            return original(program, **kwargs)

        engine.run = counting_run
        resumed = IntensionalMaterializer(engine=engine).materialize(
            company_super_schema(), owns_instance,
            parse_metalog(programs.CONTROL_PROGRAM), instance_oid=9,
            checkpoint=MaterializationCheckpoint(str(tmp_path / "ckpt")),
        )
        assert resumed.resumed_from == "reason"
        assert len(calls) == 1  # only the flush (v_out) chase
        assert self.canon(resumed) == self.canon(baseline)
        assert resumed.derived_counts == baseline.derived_counts

    def test_interrupted_reason_resumes_from_load(self, company_schema,
                                                  tmp_path):
        # Long enough that the reasoning chase (quadratic CONTROLS closure)
        # outweighs the load chase — only then can a budget separate them.
        chain = PropertyGraph("chain")
        for i in range(45):
            chain.add_node(f"C{i}", "Business", fiscalCode=f"F{i}",
                           businessName=f"C{i}", legalNature="spa",
                           shareholdingCapital=1.0)
        for i in range(44):
            chain.add_edge(f"C{i}", f"C{i+1}", "OWNS", percentage=0.8)

        baseline = self.run(company_super_schema(), chain)

        # Find a fact budget that completes the load chase but trips the
        # reasoning chase (the window depends on engine internals, so scan).
        directory = tmp_path / "ckpt"
        interrupted = None
        for budget in (750, 800, 900):
            import shutil
            shutil.rmtree(directory, ignore_errors=True)
            engine = Engine(governor=ResourceGovernor(max_facts=budget,
                                                      graceful=True))
            report = self.run(company_super_schema(), chain, engine=engine,
                              directory=directory)
            checkpoint = MaterializationCheckpoint(str(directory))
            checkpoint.begin(self.fingerprint(chain))
            if report.truncated and checkpoint.resume_phase() == "load":
                interrupted = report
                break
        assert interrupted is not None, "no budget interrupted the reason phase"

        resumed = self.run(company_super_schema(), chain, directory=directory)
        assert resumed.resumed_from == "load"
        assert not resumed.truncated
        assert self.canon(resumed) == self.canon(baseline)
        assert resumed.derived_counts == baseline.derived_counts

    def fingerprint(self, data):
        from repro.ssst import run_fingerprint

        return run_fingerprint(
            company_super_schema(), data,
            parse_metalog(programs.CONTROL_PROGRAM), 9,
        )

    def test_stale_checkpoint_is_discarded(self, company_schema, owns_instance,
                                           tiny_instance, tmp_path):
        self.run(company_super_schema(), owns_instance,
                 directory=tmp_path / "ckpt")
        report = self.run(company_super_schema(), tiny_instance,
                          directory=tmp_path / "ckpt")
        assert report.resumed_from is None  # different data: no resume

    def test_truncated_phase_is_not_checkpointed(self, company_schema,
                                                 owns_instance, tmp_path):
        engine = Engine(governor=ResourceGovernor(max_facts=1, graceful=True))
        self.run(company_super_schema(), owns_instance, engine=engine,
                 directory=tmp_path / "ckpt")
        checkpoint = MaterializationCheckpoint(str(tmp_path / "ckpt"))
        checkpoint.begin(self.fingerprint(owns_instance))
        assert checkpoint.completed_phases() == []


# ----------------------------------------------------------------------
# Flush accounting (dropped derived edges are surfaced, not silent)
# ----------------------------------------------------------------------
class TestFlushAccounting:
    def test_dropped_edges_are_counted(self):
        from repro.ssst.materializer import _flush_instance_facts
        from repro.vadalog.database import Database

        database = Database()
        database.add("I_SM_Node", ("n1", 1, None))
        database.add("I_SM_FROM", ("e1", "n1", "missing-endpoint", 1))
        graph = PropertyGraph("dict")
        added, dropped = _flush_instance_facts(database, graph)
        assert added == 1 and dropped == 1
        assert graph.has_node("n1") and not graph.has_edge("e1")

    def test_report_surfaces_drop_count(self, company_schema, owns_instance):
        report = IntensionalMaterializer().materialize(
            company_schema, owns_instance,
            parse_metalog(programs.CONTROL_PROGRAM), instance_oid=9,
        )
        assert report.flush_dropped_edges == 0  # healthy program drops nothing


# ----------------------------------------------------------------------
# Observability: the resilience layer reports what it did
# ----------------------------------------------------------------------
class TestResilienceObservability:
    def test_load_span_carries_resilience_attrs(self, company_schema,
                                                tiny_instance):
        tracer = RecordingTracer()
        store = deployed_graph_store(tracer=tracer)
        dirty = tiny_instance.copy()
        dirty.add_node("M1", "Martian")
        load_graph_store(company_schema, dirty, store, mode=GRACEFUL)
        (span,) = tracer.find_spans("deploy.flush")
        assert span.attrs["skipped"] == 1
        assert span.attrs["quarantined"] == 1
        assert span.attrs["nodes"] == tiny_instance.node_count

    def test_fault_and_retry_counters(self, company_schema, tiny_instance):
        tracer = RecordingTracer()
        store = deployed_graph_store(tracer=tracer)
        injector = FaultInjector(store, fault_rate=0.3, seed=4)
        load_graph_store(
            company_schema, tiny_instance, injector,
            policy=RetryPolicy(sleep=lambda _s: None),
        )
        counters = tracer.metrics.counters()
        assert counters["deploy.faults_injected"] > 0
        assert counters["deploy.retries"] == counters["deploy.faults_injected"]


# ----------------------------------------------------------------------
# Jitter sequencing + crash-after reproducibility (the streaming pipeline
# leans on both: retried flushes and chaos crash points must replay
# identically under the same seed)
# ----------------------------------------------------------------------
class TestRetryJitterSequencing:
    def test_per_attempt_jitter_differs_but_replays(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.05, multiplier=2.0,
            max_delay=10.0, jitter=0.25, seed=11, sleep=lambda _s: None,
        )
        first = [policy.delay(n) for n in range(1, 6)]
        second = [policy.delay(n) for n in range(1, 6)]
        assert first == second  # delay() is a pure function of (seed, n)
        # Jitter fractions differ across attempts (no lockstep retries).
        fractions = [
            d / min(0.05 * 2.0 ** (n - 1), 10.0)
            for n, d in enumerate(first, start=1)
        ]
        assert len(set(round(f, 9) for f in fractions)) > 1

    def test_jitter_stays_within_declared_band(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay=0.1, multiplier=2.0,
            max_delay=1.0, jitter=0.5, seed=3, sleep=lambda _s: None,
        )
        for n, delay in enumerate(policy.schedule(), start=1):
            backoff = min(0.1 * 2.0 ** (n - 1), 1.0)
            assert backoff <= delay <= backoff * 1.5

    def test_different_seeds_give_different_sequences(self):
        kwargs = dict(
            max_attempts=6, base_delay=0.05, jitter=0.25,
            sleep=lambda _s: None,
        )
        assert (
            RetryPolicy(seed=1, **kwargs).schedule()
            != RetryPolicy(seed=2, **kwargs).schedule()
        )

    def test_call_sleeps_exactly_the_schedule(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.05, jitter=0.25, seed=5,
            sleep=fake_sleep(slept),
        )
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 4:
                raise TransientDeploymentError("transient")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert slept == policy.schedule()


class TestCrashAfterReproducibility:
    def crash_run(self, seed):
        """Load until the injected crash; returns (mutations, state)."""
        store = deployed_graph_store()
        injector = FaultInjector(store, crash_after=17, seed=seed)
        graph = PropertyGraph("data")
        for i in range(40):
            graph.add_node(
                f"p{i}", "PhysicalPerson",
                fiscalCode=f"FC-{i}", name=f"N{i}", gender="female",
            )
        with pytest.raises(CrashFault):
            load_graph_store(
                company_super_schema(), graph, injector, batch_size=1,
            )
        return injector.mutations_applied, graph_store_state(store)

    def test_same_seed_crashes_at_the_same_point(self):
        first = self.crash_run(seed=42)
        second = self.crash_run(seed=42)
        assert first == second
        assert first[0] == 17

    def test_arm_reseeds_the_transient_stream(self):
        def fault_pattern(injector):
            pattern = []
            for _ in range(50):
                try:
                    injector._inject("probe")
                    pattern.append(False)
                    injector.mutations_applied += 1
                except TransientDeploymentError:
                    pattern.append(True)
            return pattern

        a = FaultInjector(deployed_graph_store(), fault_rate=0.3, seed=9)
        b = FaultInjector(deployed_graph_store(), fault_rate=0.3, seed=1234)
        b.arm(9)
        assert fault_pattern(a) == fault_pattern(b)
