"""Section 2.1 statistics table tests."""

import pytest

from repro.graph import PAPER_STATISTICS, summarize
from repro.graph.property_graph import PropertyGraph


class TestSummarize:
    def test_simple_digraph(self, simple_digraph):
        stats = summarize(simple_digraph, with_power_law=False)
        assert stats.nodes == 7
        assert stats.edges == 7
        assert stats.scc_count == 4
        assert stats.largest_scc == 3
        assert stats.wcc_count == 2
        assert stats.largest_wcc == 5
        assert stats.max_in_degree == 2  # d is entered from both e and c
        assert stats.max_out_degree == 2

    def test_degree_averages_over_active_nodes(self):
        g = PropertyGraph()
        for n in range(4):
            g.add_node(n)
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        stats = summarize(g, with_power_law=False, with_clustering=False)
        # Only node 0 has out-edges (avg 2); nodes 1, 2 have in-edges (avg 1).
        assert stats.avg_out_degree == pytest.approx(2.0)
        assert stats.avg_in_degree == pytest.approx(1.0)

    def test_empty_graph(self):
        stats = summarize(PropertyGraph())
        assert stats.nodes == 0
        assert stats.largest_wcc == 0
        assert stats.avg_clustering == 0.0

    def test_as_dict_keys_match_paper_table(self, simple_digraph):
        stats = summarize(simple_digraph, with_power_law=False)
        assert set(stats.as_dict()) == set(PAPER_STATISTICS)

    def test_format_table_contains_both_columns(self, simple_digraph):
        stats = summarize(simple_digraph, with_power_law=False)
        table = stats.format_table()
        assert "paper" in table and "measured" in table
        assert "avg_clustering" in table

    def test_paper_values_are_the_published_ones(self):
        assert PAPER_STATISTICS["nodes"] == 11_970_000
        assert PAPER_STATISTICS["edges"] == 14_180_000
        assert PAPER_STATISTICS["avg_in_degree"] == pytest.approx(3.12)
        assert PAPER_STATISTICS["avg_clustering"] == pytest.approx(0.0086)
