"""SSST schema translations: Figures 5, 6, 7, 8 and the RDF mapping."""

import pytest

from repro.errors import ModelError
from repro.finkg.company_schema import company_super_schema
from repro.models import (
    PROPERTY_GRAPH_MODEL,
    RDF_MODEL,
    RELATIONAL_MODEL,
    default_repository,
)
from repro.ssst import SSST


@pytest.fixture(scope="module")
def pg_result():
    return SSST().translate(company_super_schema(), "property-graph")


@pytest.fixture(scope="module")
def rel_result():
    return SSST().translate(company_super_schema(), "relational")


@pytest.fixture(scope="module")
def rdf_result():
    return SSST().translate(company_super_schema(), "rdf")


class TestModelDefinitions:
    def test_figure5_construct_table(self):
        table = PROPERTY_GRAPH_MODEL.construct_table()
        assert "Node" in table and "SM_Node" in table
        specializations = {
            c.name: c.specializes for c in PROPERTY_GRAPH_MODEL.constructs
        }
        assert specializations["Node"] == "SM_Node"
        assert specializations["Relationship"] == "SM_Edge"
        assert specializations["Label"] == "SM_Type"

    def test_figure7_construct_table(self):
        specializations = {
            c.name: c.specializes for c in RELATIONAL_MODEL.constructs
        }
        assert specializations["Relation"] == "SM_Type"
        assert specializations["Field"] == "SM_Attribute"
        assert specializations["Predicate"] == "SM_Node"
        assert specializations["ForeignKey"] == "SM_Edge"
        assert specializations["HAS_SOURCE_FIELD"] == "SM_HAS_EDGE_PROPERTY"

    def test_rdf_keeps_generalization(self):
        specializations = {c.name: c.specializes for c in RDF_MODEL.constructs}
        assert specializations["SUBCLASS_OF"] == "SM_Generalization"

    def test_repository_selection(self):
        repo = default_repository()
        assert repo.select("property-graph").strategy == "multi-label"
        assert repo.select("property-graph", "child-edges").strategy == "child-edges"
        with pytest.raises(ModelError):
            repo.select("property-graph", "no-such")
        with pytest.raises(ModelError):
            repo.select("graphql")
        assert set(repo.models()) == {"property-graph", "relational", "rdf", "csv"}


class TestFigure6PGTranslation:
    def test_type_accumulation(self, pg_result):
        schema = pg_result.target_schema
        listed = schema.node_class_by_label("PublicListedCompany")
        assert set(listed.labels) == {
            "PublicListedCompany", "Business", "LegalPerson", "Person",
        }
        assert listed.labels[0] == "PublicListedCompany"  # primary first
        person = schema.node_class_by_label("Person")
        assert person.labels == ["Person"]

    def test_attribute_inheritance(self, pg_result):
        schema = pg_result.target_schema
        business = schema.node_class_by_label("Business")
        names = {p.name for p in business.properties}
        assert {"fiscalCode", "businessName", "legalNature",
                "shareholdingCapital"} <= names
        # Parent does NOT gain child attributes.
        person = schema.node_class_by_label("Person")
        assert {p.name for p in person.properties} == {"fiscalCode"}

    def test_edge_inheritance(self, pg_result):
        schema = pg_result.target_schema
        by_source = {}
        for relationship in schema.relationship_classes:
            if relationship.name == "HOLDS":
                source = schema.node_class_by_oid(relationship.source_oid)
                by_source[source.primary_label] = relationship
        # HOLDS declared on Person is inherited by every descendant.
        assert {"Person", "PhysicalPerson", "LegalPerson", "Business",
                "NonBusiness", "PublicListedCompany"} <= set(by_source)
        assert all(
            {p.name for p in r.properties} == {"right"}
            for r in by_source.values()
        )

    def test_generalizations_gone(self, pg_result):
        assert "IS_A" not in pg_result.target_schema.relationship_names()

    def test_unique_constraint_propagates(self, pg_result):
        constraints = pg_result.target_schema.unique_constraints()
        labels = {label for label, prop in constraints if prop == "fiscalCode"}
        assert "Person" in labels and "Business" in labels

    def test_intensional_marking_survives(self, pg_result):
        schema = pg_result.target_schema
        controls = [r for r in schema.relationship_classes if r.name == "CONTROLS"]
        assert controls and all(r.intensional for r in controls)
        family = schema.node_class_by_label("Family")
        assert family.intensional

    def test_intermediate_schema_is_a_super_schema(self, pg_result):
        intermediate = pg_result.intermediate_super_schema()
        assert intermediate.generalizations == []
        assert {n.type_name for n in intermediate.nodes} >= {
            "Person", "Business", "Share",
        }


class TestChildEdgesStrategy:
    def test_is_a_edges_instead_of_inheritance(self):
        result = SSST().translate(
            company_super_schema(), "property-graph", strategy="child-edges"
        )
        schema = result.target_schema
        assert "IS_A" in schema.relationship_names()
        physical = schema.node_class_by_label("PhysicalPerson")
        assert physical.labels == ["PhysicalPerson"]  # no accumulation
        assert "fiscalCode" not in {p.name for p in physical.properties}
        is_a_count = sum(
            1 for r in schema.relationship_classes if r.name == "IS_A"
        )
        assert is_a_count == 6  # one per generalization member


class TestFigure8RelationalTranslation:
    def test_per_member_tables(self, rel_result):
        schema = rel_result.target_schema
        assert {"Person", "PhysicalPerson", "LegalPerson", "Business",
                "NonBusiness", "PublicListedCompany"} <= set(schema.tables)

    def test_child_pk_doubles_as_fk(self, rel_result):
        schema = rel_result.target_schema
        business = schema.table("Business")
        assert business.primary_key() == ["isA_Business_fiscalCode"]
        fk = next(f for f in schema.foreign_keys if f.name == "isA_Business")
        assert fk.source_table == "Business"
        assert fk.target_table == "LegalPerson"
        assert fk.target_columns == ["isA_LegalPerson_fiscalCode"]

    def test_many_to_many_reified(self, rel_result):
        schema = rel_result.target_schema
        holds = schema.table("HOLDS")
        names = {c.name for c in holds.columns}
        assert names == {"HOLDS_src_fiscalCode", "HOLDS_tgt_shareId", "right"}
        fk_names = {f.name for f in schema.foreign_keys
                    if f.source_table == "HOLDS"}
        assert fk_names == {"HOLDS_src", "HOLDS_tgt"}

    def test_many_to_one_becomes_fk_column(self, rel_result):
        schema = rel_result.target_schema
        share = schema.table("Share")
        belongs = share.column("BELONGS_TO_fiscalCode")
        assert not belongs.optional  # 1..1 target cardinality
        resides = schema.table("Person").column("RESIDES_placeId")
        assert resides.optional  # 0..1 target cardinality

    def test_intensional_attribute_is_nullable(self, rel_result):
        column = rel_result.target_schema.table("Business").column(
            "numberOfStakeholders"
        )
        assert column.optional

    def test_edge_attributes_land_on_bridge_or_holder(self, rel_result):
        schema = rel_result.target_schema
        assert "role" in {c.name for c in schema.table("HAS_ROLE").columns}
        # RESIDES has no attributes; its info is the FK column itself.
        assert "RESIDES" not in schema.tables


class TestRDFTranslation:
    def test_generalizations_survive_as_subclass_of(self, rdf_result):
        schema = rdf_result.target_schema
        assert ("PhysicalPerson", "Person") in schema.subclass_of
        assert ("PublicListedCompany", "Business") in schema.subclass_of
        assert len(schema.subclass_of) == 6

    def test_properties_typed_with_domains(self, rdf_result):
        schema = rdf_result.target_schema
        fiscal = next(
            p for p in schema.datatype_properties if p.name == "fiscalCode"
        )
        assert fiscal.domain == "Person"
        owns = next(p for p in schema.object_properties if p.name == "OWNS")
        assert (owns.domain, owns.range) == ("Person", "Business")


class TestAlgorithmBookkeeping:
    def test_phase_stats_recorded(self, pg_result):
        assert set(pg_result.phase_stats) == {"eliminate", "copy"}
        assert pg_result.phase_stats["eliminate"]["new_nodes"] > 0
        assert pg_result.phase_stats["copy"]["seconds"] >= 0

    def test_source_and_target_oids(self, pg_result):
        assert pg_result.source_oid == 123
        assert pg_result.intermediate_oid == "123-"
        assert pg_result.target_oid == "property-graph:123"

    def test_translation_is_deterministic(self):
        first = SSST().translate(company_super_schema(), "relational")
        second = SSST().translate(company_super_schema(), "relational")
        tables_a = {
            name: [c.name for c in t.columns]
            for name, t in first.target_schema.tables.items()
        }
        tables_b = {
            name: [c.name for c in t.columns]
            for name, t in second.target_schema.tables.items()
        }
        assert tables_a == tables_b
