"""Crash-safe streaming ingestion: feed parsing and fault injection, the
durable delta log (CRC frames, torn-tail recovery, compaction), window
coalescing, both sinks, backpressure, and the crash/resume differential
battery (a resumed stream must be bit-identical, on every deployed
backend, to a clean batch run over the final registry)."""

import json
import os

import pytest

from repro.deploy import FaultInjector, QuarantineReport, RetryPolicy
from repro.deploy.graph_store import GraphStore
from repro.deploy.loaders import load_graph_store, load_triple_store
from repro.deploy.relational_engine import RelationalEngine
from repro.deploy.resilience import CrashFault, graph_store_state
from repro.deploy.triple_store import TripleStore
from repro.errors import ResourceLimitError, SchemaError, StreamError
from repro.finkg import programs
from repro.finkg.company_schema import company_super_schema
from repro.graph.property_graph import PropertyGraph
from repro.metalog import parse_metalog
from repro.obs.governor import ResourceGovernor
from repro.obs.tracer import RecordingTracer
from repro.ssst import SSST, IntensionalMaterializer
from repro.ssst.inverse import graph_instance_to_relational
from repro.stream import (
    DeltaCoalescer,
    DeltaLog,
    DeltaStream,
    FeedFaultInjector,
    GeneratorFeed,
    JsonlFeed,
    MaterializerSink,
    ServeStateSink,
    StreamCheckpoint,
    parse_record,
)

TC_PROGRAM = "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."


# ---------------------------------------------------------------------------
# Feed parsing and sources
# ---------------------------------------------------------------------------


class TestParseRecord:
    def test_registry_record(self):
        record = parse_record(json.dumps({
            "seq": 3, "op": "add_edge", "id": "o1", "source": "a",
            "target": "b", "type": "OWNS", "properties": {"percentage": 0.5},
        }))
        assert record.op == "add_edge"
        assert record.key == ("edge", "o1")
        assert record.seq == 3
        assert record.is_addition

    def test_fact_record_key_includes_terms(self):
        record = parse_record(
            '{"seq": 1, "op": "retract", "predicate": "e", "fact": ["a", "b"]}'
        )
        assert record.key == ("fact", "e", ("a", "b"))
        assert not record.is_addition

    def test_seq_is_optional(self):
        record = parse_record(
            '{"op": "assert", "predicate": "e", "fact": ["a"]}'
        )
        assert record.seq is None

    @pytest.mark.parametrize("text", [
        "not json at all",
        '[1, 2, 3]',
        '{"seq": true, "op": "add_node", "id": "x", "type": "T"}',
        '{"seq": 1, "op": "explode", "id": "x"}',
        '{"seq": 1, "op": "add_node", "type": "T"}',
        '{"seq": 1, "op": "add_node", "id": "x"}',
        '{"seq": 1, "op": "add_edge", "id": "e", "type": "T", "source": "a"}',
        '{"seq": 1, "op": "assert", "predicate": "", "fact": ["a"]}',
        '{"seq": 1, "op": "assert", "predicate": "p", "fact": []}',
        '{"seq": 1, "op": "assert", "predicate": "p", "fact": [["nested"]]}',
        '{"seq": 1, "op": "add_node", "id": "x", "type": "T",'
        ' "properties": {"p": {"nested": 1}}}',
    ])
    def test_malformed_records_raise(self, text):
        with pytest.raises(StreamError):
            parse_record(text)


class TestGeneratorFeed:
    def records(self):
        return [
            {"seq": i, "op": "assert", "predicate": "e", "fact": [f"v{i}"]}
            for i in range(5)
        ]

    def test_poll_serializes_and_positions(self):
        feed = GeneratorFeed(self.records())
        raws = feed.poll()
        assert len(raws) == 5
        assert [r.position for r in raws] == [1, 2, 3, 4, 5]
        assert feed.eof
        assert parse_record(raws[0].text).seq == 0

    def test_seek_on_list_backed_feed(self):
        feed = GeneratorFeed(self.records())
        feed.poll()
        feed.seek(3)
        raws = feed.poll()
        assert [parse_record(r.text).seq for r in raws] == [3, 4]

    def test_max_records_bounds_a_poll(self):
        feed = GeneratorFeed(self.records())
        assert len(feed.poll(max_records=2)) == 2
        assert not feed.eof


class TestJsonlFeed:
    def write(self, path, lines):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")

    def test_missing_file_is_an_empty_feed(self, tmp_path):
        feed = JsonlFeed(str(tmp_path / "nope.jsonl"))
        assert feed.poll() == []

    def test_partial_tail_line_waits_for_its_newline(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        full = '{"seq": 1, "op": "assert", "predicate": "p", "fact": ["a"]}'
        self.write(path, [full])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "op": "assert", "pre')  # no newline yet
        feed = JsonlFeed(path)
        assert len(feed.poll()) == 1
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('dicate": "p", "fact": ["b"]}\n')
        raws = feed.poll()
        assert len(raws) == 1
        assert parse_record(raws[0].text).seq == 2

    def test_positions_are_byte_offsets_and_seekable(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        self.write(path, [
            json.dumps({"seq": i, "op": "assert", "predicate": "p",
                        "fact": [f"v{i}"]})
            for i in range(3)
        ])
        feed = JsonlFeed(path)
        raws = feed.poll()
        assert raws[-1].position == os.path.getsize(path)
        fresh = JsonlFeed(path)
        fresh.seek(raws[0].position)
        assert [parse_record(r.text).seq for r in fresh.poll()] == [1, 2]

    def test_blank_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        self.write(path, [
            '{"seq": 1, "op": "assert", "predicate": "p", "fact": ["a"]}',
            "",
            '{"seq": 2, "op": "assert", "predicate": "p", "fact": ["b"]}',
        ])
        assert len(JsonlFeed(path).poll()) == 2


class TestFeedFaultInjector:
    def feed(self):
        return GeneratorFeed([
            {"seq": i, "op": "assert", "predicate": "p", "fact": [f"v{i}"]}
            for i in range(20)
        ])

    def test_torn_records_truncate_text(self):
        injector = FeedFaultInjector(self.feed(), seed=1, torn_rate=0.99)
        raws = injector.poll()
        assert injector.torn > 0
        torn = [r for r in raws if len(r.text) < 40]
        assert torn
        with pytest.raises(StreamError):
            parse_record(torn[0].text)

    def test_duplicates_reemit_the_same_record(self):
        injector = FeedFaultInjector(self.feed(), seed=2, duplicate_rate=0.5)
        raws = injector.poll()
        assert injector.duplicated > 0
        assert len(raws) == 20 + injector.duplicated
        seqs = [parse_record(r.text).seq for r in raws]
        assert len(seqs) != len(set(seqs))

    def test_reorder_swaps_neighbours(self):
        injector = FeedFaultInjector(self.feed(), seed=3, reorder_rate=0.9)
        raws = injector.poll()
        assert injector.reordered > 0
        seqs = [parse_record(r.text).seq for r in raws]
        assert seqs != sorted(seqs)
        assert sorted(seqs) == list(range(20))

    def test_same_seed_replays_the_same_faults(self):
        def run(seed):
            injector = FeedFaultInjector(
                self.feed(), seed=seed, torn_rate=0.2, duplicate_rate=0.2,
                reorder_rate=0.2,
            )
            return [r.text for r in injector.poll()]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FeedFaultInjector(self.feed(), torn_rate=1.5)


# ---------------------------------------------------------------------------
# Durable log + checkpoint
# ---------------------------------------------------------------------------


class TestDeltaLog:
    def test_append_assigns_dense_offsets_and_replays(self, tmp_path):
        log = DeltaLog(str(tmp_path), fsync=False)
        for i in range(5):
            entry = log.append(i + 1, f"record-{i}")
            assert entry.offset == i
        log.close()
        reopened = DeltaLog(str(tmp_path), fsync=False)
        assert reopened.next_offset == 5
        assert [r.text for r in reopened.replay()] == [
            f"record-{i}" for i in range(5)
        ]
        assert [r.text for r in reopened.replay(after=2)] == [
            "record-3", "record-4"
        ]

    def test_torn_tail_is_truncated_on_recovery(self, tmp_path):
        log = DeltaLog(str(tmp_path), fsync=False)
        for i in range(3):
            log.append(i + 1, f"record-{i}")
        log.close()
        [segment] = [f for f in os.listdir(str(tmp_path)) if f.endswith(".log")]
        path = os.path.join(str(tmp_path), segment)
        with open(path, "rb") as handle:
            content = handle.read()
        with open(path, "wb") as handle:
            handle.write(content[:-7])  # tear the last frame
        recovered = DeltaLog(str(tmp_path), fsync=False)
        assert recovered.next_offset == 2
        assert [r.text for r in recovered.replay()] == ["record-0", "record-1"]
        # The log stays appendable after truncating the torn frame.
        recovered.append(3, "record-2b")
        assert [r.offset for r in recovered.replay()] == [0, 1, 2]

    def test_mid_file_corruption_refuses_to_open(self, tmp_path):
        log = DeltaLog(str(tmp_path), fsync=False)
        for i in range(4):
            log.append(i + 1, f"record-{i}")
        log.close()
        [segment] = [f for f in os.listdir(str(tmp_path)) if f.endswith(".log")]
        path = os.path.join(str(tmp_path), segment)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[1] = lines[1].replace("record-1", "tampered!")
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(StreamError):
            DeltaLog(str(tmp_path), fsync=False)

    def test_segment_rotation_compaction_and_reopen(self, tmp_path):
        log = DeltaLog(str(tmp_path), segment_records=2, fsync=False)
        for i in range(7):
            log.append(i + 1, f"record-{i}")
        segments = [f for f in os.listdir(str(tmp_path)) if f.endswith(".log")]
        assert len(segments) == 4
        log.compact(acked=3)  # first two segments fully acknowledged
        remaining = [f for f in os.listdir(str(tmp_path)) if f.endswith(".log")]
        assert len(remaining) == 2
        assert [r.text for r in log.replay(after=3)] == [
            "record-4", "record-5", "record-6"
        ]
        log.close()
        # Recovery must accept a compacted log (offsets start past zero).
        reopened = DeltaLog(str(tmp_path), segment_records=2, fsync=False)
        assert reopened.next_offset == 7
        reopened.append(8, "record-7")
        assert [r.offset for r in reopened.replay(after=5)] == [6, 7]

    def test_replay_after_respects_actual_segment_boundaries(self, tmp_path):
        log = DeltaLog(str(tmp_path), segment_records=2, fsync=False)
        for i in range(6):
            log.append(i + 1, f"record-{i}")
        log.close()
        # Reopen with a different configured size: replay must skip by
        # the on-disk segment names, not the configured size.
        reopened = DeltaLog(str(tmp_path), segment_records=100, fsync=False)
        assert [r.offset for r in reopened.replay(after=3)] == [4, 5]


class TestStreamCheckpoint:
    def test_round_trip(self, tmp_path):
        checkpoint = StreamCheckpoint(str(tmp_path))
        assert not checkpoint.exists()
        checkpoint.save(
            fingerprint="fp", acked_offset=9, source_position=123,
            last_seq=40, batches_applied=3, state={"k": [1, 2]},
        )
        payload = checkpoint.load("fp")
        assert payload["acked_offset"] == 9
        assert payload["source_position"] == 123
        assert payload["state"] == {"k": [1, 2]}

    def test_fingerprint_mismatch_raises(self, tmp_path):
        checkpoint = StreamCheckpoint(str(tmp_path))
        checkpoint.save(
            fingerprint="fp", acked_offset=0, source_position=0,
            last_seq=0, batches_applied=1, state={},
        )
        with pytest.raises(StreamError):
            checkpoint.load("other-inputs")

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(StreamError):
            StreamCheckpoint(str(tmp_path)).load("fp")


# ---------------------------------------------------------------------------
# Coalescing
# ---------------------------------------------------------------------------


def fact_record(seq, op, value, predicate="p"):
    return parse_record(json.dumps(
        {"seq": seq, "op": op, "predicate": predicate, "fact": [value]}
    ))


def registry_record(seq, op, **payload):
    return parse_record(json.dumps({"seq": seq, "op": op, **payload}))


class TestCoalescer:
    def drain(self, records, exists=lambda key: False, strict=True):
        coalescer = DeltaCoalescer(exists, strict=strict)
        for record in records:
            coalescer.push(record)
        return coalescer.drain()

    def test_add_then_remove_cancels(self):
        batch = self.drain([
            fact_record(1, "assert", "a"),
            fact_record(2, "retract", "a"),
        ])
        assert batch.operations == []
        assert batch.stats.cancelled == 2
        assert batch.empty

    def test_remove_then_add_becomes_replace(self):
        batch = self.drain(
            [fact_record(1, "retract", "a"), fact_record(2, "assert", "a")],
            exists=lambda key: True,
        )
        [(net, _key, _payload)] = batch.operations
        assert net == "replace"

    def test_duplicate_add_rejected_in_strict_mode(self):
        batch = self.drain([
            fact_record(1, "assert", "a"),
            fact_record(2, "assert", "a"),
        ])
        assert len(batch.operations) == 1
        assert len(batch.rejections) == 1
        assert "duplicate" in batch.rejections[0][1]

    def test_duplicate_add_tolerated_in_fact_mode(self):
        batch = self.drain(
            [fact_record(1, "assert", "a"), fact_record(2, "assert", "a")],
            strict=False,
        )
        assert len(batch.operations) == 1
        assert batch.rejections == []
        assert batch.stats.duplicates == 1

    def test_remove_of_nonexistent_rejected(self):
        batch = self.drain([fact_record(1, "retract", "ghost")])
        assert batch.operations == []
        assert "does not exist" in batch.rejections[0][1]

    def test_node_removal_cancels_pending_incident_edge(self):
        batch = self.drain([
            registry_record(1, "add_node", id="n1", type="T", properties={}),
            registry_record(
                2, "add_edge", id="e1", source="n1", target="n2",
                type="R", properties={},
            ),
            registry_record(3, "remove_node", id="n1"),
        ])
        # All three net out: the node add cancels, and the pending edge
        # referencing the now-absent node cancels with it.
        assert batch.operations == []

    def test_base_node_removal_cancels_pending_incident_edge(self):
        exists = lambda key: key == ("node", "n1")  # noqa: E731
        batch = self.drain([
            registry_record(
                1, "add_edge", id="e1", source="n1", target="n2",
                type="R", properties={},
            ),
            registry_record(2, "remove_node", id="n1"),
        ], exists=exists)
        assert batch.operations == [("remove", ("node", "n1"), None)]

    def test_coalesce_ratio(self):
        batch = self.drain([
            fact_record(1, "assert", "a"),
            fact_record(2, "retract", "a"),
            fact_record(3, "assert", "b"),
        ])
        assert batch.stats.records == 3
        assert batch.stats.operations == 1
        assert batch.stats.ratio == pytest.approx(1 / 3)


# ---------------------------------------------------------------------------
# Pipeline over the serve sink (fact mode)
# ---------------------------------------------------------------------------


def fact_feed(entries):
    return GeneratorFeed([
        {"seq": seq, "op": op, "predicate": pred, "fact": list(fact)}
        for seq, op, pred, fact in entries
    ])


def serve_sink():
    return ServeStateSink(program=TC_PROGRAM, inputs={"e": [("a", "b")]})


class TestServeStreaming:
    def test_epoch_advances_once_per_batch(self, tmp_path):
        sink = serve_sink()
        feed = fact_feed([
            (1, "assert", "e", ("b", "c")),
            (2, "assert", "e", ("c", "d")),
            (3, "assert", "e", ("d", "x")),
            (4, "assert", "e", ("x", "y")),
        ])
        report = DeltaStream(
            feed, sink, str(tmp_path / "log"), batch_window=2, fsync=False,
        ).run()
        assert report.batches_applied == 2
        assert sink.state.snapshot.epoch == 2
        assert ("a", "y") in sink.state.snapshot.facts["tc"]

    def test_cancelled_window_skips_the_engine(self, tmp_path):
        sink = serve_sink()
        feed = fact_feed([
            (1, "assert", "e", ("d", "x")),
            (2, "retract", "e", ("d", "x")),
        ])
        report = DeltaStream(
            feed, sink, str(tmp_path / "log"), batch_window=2, fsync=False,
        ).run()
        assert report.batches_applied == 1
        assert report.records_cancelled == 2
        assert sink.state.snapshot.epoch == 0  # nothing reached the engine
        assert ("d", "x") not in sink.state.snapshot.facts["e"]

    def test_seq_duplicates_are_dropped(self, tmp_path):
        sink = serve_sink()
        feed = fact_feed([
            (1, "assert", "e", ("b", "c")),
            (1, "assert", "e", ("b", "c")),
            (2, "assert", "e", ("c", "d")),
        ])
        report = DeltaStream(
            feed, sink, str(tmp_path / "log"), batch_window=10, fsync=False,
        ).run()
        assert report.duplicates_skipped == 1
        assert report.records_seen == 3

    def test_seqless_records_are_not_deduplicated(self, tmp_path):
        sink = serve_sink()
        feed = GeneratorFeed([
            {"op": "assert", "predicate": "e", "fact": ["b", "c"]},
            {"op": "assert", "predicate": "e", "fact": ["c", "d"]},
        ])
        report = DeltaStream(
            feed, sink, str(tmp_path / "log"), batch_window=10, fsync=False,
        ).run()
        assert report.duplicates_skipped == 0
        assert sink.state.snapshot.count("e") == 3

    def test_validation_quarantines_bad_facts(self, tmp_path):
        quarantine = QuarantineReport()
        sink = serve_sink()
        feed = fact_feed([
            (1, "assert", "tc", ("a", "b")),      # derived predicate
            (2, "assert", "e", ("a", "b", "c")),  # arity mismatch
            (3, "assert", "e", ("b", "c")),       # fine
        ])
        report = DeltaStream(
            feed, sink, str(tmp_path / "log"), batch_window=10, fsync=False,
            quarantine=quarantine,
        ).run()
        assert report.records_quarantined == 2
        reasons = [r.reason for r in quarantine.rejections]
        assert any("derived" in reason for reason in reasons)
        assert any("arity mismatch" in reason for reason in reasons)
        assert ("b", "c") in sink.state.snapshot.facts["e"]

    def test_malformed_feed_lines_are_quarantined(self, tmp_path):
        path = str(tmp_path / "feed.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("this is garbage\n")
            handle.write(
                '{"seq": 1, "op": "assert", "predicate": "e",'
                ' "fact": ["b", "c"]}\n'
            )
        sink = serve_sink()
        quarantine = QuarantineReport()
        report = DeltaStream(
            JsonlFeed(path), sink, str(tmp_path / "log"), fsync=False,
            quarantine=quarantine,
        ).run()
        assert report.records_quarantined == 1
        assert quarantine.rejections[0].kind == "feed"
        assert report.batches_applied == 1

    def test_crash_resume_matches_uninterrupted_run(self, tmp_path):
        entries = [
            (i, "assert", "e", (f"n{i}", f"n{i+1}")) for i in range(12)
        ]
        log_dir = str(tmp_path / "log")

        crashed = serve_sink()
        DeltaStream(
            fact_feed(entries), crashed, log_dir, batch_window=3,
            fsync=False, checkpoint_every=1, max_batches=2,
        ).run()
        resumed_sink = serve_sink()
        report = DeltaStream(
            fact_feed(entries), resumed_sink, log_dir, batch_window=3,
            fsync=False,
        ).run(resume=True)
        assert report.replayed_records > 0

        straight_sink = serve_sink()
        DeltaStream(
            fact_feed(entries), straight_sink, str(tmp_path / "log2"),
            batch_window=3, fsync=False,
        ).run()

        resumed = resumed_sink.state.snapshot
        straight = straight_sink.state.snapshot
        assert set(resumed.facts) == set(straight.facts)
        for predicate in straight.facts:
            assert resumed.facts[predicate] == straight.facts[predicate]

    def test_crash_before_first_checkpoint_interval_still_resumes(
        self, tmp_path
    ):
        """The pristine bootstrap checkpoint covers a crash in batch 1."""
        log_dir = str(tmp_path / "log")
        entries = [
            (1, "assert", "e", ("b", "c")),
            (2, "assert", "e", ("c", "d")),
        ]
        sink = serve_sink()
        stream = DeltaStream(
            fact_feed(entries), sink, log_dir, batch_window=2, fsync=False,
            checkpoint_every=100,
        )
        original = sink.apply

        def crashing(batch, quarantine):
            raise RuntimeError("killed mid-batch")

        sink.apply = crashing
        with pytest.raises(RuntimeError):
            stream.run()

        resumed_sink = serve_sink()
        report = DeltaStream(
            fact_feed(entries), resumed_sink, log_dir, fsync=False,
        ).run(resume=True)
        assert report.replayed_records == 2
        assert ("a", "d") in resumed_sink.state.snapshot.facts["tc"]

    def test_fresh_run_on_dirty_log_dir_refuses(self, tmp_path):
        log_dir = str(tmp_path / "log")
        DeltaStream(
            fact_feed([(1, "assert", "e", ("b", "c"))]), serve_sink(),
            log_dir, fsync=False,
        ).run()
        with pytest.raises(StreamError):
            DeltaStream(fact_feed([]), serve_sink(), log_dir, fsync=False).run()

    def test_checkpoint_refuses_a_different_program(self, tmp_path):
        log_dir = str(tmp_path / "log")
        DeltaStream(
            fact_feed([(1, "assert", "e", ("b", "c"))]), serve_sink(),
            log_dir, fsync=False,
        ).run()
        other = ServeStateSink(program="p(X) -> q(X).", inputs={})
        with pytest.raises(StreamError):
            DeltaStream(fact_feed([]), other, log_dir, fsync=False).run(
                resume=True
            )

    def test_live_state_restore_reconciles_in_place(self, tmp_path):
        from repro.serve.state import ServeState

        log_dir = str(tmp_path / "log")
        entries = [
            (1, "assert", "e", ("b", "c")),
            (2, "assert", "e", ("c", "d")),
        ]
        DeltaStream(
            fact_feed(entries), serve_sink(), log_dir, fsync=False,
        ).run()

        # A restarted server already handed its live ServeState to the
        # HTTP handlers; restore must reconcile it, not replace it.
        live = ServeState(TC_PROGRAM, inputs={"e": [("a", "b")]})
        sink = ServeStateSink(state=live)
        DeltaStream(fact_feed(entries), sink, log_dir, fsync=False).run(
            resume=True
        )
        assert sink.state is live
        assert ("a", "d") in live.snapshot.facts["tc"]

    def test_feed_faults_converge_with_exact_accounting(self, tmp_path):
        entries = [
            (i, "assert", "e", (f"n{i}", f"n{i+1}")) for i in range(30)
        ]
        faulty = FeedFaultInjector(
            fact_feed(entries), seed=5, torn_rate=0.15, duplicate_rate=0.15,
            reorder_rate=0.15,
        )
        sink = serve_sink()
        report = DeltaStream(
            faulty, sink, str(tmp_path / "log"), batch_window=4, fsync=False,
        ).run()
        assert faulty.torn > 0 and faulty.duplicated > 0 and faulty.reordered > 0
        # Every injected fault is accounted for: torn records (and their
        # duplicates) quarantine, surviving duplicates dedup by seq,
        # reordered records apply normally.
        assert (
            report.records_quarantined + report.duplicates_skipped
            == faulty.torn + faulty.duplicated
        )
        assert report.records_quarantined >= faulty.torn
        # A fact survives iff its record was not torn at delivery.
        assert sink.state.snapshot.count("e") == 31 - faulty.torn


class TestBackpressure:
    def make_clock(self):
        state = {"now": 0.0}
        return state, (lambda: state["now"])

    def slow_sink(self, state, cost):
        sink = serve_sink()
        original = sink.apply

        def apply(batch, quarantine):
            state["now"] += cost
            return original(batch, quarantine)

        sink.apply = apply
        return sink

    def test_graceful_governor_widens_the_window(self, tmp_path):
        state, clock = self.make_clock()
        sink = self.slow_sink(state, cost=5.0)
        governor = ResourceGovernor(
            budget_seconds=1.0, graceful=True, clock=clock,
        )
        entries = [(i, "assert", "e", (f"a{i}", f"b{i}")) for i in range(16)]
        report = DeltaStream(
            fact_feed(entries), sink, str(tmp_path / "log"), governor=governor,
            batch_window=2, max_window=8, fsync=False, clock=clock,
        ).run()
        assert report.backpressure_widenings > 0
        assert report.window > 2
        assert sink.state.snapshot.count("e") == 17  # nothing lost

    def test_strict_governor_raises(self, tmp_path):
        state, clock = self.make_clock()
        sink = self.slow_sink(state, cost=5.0)
        governor = ResourceGovernor(
            budget_seconds=1.0, graceful=False, clock=clock,
        )
        entries = [(i, "assert", "e", (f"a{i}", f"b{i}")) for i in range(4)]
        with pytest.raises(ResourceLimitError):
            DeltaStream(
                fact_feed(entries), sink, str(tmp_path / "log"),
                governor=governor, batch_window=2, fsync=False, clock=clock,
            ).run()

    def test_fast_batches_decay_the_window_back(self, tmp_path):
        state, clock = self.make_clock()
        sink = self.slow_sink(state, cost=0.0)
        entries = [(i, "assert", "e", (f"a{i}", f"b{i}")) for i in range(8)]
        stream = DeltaStream(
            fact_feed(entries), sink, str(tmp_path / "log"),
            governor=ResourceGovernor(
                budget_seconds=100.0, graceful=True, clock=clock,
            ),
            batch_window=2, fsync=False, clock=clock,
        )
        stream._window = 8.0  # as if pressure had widened it earlier
        report = stream.run()
        assert report.window < 8

    def test_staleness_and_metrics_recorded(self, tmp_path):
        tracer = RecordingTracer()
        sink = serve_sink()
        entries = [(i, "assert", "e", (f"a{i}", f"b{i}")) for i in range(6)]
        report = DeltaStream(
            fact_feed(entries), sink, str(tmp_path / "log"), batch_window=2,
            fsync=False, tracer=tracer,
        ).run()
        assert len(report.staleness_samples) == 6
        assert report.staleness_p99() >= report.staleness_p50() >= 0.0
        flat = json.dumps(tracer.metrics.snapshot())
        for metric in (
            "stream.staleness_seconds", "stream.apply_seconds",
            "stream.coalesce_ratio", "stream.batch_records",
        ):
            assert metric in flat
        summary = report.to_json()
        assert summary["batches_applied"] == 3
        assert summary["staleness_samples"] == 6


# ---------------------------------------------------------------------------
# Registry sink: the full SSST path with deployed targets
# ---------------------------------------------------------------------------


def company_registry(n=5):
    graph = PropertyGraph("registry")
    for i in range(n):
        graph.add_node(
            f"p{i}", "PhysicalPerson",
            fiscalCode=f"FC-P{i}", name=f"N{i}", gender="female",
        )
        graph.add_node(
            f"c{i}", "Business",
            fiscalCode=f"FC-C{i}", businessName=f"C{i} SpA",
            legalNature="spa", shareholdingCapital=1000.0,
        )
    k = 0
    for i in range(n):
        graph.add_edge(
            f"p{i}", f"c{i}", "OWNS", edge_id=f"stake-{k}", percentage=0.6,
        )
        k += 1
        graph.add_edge(
            f"p{i}", f"c{(i + 1) % n}", "OWNS",
            edge_id=f"stake-{k}", percentage=0.4,
        )
        k += 1
    return graph


REGISTRY_CHANGES = [
    {"seq": 1, "op": "add_node", "id": "p-new", "type": "PhysicalPerson",
     "properties": {"fiscalCode": "FC-NEW", "name": "N", "gender": "male"}},
    {"seq": 2, "op": "add_edge", "id": "stake-new", "source": "p-new",
     "target": "c1", "type": "OWNS", "properties": {"percentage": 0.8}},
    {"seq": 3, "op": "remove_edge", "id": "stake-0"},
    {"seq": 4, "op": "remove_node", "id": "c2"},
    {"seq": 5, "op": "add_node", "id": "p9", "type": "PhysicalPerson",
     "properties": {"fiscalCode": "FC-P9X", "name": "Z", "gender": "female"}},
    {"seq": 6, "op": "add_edge", "id": "stake-z", "source": "p9",
     "target": "c3", "type": "OWNS", "properties": {"percentage": 0.55}},
]


def final_registry():
    graph = company_registry()
    graph.add_node(
        "p-new", "PhysicalPerson",
        fiscalCode="FC-NEW", name="N", gender="male",
    )
    graph.add_edge("p-new", "c1", "OWNS", edge_id="stake-new", percentage=0.8)
    graph.remove_edge("stake-0")
    for edge in list(graph.edges()):
        if edge.source == "c2" or edge.target == "c2":
            graph.remove_edge(edge.id)
    graph.remove_node("c2")
    graph.add_node(
        "p9", "PhysicalPerson",
        fiscalCode="FC-P9X", name="Z", gender="female",
    )
    graph.add_edge("p9", "c3", "OWNS", edge_id="stake-z", percentage=0.55)
    return graph


def make_targets():
    graph_store = GraphStore()
    graph_store.deploy(
        SSST().translate(company_super_schema(), "property-graph").target_schema
    )
    triple_store = TripleStore()
    triple_store.deploy(
        SSST().translate(company_super_schema(), "rdf").target_schema
    )
    engine = RelationalEngine()
    engine.deploy(
        SSST().translate(company_super_schema(), "relational").target_schema
    )
    return graph_store, triple_store, engine


def make_registry_sink():
    sink = MaterializerSink(
        company_super_schema(),
        parse_metalog(programs.CONTROL_PROGRAM),
        company_registry(),
        instance_oid=9,
        retry=RetryPolicy(max_attempts=4, sleep=lambda _s: None),
    )
    targets = make_targets()
    sink.attach_graph_store(targets[0])
    sink.attach_triple_store(targets[1])
    sink.attach_relational_engine(targets[2])
    return sink, targets


def backend_states(graph_store, triple_store, engine):
    rows = {
        table: sorted(
            map(repr, (tuple(sorted(r.items())) for r in engine.rows(table)))
        )
        for table in engine.tables()
    }
    return (
        graph_store_state(graph_store),
        frozenset(triple_store.triples()),
        rows,
    )


def reference_states():
    """A clean batch run over the final registry, fully loaded."""
    report = IntensionalMaterializer().materialize(
        company_super_schema(), final_registry(),
        parse_metalog(programs.CONTROL_PROGRAM), instance_oid=9, retain=True,
    )
    graph_store, triple_store, engine = make_targets()
    load_graph_store(company_super_schema(), report.instance.data, graph_store)
    load_triple_store(
        company_super_schema(), report.instance.data, triple_store
    )
    graph_instance_to_relational(
        company_super_schema(), report.instance.data, engine
    )
    return backend_states(graph_store, triple_store, engine)


class TestRegistryStreaming:
    def test_straight_run_matches_batch_on_all_backends(self, tmp_path):
        sink, targets = make_registry_sink()
        DeltaStream(
            GeneratorFeed(REGISTRY_CHANGES), sink, str(tmp_path / "log"),
            batch_window=2, fsync=False,
        ).run()
        assert backend_states(*targets) == reference_states()

    def test_crash_resume_is_bit_identical_on_all_backends(self, tmp_path):
        log_dir = str(tmp_path / "log")
        crashed_sink, _ = make_registry_sink()
        DeltaStream(
            GeneratorFeed(REGISTRY_CHANGES), crashed_sink, log_dir,
            batch_window=2, fsync=False, checkpoint_every=1, max_batches=1,
        ).run()

        resumed_sink, targets = make_registry_sink()
        report = DeltaStream(
            GeneratorFeed(REGISTRY_CHANGES), resumed_sink, log_dir,
            batch_window=2, fsync=False,
        ).run(resume=True)
        assert report.replayed_records > 0
        assert backend_states(*targets) == reference_states()

    def test_crash_fault_mid_stream_then_resume(self, tmp_path):
        """A store-level CrashFault kills the run mid-batch; resuming
        from the durable log reaches the exact reference state."""
        log_dir = str(tmp_path / "log")
        sink = MaterializerSink(
            company_super_schema(),
            parse_metalog(programs.CONTROL_PROGRAM),
            company_registry(),
            instance_oid=9,
        )
        store = GraphStore()
        store.deploy(
            SSST().translate(
                company_super_schema(), "property-graph"
            ).target_schema
        )
        injector = FaultInjector(store, seed=1)
        sink.attach_graph_store(injector)
        stream = DeltaStream(
            GeneratorFeed(REGISTRY_CHANGES), sink, log_dir,
            batch_window=2, fsync=False, checkpoint_every=1,
        )
        # Arm after bootstrap: the next target mutation is the first
        # batch's flush, which crashes it mid-apply.
        original = sink.apply

        def crashing_apply(batch, quarantine):
            injector.crash_after = injector.mutations_applied
            return original(batch, quarantine)

        sink.apply = crashing_apply
        with pytest.raises(CrashFault):
            stream.run()

        resumed_sink, targets = make_registry_sink()
        DeltaStream(
            GeneratorFeed(REGISTRY_CHANGES), resumed_sink, log_dir,
            batch_window=2, fsync=False,
        ).run(resume=True)
        assert backend_states(*targets) == reference_states()

    def test_transient_store_faults_are_retried_through(self, tmp_path):
        sink = MaterializerSink(
            company_super_schema(),
            parse_metalog(programs.CONTROL_PROGRAM),
            company_registry(),
            instance_oid=9,
            retry=RetryPolicy(max_attempts=8, seed=3, sleep=lambda _s: None),
        )
        store = GraphStore()
        store.deploy(
            SSST().translate(
                company_super_schema(), "property-graph"
            ).target_schema
        )
        injector = FaultInjector(store, seed=3)
        sink.attach_graph_store(injector)
        # Start injecting only after bootstrap (a retried full load is
        # not idempotent; per-batch flushes are all-or-nothing).
        original = sink.apply

        def arming_apply(batch, quarantine):
            injector.fault_rate = 0.5
            return original(batch, quarantine)

        sink.apply = arming_apply
        DeltaStream(
            GeneratorFeed(REGISTRY_CHANGES), sink, str(tmp_path / "log"),
            batch_window=2, fsync=False,
        ).run()
        assert injector.faults_injected > 0
        reference_graph = reference_states()[0]
        assert graph_store_state(store) == reference_graph

    def test_rejected_batch_is_quarantined_whole_and_acked(self, tmp_path):
        sink, _targets = make_registry_sink()
        original = sink.apply
        state = {"failed": False}

        def flaky(batch, quarantine):
            if not state["failed"]:
                state["failed"] = True
                raise SchemaError("registry diverged")
            return original(batch, quarantine)

        sink.apply = flaky
        quarantine = QuarantineReport()
        report = DeltaStream(
            GeneratorFeed(REGISTRY_CHANGES), sink, str(tmp_path / "log"),
            batch_window=2, fsync=False, quarantine=quarantine,
        ).run()
        # The stream does not wedge: the bad batch quarantines whole,
        # is acknowledged, and the remaining batches apply.
        assert report.batches_applied == 3
        assert report.operations_dropped == 2
        assert any(
            "batch rejected" in r.reason for r in quarantine.rejections
        )

    def test_strict_mode_quarantines_existing_node_add(self, tmp_path):
        quarantine = QuarantineReport()
        sink, _targets = make_registry_sink()
        records = [
            {"seq": 1, "op": "add_node", "id": "p0",  # already exists
             "type": "PhysicalPerson",
             "properties": {"fiscalCode": "FC-DUP", "name": "D",
                            "gender": "male"}},
            {"seq": 2, "op": "add_node", "id": "fresh",
             "type": "PhysicalPerson",
             "properties": {"fiscalCode": "FC-F", "name": "F",
                            "gender": "male"}},
        ]
        report = DeltaStream(
            GeneratorFeed(records), sink, str(tmp_path / "log"),
            batch_window=2, fsync=False, quarantine=quarantine,
        ).run()
        assert report.records_quarantined == 1
        assert "already exists" in quarantine.rejections[0].reason
        assert sink.data.has_node("fresh")

    def test_unknown_type_quarantined_before_logging(self, tmp_path):
        quarantine = QuarantineReport()
        sink, _targets = make_registry_sink()
        records = [
            {"seq": 1, "op": "add_node", "id": "x", "type": "Spaceship",
             "properties": {}},
        ]
        report = DeltaStream(
            GeneratorFeed(records), sink, str(tmp_path / "log"),
            fsync=False, quarantine=quarantine,
        ).run()
        assert report.records_quarantined == 1
        assert "unknown node type" in quarantine.rejections[0].reason
        assert report.batches_applied == 0

    def test_edge_replace_in_one_window(self, tmp_path):
        sink, _targets = make_registry_sink()
        records = [
            {"seq": 1, "op": "remove_edge", "id": "stake-0"},
            {"seq": 2, "op": "add_edge", "id": "stake-0", "source": "p0",
             "target": "c0", "type": "OWNS",
             "properties": {"percentage": 0.9}},
        ]
        report = DeltaStream(
            GeneratorFeed(records), sink, str(tmp_path / "log"),
            batch_window=2, fsync=False,
        ).run()
        assert report.records_quarantined == 0
        assert sink.data.edge("stake-0").get("percentage") == 0.9
