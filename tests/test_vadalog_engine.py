"""Chase-engine tests: joins, recursion, negation, aggregation,
existentials, Skolem functors, the restricted chase, and guards."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EvaluationError, VadalogError, WardednessError
from repro.vadalog import Database, Engine, parse_program
from repro.vadalog.terms import Null, SkolemValue


def run(text, **inputs):
    return Engine().run(parse_program(text), inputs=inputs)


class TestBasics:
    def test_projection(self):
        result = run("p(X, Y) -> q(Y).", p=[(1, 2), (3, 4)])
        assert result.facts("q") == {(2,), (4,)}

    def test_join(self):
        result = run(
            "e(X, Y), e(Y, Z) -> two(X, Z).",
            e=[(1, 2), (2, 3), (3, 4)],
        )
        assert result.facts("two") == {(1, 3), (2, 4)}

    def test_constants_filter(self):
        result = run('p(X, "a") -> q(X).', p=[(1, "a"), (2, "b")])
        assert result.facts("q") == {(1,)}

    def test_facts_in_program(self):
        result = run('base(1).\nbase(2).\nbase(X) -> out(X).')
        assert result.facts("out") == {(1,), (2,)}

    def test_anonymous_variables_bind_nothing(self):
        result = run("p(X, _, _) -> q(X).", p=[(1, 2, 3), (1, 4, 5)])
        assert result.facts("q") == {(1,)}

    def test_multi_head(self):
        result = run("p(X) -> q(X), r(X).", p=[(1,)])
        assert result.facts("q") == {(1,)} and result.facts("r") == {(1,)}

    def test_input_database_is_not_mutated(self):
        db = Database()
        db.add("p", (1,))
        Engine().run(parse_program("p(X) -> q(X)."), database=db)
        assert db.facts("q") == set()


class TestRecursion:
    def test_transitive_closure(self):
        result = run(
            "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z).",
            e=[(1, 2), (2, 3), (3, 4)],
        )
        assert result.facts("tc") == {
            (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4),
        }

    def test_cyclic_closure_terminates(self):
        result = run(
            "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z).",
            e=[(1, 2), (2, 1)],
        )
        assert result.facts("tc") == {(1, 2), (2, 1), (1, 1), (2, 2)}

    def test_mutual_recursion(self):
        result = run(
            "start(X) -> even(X).\n"
            "even(X), succ(X, Y) -> odd(Y).\n"
            "odd(X), succ(X, Y) -> even(Y).",
            start=[(0,)],
            succ=[(i, i + 1) for i in range(5)],
        )
        assert result.facts("even") == {(0,), (2,), (4,)}
        assert result.facts("odd") == {(1,), (3,), (5,)}

    def test_semi_naive_equals_naive(self):
        edges = [(i, (i * 7 + 3) % 20) for i in range(20)]
        text = "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
        fast = Engine(semi_naive=True).run(parse_program(text), inputs={"e": edges})
        slow = Engine(semi_naive=False).run(parse_program(text), inputs={"e": edges})
        assert fast.facts("tc") == slow.facts("tc")


class TestNegation:
    def test_stratified_negation(self):
        result = run(
            "n(X), not hidden(X) -> visible(X).",
            n=[(1,), (2,), (3,)],
            hidden=[(2,)],
        )
        assert result.facts("visible") == {(1,), (3,)}

    def test_negation_after_recursion(self):
        result = run(
            "e(X, Y) -> path(X, Y).\n"
            "path(X, Y), e(Y, Z) -> path(X, Z).\n"
            "n(X), not path(X, X) -> acyclic(X).",
            e=[(1, 2), (2, 1), (3, 4)],
            n=[(1,), (2,), (3,), (4,)],
        )
        assert result.facts("acyclic") == {(3,), (4,)}

    def test_negation_in_cycle_rejected(self):
        with pytest.raises(VadalogError):
            run("p(X), not q(X) -> q(X).", p=[(1,)])

    def test_unsafe_negation_rejected(self):
        with pytest.raises(VadalogError):
            run("p(X), not q(Y) -> r(X).", p=[(1,)])


class TestConditionsAndExpressions:
    def test_arithmetic(self):
        result = run("p(X), Y = X * 2 + 1 -> q(Y).", p=[(3,), (5,)])
        assert result.facts("q") == {(7,), (11,)}

    def test_comparison_filters(self):
        result = run("p(X), X > 2, X <= 4 -> q(X).", p=[(1,), (3,), (4,), (5,)])
        assert result.facts("q") == {(3,), (4,)}

    def test_string_functions(self):
        result = run(
            'p(X), Y = concat(upper(X), "!") -> q(Y).', p=[("hi",)]
        )
        assert result.facts("q") == {("HI!",)}

    def test_assignment_to_bound_variable_checks_equality(self):
        result = run("p(X, Y), Y = X + 1 -> q(X).", p=[(1, 2), (1, 5)])
        assert result.facts("q") == {(1,)}

    def test_incomparable_condition_is_false(self):
        result = run('p(X), X < "z" -> q(X).', p=[(1,), ("a",)])
        assert result.facts("q") == {("a",)}

    def test_division_by_zero_raises(self):
        with pytest.raises(EvaluationError):
            run("p(X), Y = 1 / X -> q(Y).", p=[(0,)])

    def test_unknown_function_raises(self):
        with pytest.raises(EvaluationError):
            run("p(X), Y = nosuch(X) -> q(Y).", p=[(1,)])


class TestAggregation:
    def test_sum_with_contributors(self):
        result = run(
            "own(Z, Y, W), V = msum(W, <Z>) -> total(Y, V).",
            own=[("a", "c", 0.3), ("b", "c", 0.4), ("a", "d", 0.5)],
        )
        assert result.facts("total") == {("c", 0.7), ("d", 0.5)}

    def test_duplicate_contributor_counts_once(self):
        # Same contributor with two values: the maximum is used.
        result = run(
            "own(Z, Y, W), V = msum(W, <Z>) -> total(Y, V).",
            own=[("a", "c", 0.3), ("a", "c", 0.5)],
        )
        assert result.facts("total") == {("c", 0.5)}

    def test_count_min_max_avg(self):
        inputs = {"val": [("g", 1), ("g", 2), ("g", 3), ("h", 9)]}
        for func, expected in [
            ("mcount", {("g", 3), ("h", 1)}),
            ("mmax", {("g", 3), ("h", 9)}),
            ("min", {("g", 1), ("h", 9)}),
            ("avg", {("g", 2.0), ("h", 9.0)}),
        ]:
            result = run(
                f"val(G, W), V = {func}(W, <W>) -> out(G, V).", **inputs
            )
            assert result.facts("out") == expected, func

    def test_company_control_example_4_2(self):
        # The paper's running example: joint control through subsidiaries.
        result = run(
            "company(X) -> controls(X, X).\n"
            "controls(X, Z), own(Z, Y, W), V = msum(W, <Z>), V > 0.5"
            " -> controls(X, Y).",
            company=[("a",), ("b",), ("c",), ("d",)],
            own=[
                ("a", "b", 0.6),   # a controls b directly
                ("b", "c", 0.4),   # jointly with a's direct 0.2 -> control
                ("a", "c", 0.2),
                ("c", "d", 0.51),  # and transitively d through c
            ],
        )
        controls = {p for p in result.facts("controls") if p[0] != p[1]}
        # b alone holds only 40% of c, so control of c (and hence d) is
        # exclusively a's, jointly through b; c controls d directly.
        assert controls == {
            ("a", "b"), ("a", "c"), ("a", "d"), ("c", "d"),
        }

    def test_aggregate_filter_after(self):
        result = run(
            "own(Z, Y, W), V = msum(W, <Z>), V > 0.5 -> major(Y).",
            own=[("a", "c", 0.3), ("b", "c", 0.3), ("a", "d", 0.2)],
        )
        assert result.facts("major") == {("c",)}

    def test_two_aggregates_rejected(self):
        with pytest.raises(VadalogError):
            run(
                "p(X, W), V = msum(W, <X>), U = mcount(W, <X>) -> q(V, U).",
                p=[(1, 2)],
            )

    def test_aggregate_in_arithmetic(self):
        result = run(
            "own(Z, Y, W), V = msum(W, <Z>) * 100 -> pct(Y, V).",
            own=[("a", "c", 0.3), ("b", "c", 0.4)],
        )
        ((company, value),) = result.facts("pct")
        assert company == "c" and value == pytest.approx(70.0)


class TestExistentialsAndSkolems:
    def test_fresh_nulls_per_body_match(self):
        result = run("p(X) -> q(X, Y).", p=[(1,), (2,)])
        facts = result.facts("q")
        assert len(facts) == 2
        nulls = {f[1] for f in facts}
        assert all(isinstance(n, Null) for n in nulls)
        assert len(nulls) == 2  # distinct nulls per match

    def test_restricted_chase_skips_satisfied_heads(self):
        result = run(
            "p(X) -> q(X, Y).",
            p=[(1,)],
            q=[(1, "known")],
        )
        assert result.facts("q") == {(1, "known")}
        assert result.stats.nulls_created == 0

    def test_skolem_determinism_and_injectivity(self):
        result = run("p(X) -> q(X, #mk(X)).", p=[(1,), (2,)])
        facts = dict(result.facts("q"))
        assert facts[1] == SkolemValue("mk", (1,))
        assert facts[1] != facts[2]
        # A second run produces the same values.
        again = run("p(X) -> q(X, #mk(X)).", p=[(1,), (2,)])
        assert again.facts("q") == result.facts("q")

    def test_skolem_range_disjointness(self):
        result = run("p(X) -> q(#f(X), #g(X)).", p=[(1,)])
        fact = next(iter(result.facts("q")))
        assert fact[0] != fact[1]

    def test_shared_existential_across_head_atoms(self):
        result = run("p(X) -> q(X, Y), r(Y).", p=[(1,)])
        q_fact = next(iter(result.facts("q")))
        r_fact = next(iter(result.facts("r")))
        assert q_fact[1] == r_fact[0]

    def test_non_warded_program_rejected(self):
        text = (
            "p(X) -> r(X, Y).\n"
            "r(X, Y) -> q(Y, X).\n"
            "q(Y, X), r(X, Z) -> t(Y, Z)."
        )
        with pytest.raises(WardednessError):
            Engine().run(parse_program(text), inputs={"p": [(1,)]})
        # ... but runs with the check disabled.
        result = Engine(check_wardedness=False).run(
            parse_program(text), inputs={"p": [(1,)]}
        )
        assert len(result.facts("t")) == 1

    def test_null_budget_guard(self):
        # A warded but chase-diverging ping-pong: each fresh null seeds a
        # new one.  The budget guard must stop it.
        engine = Engine(max_nulls=5)
        with pytest.raises(EvaluationError):
            engine.run(
                parse_program("p(X) -> q(X, Y).\nq(X, Y) -> p(Y)."),
                inputs={"p": [(1,)]},
            )


class TestMultiHeadStratification:
    """Regression: every head of a multi-head rule must land in the same
    stratum, or consumers of the earlier head evaluate too soon."""

    def test_co_heads_share_a_stratum(self):
        from repro.vadalog.stratify import stratify

        text = (
            "base(X) -> p(X).\n"
            "q0(X) -> q(X).\n"
            "q(X) -> q2(X), p(X).\n"
            "q2(X), q2(Y) -> q3(X, Y).\n"
            "p(X), p(Y) -> pp(X, Y)."
        )
        strata = stratify(parse_program(text))
        of = {
            p: i
            for i, s in enumerate(strata)
            for r in s.rules
            for p in r.head_predicates()
        }
        assert of["p"] == of["q2"]
        assert of["q3"] > of["q2"]

    def test_consumer_of_co_head_sees_all_facts(self):
        # Before the co-head fix, the q(X) -> q2(X), p(X) rule was
        # scheduled with p's (later) stratum while q3 read q2 from an
        # earlier one, silently yielding q3 = {}.
        result = run(
            "base(X) -> p(X).\n"
            "q0(X) -> q(X).\n"
            "q(X) -> q2(X), p(X).\n"
            "q2(X), q2(Y) -> q3(X, Y).\n"
            "p(X), p(Y) -> pp(X, Y).",
            base=[("a",)],
            q0=[("b",)],
        )
        assert result.facts("q3") == {("b", "b")}
        assert result.facts("pp") == {
            ("a", "a"), ("a", "b"), ("b", "a"), ("b", "b")
        }

    def test_pseudo_edges_do_not_mark_recursion(self):
        from repro.vadalog.stratify import stratify

        strata = stratify(parse_program("a(X) -> b(X), c(X)."))
        assert all(not stratum.recursive for stratum in strata)


class TestValidation:
    def test_empty_head_rejected(self):
        from repro.vadalog.ast import Program, Rule, Atom
        from repro.vadalog.terms import Variable

        program = Program(rules=[Rule((Atom("p", (Variable("X"),)),), ())])
        with pytest.raises(VadalogError):
            Engine().run(program)

    def test_non_ground_program_fact_rejected(self):
        with pytest.raises(VadalogError):
            run("p(X).")


@given(
    st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 8)),
        min_size=1, max_size=25,
    )
)
@settings(max_examples=40, deadline=None)
def test_transitive_closure_matches_networkx(edges):
    result = run(
        "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z).",
        e=edges,
    )
    nxg = nx.DiGraph(edges)
    closure = nx.transitive_closure(nxg, reflexive=False)
    assert result.facts("tc") == set(closure.edges())
