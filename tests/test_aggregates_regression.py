"""Regression tests for the aggregate-semantics and savepoint bug fixes.

Each test here encodes a behavior that was wrong (or crashed) before the
fix it names; together they pin the corrected semantics:

- per-function collision resolution in :class:`GroupAccumulator`
  (``min`` must keep the *smaller* value when a contributor re-appears);
- mixed-type contributions resolve deterministically instead of raising
  ``TypeError`` out of the chase;
- ``prod`` is no longer treated as monotonic in recursive strata, while
  ``mprod`` asserts validated non-decreasing use (every factor >= 1);
- aggregate contributor lists must name variables, in both surface
  syntaxes;
- structural savepoint rollback detects interleaved deletions via the
  graph's mutation epoch instead of silently removing wrong elements.
"""

import pytest

from repro.errors import (
    DeploymentError,
    EvaluationError,
    ParseError,
    VadalogError,
)
from repro.graph.property_graph import PropertyGraph
from repro.metalog.parser import parse_metalog_rule
from repro.vadalog import Engine, parse_program
from repro.vadalog.aggregates import (
    GroupAccumulator,
    aggregate,
    is_monotonic,
    is_recursion_safe,
)


def run(text, **inputs):
    return Engine().run(parse_program(text), inputs=inputs)


class TestCollisionResolution:
    """A contributor seen twice must resolve per aggregate function."""

    def test_min_keeps_smaller_duplicate(self):
        # Before the fix every function kept the larger value, so a
        # duplicated contributor silently inflated minima.
        result = run(
            "val(C, W), V = mmin(W, <C>) -> low(V).",
            val=[("a", 5), ("a", 3), ("b", 7)],
        )
        assert result.facts("low") == {(3,)}

    def test_max_keeps_larger_duplicate(self):
        result = run(
            "val(C, W), V = mmax(W, <C>) -> high(V).",
            val=[("a", 5), ("a", 3)],
        )
        assert result.facts("high") == {(5,)}

    def test_sum_keeps_monotone_witness(self):
        result = run(
            "own(Z, Y, W), V = msum(W, <Z>) -> total(Y, V).",
            own=[("a", "c", 0.3), ("a", "c", 0.5)],
        )
        assert result.facts("total") == {("c", 0.5)}

    def test_unit_level_resolution_is_per_function(self):
        for function, expected in [("min", 3), ("max", 5), ("sum", 5)]:
            acc = GroupAccumulator(function)
            acc.contribute(("g",), ("a",), 5)
            acc.contribute(("g",), ("a",), 3)
            assert dict(acc.results()) == {("g",): expected}, function

    def test_none_contribution_is_replaced(self):
        acc = GroupAccumulator("min")
        acc.contribute(("g",), ("a",), None)
        acc.contribute(("g",), ("a",), 4)
        assert dict(acc.results()) == {("g",): 4}


class TestMixedTypeContributions:
    """Unorderable values must not crash the chase."""

    def test_mixed_types_resolve_deterministically(self):
        # Before the fix this raised TypeError ('<' between str and int)
        # straight out of Engine.run.
        acc = GroupAccumulator("max")
        acc.contribute(("g",), ("a",), 2)
        acc.contribute(("g",), ("a",), "x")
        forward = dict(acc.results())
        acc = GroupAccumulator("max")
        acc.contribute(("g",), ("a",), "x")
        acc.contribute(("g",), ("a",), 2)
        assert forward == dict(acc.results())

    def test_engine_level_mixed_types(self):
        result = run(
            "val(C, W), V = mmax(W, <C>) -> out(V).",
            val=[("a", 2), ("a", "x")],
        )
        assert len(result.facts("out")) == 1

    def test_merge_is_partition_order_independent(self):
        # The parallel executor merges partial accumulators; associativity
        # plus commutativity of the resolution makes the partitioning
        # invisible.
        contributions = [(("a",), 5), (("b",), 2), (("a",), 3), (("c",), 9)]
        whole = GroupAccumulator("min")
        for contributor, value in contributions:
            whole.contribute(("g",), contributor, value)
        left, right = GroupAccumulator("min"), GroupAccumulator("min")
        for i, (contributor, value) in enumerate(contributions):
            (left if i % 2 else right).contribute(("g",), contributor, value)
        left.merge(right)
        assert dict(whole.results()) == dict(left.results())

        restored = GroupAccumulator("min")
        restored.load_state(whole.state())
        assert dict(restored.results()) == dict(whole.results())


class TestProductMonotonicity:
    def test_prod_is_not_monotonic(self):
        assert not is_monotonic("prod")
        assert not is_monotonic("mprod")
        assert is_recursion_safe("mprod")
        assert not is_recursion_safe("prod")

    def test_non_recursive_prod_still_works(self):
        result = run(
            "val(C, W), V = prod(W, <C>) -> out(V).",
            val=[("a", 2), ("b", 3), ("c", 4)],
        )
        assert result.facts("out") == {(24,)}
        assert aggregate("prod", {("a",): 2, ("b",): 3, ("c",): 4}) == 24

    def test_recursive_prod_rejected_with_hint(self):
        text = (
            "base(X, W) -> acc(X, W).\n"
            "acc(X, W), step(X, Y, U), V = prod(U, <Y>) -> acc(Y, V).\n"
        )
        with pytest.raises(VadalogError, match="mprod"):
            run(text, base=[("a", 2)], step=[("a", "b", 3)])

    def test_recursive_mprod_nondecreasing_accepted(self):
        text = (
            "base(X, W) -> acc(X, W).\n"
            "acc(X, W), step(X, Y, U), V = mprod(U, <Y>) -> acc(Y, V).\n"
        )
        result = run(text, base=[("a", 2)], step=[("a", "b", 3), ("b", "c", 4)])
        assert ("b", 3) in result.facts("acc")

    def test_recursive_mprod_shrinking_factor_raises(self):
        acc = GroupAccumulator("mprod", recursive=True)
        acc.contribute(("g",), ("a",), 2)  # factor >= 1: fine
        with pytest.raises(EvaluationError, match="non-decreasing"):
            acc.contribute(("g",), ("b",), 0.5)

    def test_non_recursive_mprod_allows_shrinking(self):
        acc = GroupAccumulator("mprod")
        acc.contribute(("g",), ("a",), 0.5)
        acc.contribute(("g",), ("b",), 4)
        assert dict(acc.results()) == {("g",): 2.0}


class TestContributorValidation:
    def test_vadalog_constant_contributor_rejected(self):
        with pytest.raises(ParseError, match="not a variable"):
            parse_program("own(Z, Y, W), V = msum(W, <z>) -> total(Y, V).")

    def test_vadalog_variable_contributors_accepted(self):
        program = parse_program(
            "own(Z, Y, W), V = msum(W, <Z, _Aux>) -> total(Y, V)."
        )
        assert len(program.rules) == 1

    def test_metalog_boolean_contributor_rejected(self):
        with pytest.raises(ParseError):
            parse_metalog_rule(
                "(x: B)[:OWNS; percentage: w](y: B), v = msum(w, <true>)"
                " -> (y: B; total: v)."
            )

    def test_metalog_variable_contributor_accepted(self):
        rule = parse_metalog_rule(
            "(x: B)[:OWNS; percentage: w](y: B), v = msum(w, <x>), v > 0.5"
            " -> exists c : (x)[c: CONTROLS](y)."
        )
        assert rule is not None


class TestStaleSavepointMark:
    def _graph(self):
        graph = PropertyGraph("g")
        graph.add_node(1, "N")
        graph.add_node(2, "N")
        graph.add_edge(1, 2, "R")
        return graph

    def test_rollback_after_deletion_raises(self):
        graph = self._graph()
        mark = graph.insertion_mark()
        graph.add_node(3, "N")
        edge = graph.add_edge(2, 3, "R")
        graph.remove_edge(edge.id)
        # Before the fix this popped whichever edge happened to be last
        # in insertion order — corrupting the pre-savepoint graph.
        with pytest.raises(DeploymentError, match="stale insertion mark"):
            graph.rollback_to_mark(mark)

    def test_rollback_after_node_removal_raises(self):
        graph = self._graph()
        mark = graph.insertion_mark()
        graph.add_node(3, "N")
        graph.remove_node(3)
        with pytest.raises(DeploymentError, match="stale insertion mark"):
            graph.rollback_to_mark(mark)

    def test_insert_only_rollback_still_works(self):
        graph = self._graph()
        mark = graph.insertion_mark()
        graph.add_node(3, "N")
        graph.add_edge(1, 3, "R")
        graph.rollback_to_mark(mark)
        assert graph.node_count == 2 and graph.edge_count == 1

    def test_nested_savepoints_stay_valid_after_inner_rollback(self):
        graph = self._graph()
        outer = graph.insertion_mark()
        graph.add_node(3, "N")
        inner = graph.insertion_mark()
        graph.add_node(4, "N")
        graph.rollback_to_mark(inner)  # rollback itself must not bump epoch
        graph.rollback_to_mark(outer)
        assert graph.node_count == 2

    def test_copy_carries_epoch(self):
        graph = self._graph()
        edge = next(iter(graph.edges()))
        graph.remove_edge(edge.id)
        clone = graph.copy()
        mark = clone.insertion_mark()
        clone.add_node(99, "N")
        clone.rollback_to_mark(mark)
        assert clone.node_count == graph.node_count
