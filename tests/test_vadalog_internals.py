"""Database, stratification, wardedness, aggregates, annotations."""

import pytest

from repro.errors import EvaluationError, VadalogError
from repro.vadalog import Database, check_piecewise_linear, check_warded, parse_program, stratify
from repro.vadalog.aggregates import GroupAccumulator, aggregate, is_monotonic
from repro.vadalog.annotations import resolve_inputs
from repro.vadalog.database import Relation
from repro.vadalog.warded import affected_positions, dangerous_variables, harmful_variables
from repro.vadalog.terms import Variable


class TestDatabase:
    def test_add_and_dedup(self):
        db = Database()
        assert db.add("p", (1, 2))
        assert not db.add("p", (1, 2))
        assert db.count("p") == 1

    def test_arity_enforced(self):
        db = Database()
        db.add("p", (1, 2))
        with pytest.raises(EvaluationError):
            db.add("p", (1,))

    def test_indexed_lookup(self):
        relation = Relation("p")
        for i in range(100):
            relation.add((i % 10, i))
        hits = list(relation.lookup([(0, 3)]))
        assert len(hits) == 10
        assert all(f[0] == 3 for f in hits)
        # Multi-position constraint picks the most selective index.
        assert list(relation.lookup([(0, 3), (1, 13)])) == [(3, 13)]
        assert list(relation.lookup([(0, 3), (1, 14)])) == []

    def test_index_stays_fresh_after_adds(self):
        relation = Relation("p")
        relation.add((1, "a"))
        list(relation.lookup([(0, 1)]))  # builds the index
        relation.add((1, "b"))
        assert len(list(relation.lookup([(0, 1)]))) == 2

    def test_copy_and_merge(self):
        db = Database()
        db.add("p", (1,))
        clone = db.copy()
        clone.add("p", (2,))
        assert db.count("p") == 1
        other = Database()
        other.add("q", (9,))
        assert db.merge(other) == 1
        assert db.count("q") == 1


class TestStratify:
    def test_single_stratum_for_mutual_recursion(self):
        program = parse_program(
            "a(X) -> b(X).\nb(X) -> a(X).\nseed(X) -> a(X)."
        )
        strata = stratify(program)
        joint = [s for s in strata if {"a", "b"} <= s.predicates]
        assert len(joint) == 1
        assert joint[0].recursive

    def test_dependencies_evaluated_first(self):
        program = parse_program(
            "base(X) -> mid(X).\nmid(X) -> top(X)."
        )
        strata = stratify(program)
        order = {p: s.index for s in strata for p in s.predicates if p in ("mid", "top")}
        assert order["mid"] < order["top"]

    def test_negative_cycle_rejected(self):
        program = parse_program("p(X), not q(X) -> q(X).")
        with pytest.raises(VadalogError):
            stratify(program)

    def test_self_loop_marks_recursive(self):
        program = parse_program("e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z).")
        strata = stratify(program)
        tc_stratum = next(s for s in strata if "tc" in s.predicates)
        assert tc_stratum.recursive


class TestWardedness:
    def test_affected_positions_propagate(self):
        program = parse_program(
            "p(X) -> r(X, Y).\nr(X, Y) -> s(Y)."
        )
        affected = affected_positions(program)
        assert ("r", 1) in affected
        assert ("s", 0) in affected
        assert ("r", 0) not in affected

    def test_harmful_and_dangerous(self):
        program = parse_program(
            "p(X) -> r(X, Y).\nr(X, Y) -> q(Y, X)."
        )
        affected = affected_positions(program)
        rule = program.rules[1]
        assert harmful_variables(rule, affected) == {Variable("Y")}
        assert dangerous_variables(rule, affected) == {Variable("Y")}

    def test_warded_program_accepted(self):
        program = parse_program(
            "company(X) -> controls(X, X).\n"
            "controls(X, Z), own(Z, Y, W), V = msum(W, <Z>), V > 0.5 -> controls(X, Y)."
        )
        assert check_warded(program).is_warded

    def test_ward_is_identified(self):
        program = parse_program(
            "p(X) -> r(X, Y).\nr(X, Y), s(X, Z) -> t(Y, Z)."
        )
        report = check_warded(program)
        assert report.is_warded
        assert report.wards[1].predicate == "r"

    def test_non_warded_detected(self):
        program = parse_program(
            "p(X) -> r(X, Y).\n"
            "r(X, Y) -> q(Y, X).\n"
            "q(Y, X), r(X, Z) -> t(Y, Z)."
        )
        report = check_warded(program)
        assert not report.is_warded
        assert "no ward" in report.violations[0]

    def test_skolem_heads_are_not_affected(self):
        # Linker Skolem functors range over I, not over the nulls N, so
        # they never create affected positions (Section 4).
        program = parse_program("p(X) -> r(#mk(X), X).\nr(K, X) -> s(K).")
        assert affected_positions(program) == set()

    def test_piecewise_linear(self):
        linear = parse_program(
            "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
        )
        assert check_piecewise_linear(linear)
        nonlinear = parse_program(
            "e(X, Y) -> tc(X, Y).\ntc(X, Y), tc(Y, Z) -> tc(X, Z)."
        )
        assert not check_piecewise_linear(nonlinear)


class TestAggregatesModule:
    def test_canonicalization(self):
        assert is_monotonic("msum") and is_monotonic("count")
        assert not is_monotonic("min") and not is_monotonic("avg")

    def test_aggregate_functions(self):
        contributions = {("a",): 1, ("b",): 2, ("c",): 3}
        assert aggregate("sum", contributions) == 6
        assert aggregate("count", contributions) == 3
        assert aggregate("min", contributions) == 1
        assert aggregate("max", contributions) == 3
        assert aggregate("avg", contributions) == 2.0
        assert aggregate("prod", contributions) == 6

    def test_unknown_function(self):
        with pytest.raises(EvaluationError):
            aggregate("median", {})

    def test_accumulator_max_on_collision(self):
        accumulator = GroupAccumulator("sum")
        accumulator.contribute(("g",), ("z",), 1)
        accumulator.contribute(("g",), ("z",), 5)
        accumulator.contribute(("g",), ("w",), 2)
        assert dict(accumulator.results()) == {("g",): 7}


class _ListSource:
    def __init__(self, rows):
        self.rows = rows
        self.queries = []

    def extract(self, query):
        self.queries.append(query)
        return self.rows


class TestAnnotations:
    def test_resolve_inputs_single_source(self):
        program = parse_program('@input("own", "scan-own").\np(X) -> q(X).')
        source = _ListSource([(1, 2)])
        db = resolve_inputs(program, {"main": source})
        assert db.facts("own") == {(1, 2)}
        assert source.queries == ["scan-own"]

    def test_named_source(self):
        program = parse_program('@input("own", "q", "neo").')
        neo = _ListSource([(1,)])
        other = _ListSource([(2,)])
        db = resolve_inputs(program, {"neo": neo, "other": other})
        assert db.facts("own") == {(1,)}

    def test_ambiguous_source_rejected(self):
        program = parse_program('@input("own").')
        with pytest.raises(EvaluationError):
            resolve_inputs(program, {"a": _ListSource([]), "b": _ListSource([])})

    def test_unknown_source_rejected(self):
        program = parse_program('@input("own", "q", "ghost").')
        with pytest.raises(EvaluationError):
            resolve_inputs(program, {"real": _ListSource([])})
