"""The translated intensional component over relational targets
(Algorithm 1 output (ii))."""

import pytest

from repro.deploy import RelationalEngine
from repro.errors import TranslationError
from repro.finkg import programs
from repro.finkg.company_schema import company_super_schema
from repro.metalog import parse_metalog
from repro.ssst import (
    SSST,
    graph_instance_to_relational,
    reason_over_relational,
    translate_sigma_for_relational,
)


@pytest.fixture(scope="module")
def relational_schema():
    return SSST().translate(company_super_schema(), "relational").target_schema


@pytest.fixture()
def deployed(company_schema, tiny_instance, relational_schema):
    engine = RelationalEngine()
    engine.deploy(relational_schema)
    graph_instance_to_relational(company_schema, tiny_instance, engine)
    return engine


class TestTranslation:
    def test_node_atom_joins_member_chain(self, company_schema, relational_schema):
        sigma = parse_metalog(
            "(x: Business; businessName: n) -> exists c : (x)[c: CONTROLS](x)."
        )
        compiled = translate_sigma_for_relational(
            sigma, company_schema, relational_schema
        )
        rule = compiled.program.rules[0]
        predicates = [a.predicate for a in rule.body_atoms()]
        # businessName lives on LegalPerson: the chain join appears.
        assert "Business" in predicates and "LegalPerson" in predicates

    def test_mn_edge_uses_bridge_table(self, company_schema, relational_schema):
        sigma = parse_metalog(programs.CONTROL_PROGRAM)
        compiled = translate_sigma_for_relational(
            sigma, company_schema, relational_schema
        )
        assert "OWNS" in compiled.input_tables
        assert compiled.derived_tables == {"CONTROLS": "CONTROLS"}

    def test_fk_edge_reads_holder_column(self, company_schema, relational_schema):
        sigma = parse_metalog(
            "(s: Share)[: BELONGS_TO](b: Business)"
            " -> exists c : (b)[c: CONTROLS](b)."
        )
        compiled = translate_sigma_for_relational(
            sigma, company_schema, relational_schema
        )
        rule = compiled.program.rules[0]
        header = [c.name for c in relational_schema.table("Share").columns]
        fk_index = header.index("BELONGS_TO_fiscalCode")
        # Some Share atom binds the FK column (the edge-traversal one).
        assert any(
            a.predicate == "Share" and str(a.terms[fk_index]) != "?_"
            for a in rule.body_atoms()
        )

    def test_star_rejected(self, company_schema, relational_schema):
        sigma = parse_metalog(
            "(x: Business) ([:OWNS])* (y: Business)"
            " -> exists c : (x)[c: CONTROLS](y)."
        )
        with pytest.raises(TranslationError):
            translate_sigma_for_relational(
                sigma, company_schema, relational_schema
            )

    def test_attribute_head_rejected(self, company_schema, relational_schema):
        sigma = parse_metalog(programs.STAKEHOLDERS_PROGRAM)
        with pytest.raises(TranslationError):
            translate_sigma_for_relational(
                sigma, company_schema, relational_schema
            )


class TestReasoning:
    def test_owns_then_control_over_tables(
        self, company_schema, relational_schema, deployed
    ):
        # Stage 1: derive OWNS rows from HOLDS/Share/BELONGS_TO tables.
        derived = reason_over_relational(
            parse_metalog(programs.OWNS_PROGRAM),
            company_schema, relational_schema, deployed,
        )
        owns = {
            (r["OWNS_src_fiscalCode"], r["OWNS_tgt_fiscalCode"], r["percentage"])
            for r in derived["OWNS"]
        }
        assert ("FCB1", "FCB2", 0.6) in owns
        assert ("FCp1", "FCB1", 0.8) in owns
        assert deployed.count("OWNS") == len(owns)

        # Stage 2: control over the now-populated OWNS bridge.
        derived2 = reason_over_relational(
            parse_metalog(programs.PERSON_CONTROL_PROGRAM),
            company_schema, relational_schema, deployed,
        )
        controls = {
            (r["CONTROLS_src_fiscalCode"], r["CONTROLS_tgt_fiscalCode"])
            for r in derived2["CONTROLS"]
            if r["CONTROLS_src_fiscalCode"] != r["CONTROLS_tgt_fiscalCode"]
        }
        assert controls == {
            ("FCp1", "FCB1"), ("FCp1", "FCB2"), ("FCp1", "FCB3"),
            ("FCB1", "FCB2"), ("FCB1", "FCB3"),
        }

    def test_rerun_is_idempotent(
        self, company_schema, relational_schema, deployed
    ):
        sigma = parse_metalog(programs.OWNS_PROGRAM)
        first = reason_over_relational(
            sigma, company_schema, relational_schema, deployed
        )
        again = reason_over_relational(
            sigma, company_schema, relational_schema, deployed
        )
        assert first["OWNS"] and not again["OWNS"]

    def test_agrees_with_algorithm_2(
        self, company_schema, relational_schema, deployed, tiny_instance
    ):
        from repro.ssst import IntensionalMaterializer

        # The dictionary route (Algorithm 2) over the same instance.
        materializer = IntensionalMaterializer()
        staged = materializer.materialize(
            company_schema, tiny_instance,
            parse_metalog(programs.OWNS_PROGRAM), 1,
        )
        dictionary_owns = {
            (f"FC{e.source}" if not e.source.startswith("FC") else e.source,
             f"FC{e.target}" if not e.target.startswith("FC") else e.target)
            for e in staged.instance.data.edges("OWNS")
        }
        derived = reason_over_relational(
            parse_metalog(programs.OWNS_PROGRAM),
            company_schema, relational_schema, deployed,
        )
        relational_owns = {
            (r["OWNS_src_fiscalCode"], r["OWNS_tgt_fiscalCode"])
            for r in derived["OWNS"]
        }
        assert relational_owns == dictionary_owns
