"""Partition-parallel chase: differential battery, crashes, governance.

The contract under test (:mod:`repro.vadalog.parallel`) is strict:
``Engine.run(workers=N)`` must produce *bit-identical* output to the
serial interpreter for every program — parallel-safe strata through the
partitioned fan-out, the rest through the serial barrier.  The
randomized battery reuses the exact program generators of the serial
differential suite (:mod:`tests.test_engine_plans`), with the
interpreted (plan-free) engine as the oracle.
"""

import random

import pytest

from repro.deploy.resilience import CrashFault, FaultInjector
from repro.obs import RecordingTracer, ResourceGovernor
from repro.obs.governor import STATUS_BUDGET_EXCEEDED
from repro.vadalog import Engine, parse_program
from repro.vadalog.parallel import ParallelChase, WorkerCrashError
from tests.test_engine_plans import (
    _aggregate_case,
    _canon,
    _existential_case,
    _recursion_case,
)


@pytest.fixture(autouse=True)
def tiny_partitions(monkeypatch):
    """Dispatch every task to real workers (no inline short-circuit)."""
    import repro.vadalog.parallel as parallel

    monkeypatch.setattr(parallel, "DEFAULT_MIN_PARTITION", 1)


def assert_parallel_matches_serial(text, predicates, inputs, workers=2, **engine_kw):
    program = parse_program(text)
    oracle = Engine(use_plans=False).run(program, inputs=inputs)
    result = Engine(workers=workers, **engine_kw).run(program, inputs=inputs)
    for predicate in predicates:
        assert _canon(oracle.facts(predicate)) == _canon(
            result.facts(predicate)
        ), predicate
    return oracle, result


class TestRandomizedParallelDifferential:
    """The 52-program battery, parallel vs the serial interpreter."""

    @pytest.mark.parametrize("seed", range(20))
    def test_negation_free_recursion(self, seed):
        text, predicates, inputs = _recursion_case(random.Random(1000 + seed))
        assert_parallel_matches_serial(text, predicates, inputs)

    @pytest.mark.parametrize("seed", range(16))
    def test_monotonic_aggregates(self, seed):
        text, predicates, inputs = _aggregate_case(random.Random(2000 + seed))
        assert_parallel_matches_serial(text, predicates, inputs)

    @pytest.mark.parametrize("seed", range(16))
    def test_existential_heads(self, seed):
        text, predicates, inputs = _existential_case(random.Random(3000 + seed))
        assert_parallel_matches_serial(text, predicates, inputs)

    @pytest.mark.parametrize("seed", [0, 7, 13])
    def test_thread_backend_subset(self, seed):
        text, predicates, inputs = _recursion_case(random.Random(1000 + seed))
        assert_parallel_matches_serial(
            text, predicates, inputs, parallel_backend="thread"
        )

    @pytest.mark.parametrize("seed", [2, 9])
    def test_four_workers_subset(self, seed):
        text, predicates, inputs = _aggregate_case(random.Random(2000 + seed))
        assert_parallel_matches_serial(text, predicates, inputs, workers=4)


class TestStatsParity:
    def test_stats_match_serial_engine(self):
        text = (
            "e(X, Y) -> tc(X, Y).\n"
            "tc(X, Y), e(Y, Z) -> tc(X, Z).\n"
            "tc(X, Y), S = mcount(Y) -> fan(X, S).\n"
        )
        inputs = {"e": [(f"n{i}", f"n{(i * 7 + 3) % 40}") for i in range(120)]}
        program = parse_program(text)
        serial = Engine().run(program, inputs=inputs)
        result = Engine(workers=2).run(program, inputs=inputs)
        assert result.facts("tc") == serial.facts("tc")
        assert result.facts("fan") == serial.facts("fan")
        assert result.stats.rule_firings == serial.stats.rule_firings
        assert result.stats.facts_derived == serial.stats.facts_derived
        assert result.stats.iterations == serial.stats.iterations


class TestObservability:
    def test_spans_and_skew_histogram(self):
        tracer = RecordingTracer()
        text = "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
        inputs = {"e": [(f"n{i}", f"n{(i * 3 + 1) % 60}") for i in range(120)]}
        Engine(workers=2, tracer=tracer).run(parse_program(text), inputs=inputs)
        strata = tracer.find_spans("parallel.stratum")
        assert strata and strata[0].attrs["workers"] == 2
        rounds = tracer.find_spans("parallel.round")
        assert rounds and "firings_by_worker" in rounds[0].attrs
        assert tracer.metrics.counters().get("parallel.tasks", 0) > 0
        assert "parallel.partition_skew" in tracer.metrics.histograms()

    def test_existential_stratum_counts_serial_barrier(self):
        tracer = RecordingTracer()
        Engine(workers=2, tracer=tracer).run(
            parse_program("p(X) -> q(X, Y)."),
            inputs={"p": [(i,) for i in range(8)]},
        )
        assert tracer.metrics.counters().get("parallel.serial_barriers") == 1


class TestGovernorAcrossWorkers:
    def test_fact_budget_trips_with_workers(self):
        governor = ResourceGovernor(max_facts=50, graceful=True)
        text = "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
        inputs = {"e": [(i, (i + 1) % 80) for i in range(80)]}
        result = Engine(workers=2, governor=governor).run(
            parse_program(text), inputs=inputs
        )
        assert result.status == STATUS_BUDGET_EXCEEDED
        assert result.truncated and result.violation.resource == "facts"

    def test_iteration_budget_trips_with_workers(self):
        governor = ResourceGovernor(max_stratum_iterations=2, graceful=True)
        text = "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
        inputs = {"e": [(i, i + 1) for i in range(70)]}
        result = Engine(workers=2, governor=governor).run(
            parse_program(text), inputs=inputs
        )
        assert result.status == STATUS_BUDGET_EXCEEDED
        assert result.violation.resource == "iterations"


class TestWorkerCrashFallback:
    """A dying worker degrades to the serial path, never to wrong answers."""

    def _run_with_hook(self, hook, tracer=None):
        import repro.vadalog.parallel as parallel

        text = "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
        inputs = {"e": [(f"n{i}", f"n{(i * 7 + 3) % 40}") for i in range(120)]}
        program = parse_program(text)
        serial = Engine().run(program, inputs=inputs)
        engine = Engine(tracer=tracer)
        chase = ParallelChase(engine, workers=2, dispatch_hook=hook, min_partition=1)
        engine_run = engine.run
        # Route the run through our hook-carrying coordinator.
        original = parallel.ParallelChase
        parallel.ParallelChase = lambda *a, **k: chase
        try:
            result = engine_run(program, inputs=inputs, workers=2)
        finally:
            parallel.ParallelChase = original
        assert result.facts("tc") == serial.facts("tc")
        return result

    def test_injected_crash_falls_back_to_serial(self):
        # Reuse the deployment layer's seeded fault injector as the crash
        # source: the dispatch hook stands in for a store mutator.
        injector = FaultInjector(object(), crash_after=3, seed=11)

        def hook():
            injector._inject("parallel.dispatch")
            injector.mutations_applied += 1

        tracer = RecordingTracer()
        self._run_with_hook(hook, tracer=tracer)
        assert injector.mutations_applied == 3
        assert tracer.metrics.counters().get("parallel.worker_crashes", 0) >= 1

    def test_crash_fault_wrapped_as_worker_crash(self):
        engine = Engine()
        chase = ParallelChase(
            engine,
            workers=2,
            dispatch_hook=lambda: (_ for _ in ()).throw(CrashFault("boom")),
            min_partition=1,
        )
        program = parse_program("e(X, Y) -> tc(X, Y).")
        from repro.vadalog.database import Database
        from repro.vadalog.engine import EvaluationStats
        from repro.vadalog.stratify import stratify
        from repro.vadalog.terms import NullFactory

        db = Database()
        db.add_all("e", [(i, i + 1) for i in range(10)])
        (stratum,) = stratify(program)
        with pytest.raises(WorkerCrashError):
            chase._evaluate_parallel(
                stratum, 0, db, EvaluationStats(), NullFactory(), {}
            )
        chase.close()

    def test_worker_side_errors_propagate(self):
        # A genuine evaluation error inside a worker (division by zero)
        # must surface as the same error type the serial engine raises,
        # not as a crash fallback.
        from repro.errors import EvaluationError

        text = "p(X), Y = 1 / X -> q(Y)."
        inputs = {"p": [(i,) for i in range(-5, 5)]}  # includes 0
        with pytest.raises(EvaluationError):
            Engine(workers=2).run(parse_program(text), inputs=inputs)


class TestEngineWiring:
    def test_run_override_beats_engine_default(self):
        text = "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z)."
        inputs = {"e": [(i, (i + 1) % 30) for i in range(30)]}
        program = parse_program(text)
        serial = Engine().run(program, inputs=inputs)
        engine = Engine(workers=4)
        assert engine.run(program, inputs=inputs, workers=1).facts(
            "tc"
        ) == serial.facts("tc")
        assert engine.run(program, inputs=inputs).facts("tc") == serial.facts("tc")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ParallelChase(Engine(), workers=0)

    def test_cli_reason_accepts_workers_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["reason", "s.gsl", "d.json", "r.metalog", "--workers", "2"]
        )
        assert args.workers == 2
