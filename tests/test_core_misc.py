"""Rendering (Gamma functions), textual GSL, and instance constructs."""

import pytest

from repro.core import (
    SuperInstance,
    SuperSchema,
    parse_gsl,
    render_metamodel,
    render_super_schema,
    schema_to_dot,
    supermodel_table,
)
from repro.core.dictionary import GraphDictionary, dictionary_catalog
from repro.errors import ParseError, SchemaError
from repro.graph.property_graph import PropertyGraph


class TestRendering:
    def test_metamodel_graphemes(self):
        graphemes = render_metamodel()
        kinds = {g.kind for g in graphemes}
        assert kinds == {"node-box", "attribute-lollipop", "edge-arrow"}
        assert sum(1 for g in graphemes if g.kind == "node-box") == 3

    def test_supermodel_table_mentions_graphemes(self):
        table = supermodel_table()
        assert "SM_Node" in table and "dashed" in table
        assert "single-headed thick solid black arrow" in table
        assert "[no explicit notation]" in table  # gray-background rows

    def test_schema_graphemes(self, company_schema):
        graphemes = render_super_schema(company_schema)
        by_kind = {}
        for g in graphemes:
            by_kind.setdefault(g.kind, []).append(g)
        assert len(by_kind["node-box"]) == len(company_schema.nodes)
        # Intensional constructs rendered dashed.
        controls = next(
            g for g in by_kind["edge-arrow"] if "CONTROLS" in g.text
        )
        assert controls.line_style == "dashed"
        # Identifying attribute lollipop is underlined-filled.
        fiscal = next(
            g for g in by_kind["attribute-lollipop"]
            if g.text == "Person.fiscalCode"
        )
        assert fiscal.detail["lollipop"] == "underlined filled"
        # Total-disjoint generalizations: single-headed solid arrows.
        generalization = next(
            g for g in by_kind["generalization-arrow"]
            if "PhysicalPerson" in g.text
        )
        assert generalization.detail == {"total": True, "disjoint": True, "heads": 1}

    def test_dot_output_is_structurally_sound(self, company_schema):
        dot = schema_to_dot(company_schema)
        assert dot.startswith('digraph "CompanyKG"')
        assert dot.rstrip().endswith("}")
        assert dot.count('"Person"') >= 2  # node plus edge references
        assert "style=dashed" in dot  # intensional edges
        assert "penwidth=2.5" in dot  # generalization arrows


class TestGSLText:
    def test_company_like_schema(self):
        schema = parse_gsl("""
        schema Mini oid 42 {
          node Person {
            id fiscalCode: string unique
            optional birthDate: date
          }
          node Business {
            capital: float range(0, 1000000)
            intensional stakeholders: int
          }
          generalization total disjoint Person -> Business, Individual
          node Individual { gender: string enum("f", "m") }
          edge OWNS Person 0..N -> 0..N Business { percentage: float }
          intensional edge CONTROLS Person -> Business
        }
        """)
        assert schema.schema_oid == 42
        assert schema.get_edge("CONTROLS").is_intensional
        assert schema.get_node("Business").get_attribute("stakeholders").is_intensional
        generalization = schema.generalizations[0]
        assert generalization.is_total and generalization.is_disjoint
        assert schema.validate() == []

    def test_matches_programmatic_construction(self):
        text = parse_gsl("""
        schema T oid 9 {
          node A { id k: string }
          node B { id k2: string }
          edge R A 1..1 -> 0..N B
        }
        """)
        code = SuperSchema("T", 9)
        a = code.node("A")
        a.attribute("k", is_id=True)
        b = code.node("B")
        b.attribute("k2", is_id=True)
        code.edge("R", a, b, source_card="1..1", target_card="0..N")
        assert text.get_edge("R").multiplicity == code.get_edge("R").multiplicity
        assert text.get_edge("R").cardinality_labels() == \
            code.get_edge("R").cardinality_labels()

    def test_forward_references_work(self):
        schema = parse_gsl("""
        schema F {
          edge R A -> B
          node A { id k: string }
          node B { id j: string }
        }
        """)
        assert schema.get_edge("R").source.type_name == "A"

    def test_id_edge_attribute_rejected(self):
        with pytest.raises(SchemaError):
            parse_gsl("""
            schema Bad {
              node A { id k: string }
              edge R A -> A { id w: string }
            }
            """)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_gsl("schema S { node A { id k: string } } extra")


class TestInstances:
    def test_round_trip_preserves_everything(self, company_schema, tiny_instance):
        dictionary = GraphDictionary()
        dictionary.store(company_schema)
        instance = SuperInstance.from_plain_graph(
            company_schema, tiny_instance, instance_oid=234
        )
        instance.to_dictionary(dictionary.graph)
        back = SuperInstance.from_dictionary(dictionary.graph, company_schema, 234)
        assert back.data.node_count == tiny_instance.node_count
        assert back.data.edge_count == tiny_instance.edge_count
        ada = back.data.node("p1")
        assert ada.label == "PhysicalPerson"
        assert ada.get("surname") == "Rossi"
        holds = next(e for e in back.data.edges("HOLDS") if e.source == "p1")
        assert holds.get("right") == "ownership"

    def test_unknown_label_rejected_when_strict(self, company_schema):
        data = PropertyGraph()
        data.add_node(1, "Alien")
        with pytest.raises(SchemaError):
            SuperInstance.from_plain_graph(company_schema, data, 1, strict=True)
        relaxed = SuperInstance.from_plain_graph(
            company_schema, data, 1, strict=False
        )
        assert relaxed.data.node_count == 1

    def test_unmodeled_property_is_dropped(self, company_schema):
        data = PropertyGraph()
        data.add_node("b", "Business", fiscalCode="X", mood="sunny",
                      businessName="B", legalNature="spa",
                      shareholdingCapital=1.0)
        dictionary = GraphDictionary()
        dictionary.store(company_schema)
        SuperInstance.from_plain_graph(company_schema, data, 7).to_dictionary(
            dictionary.graph
        )
        back = SuperInstance.from_dictionary(dictionary.graph, company_schema, 7)
        assert back.data.node("b").get("mood") is None
        assert back.data.node("b").get("fiscalCode") == "X"

    def test_two_instances_coexist(self, company_schema):
        dictionary = GraphDictionary()
        dictionary.store(company_schema)
        for oid, name in ((1, "X"), (2, "Y")):
            data = PropertyGraph()
            data.add_node(name, "Business", fiscalCode=name, businessName=name,
                          legalNature="spa", shareholdingCapital=1.0)
            SuperInstance.from_plain_graph(company_schema, data, oid).to_dictionary(
                dictionary.graph
            )
        first = SuperInstance.from_dictionary(dictionary.graph, company_schema, 1)
        assert first.data.node_count == 1
        assert first.data.has_node("X") and not first.data.has_node("Y")

    def test_dictionary_catalog_covers_instance_labels(self):
        catalog = dictionary_catalog()
        assert "I_SM_Node" in catalog.node_properties
        assert catalog.node_properties["I_SM_Attribute"] == ["instanceOID", "value"]
        assert "SM_REFERENCES" in catalog.edge_properties


class TestGSLSerialization:
    def test_company_kg_round_trip(self, company_schema):
        from repro.core import to_gsl_text

        text = to_gsl_text(company_schema)
        back = parse_gsl(text)
        assert {n.type_name for n in back.nodes} == {
            n.type_name for n in company_schema.nodes
        }
        for edge in company_schema.edges:
            reparsed = back.get_edge(edge.type_name)
            assert reparsed.multiplicity == edge.multiplicity
            assert reparsed.is_intensional == edge.is_intensional
            assert reparsed.cardinality_labels() == edge.cardinality_labels()
        for original, reparsed in zip(
            company_schema.generalizations, back.generalizations
        ):
            assert reparsed.is_total == original.is_total
            assert reparsed.is_disjoint == original.is_disjoint

    def test_modifiers_round_trip(self, company_schema):
        from repro.core import to_gsl_text
        from repro.core.supermodel import (
            SMEnumAttributeModifier,
            SMRangeAttributeModifier,
            SMUniqueAttributeModifier,
        )

        back = parse_gsl(to_gsl_text(company_schema))
        fiscal = back.get_node("Person").get_attribute("fiscalCode")
        assert any(isinstance(m, SMUniqueAttributeModifier) for m in fiscal.modifiers)
        gender = back.get_node("PhysicalPerson").get_attribute("gender")
        enum = next(m for m in gender.modifiers if isinstance(m, SMEnumAttributeModifier))
        assert set(enum.values) == {"female", "male"}
        capital = back.get_node("Business").get_attribute("shareholdingCapital")
        half_open = next(
            m for m in capital.modifiers if isinstance(m, SMRangeAttributeModifier)
        )
        assert half_open.minimum == 0.0 and half_open.maximum is None

    def test_double_round_trip_is_stable(self, company_schema):
        from repro.core import to_gsl_text

        once = to_gsl_text(company_schema)
        twice = to_gsl_text(parse_gsl(once))
        assert once == twice
