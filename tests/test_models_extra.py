"""Model-layer edge cases and repository behaviour."""

import pytest

from repro.core import GraphDictionary
from repro.errors import ModelError, SchemaError, TranslationError
from repro.finkg.company_schema import company_super_schema
from repro.models import (
    CSV_MODEL,
    PROPERTY_GRAPH_MODEL,
    RDF_MODEL,
    RELATIONAL_MODEL,
    Mapping,
    MappingRepository,
)
from repro.models.mappings import intermediate_oid, metalog_const
from repro.models.relational import RelationalSchema, Table, Column
from repro.ssst import SSST


class TestMetalogConst:
    def test_renderings(self):
        assert metalog_const(123) == "123"
        assert metalog_const(1.5) == "1.5"
        assert metalog_const(True) == "true"
        assert metalog_const(False) == "false"
        assert metalog_const("plain") == '"plain"'
        assert metalog_const('with "quotes"') == '"with \\"quotes\\""'
        assert intermediate_oid(123) == "123-"


class TestCatalogs:
    @pytest.mark.parametrize(
        "model", [PROPERTY_GRAPH_MODEL, RELATIONAL_MODEL, RDF_MODEL, CSV_MODEL]
    )
    def test_catalog_covers_all_constructs(self, model):
        catalog = model.catalog()
        declared_nodes = {
            c.name for c in model.constructs if not c.is_link
        }
        declared_links = {c.name for c in model.constructs if c.is_link}
        assert declared_nodes <= set(catalog.node_properties)
        assert declared_links <= set(catalog.edge_properties)

    def test_construct_table_lists_everything(self):
        table = CSV_MODEL.construct_table()
        assert "CSVFile" in table and "SM_Type" in table


class TestSchemaParsers:
    def test_pg_schema_lookup_errors(self):
        result = SSST().translate(company_super_schema(), "property-graph")
        schema = result.target_schema
        with pytest.raises(ModelError):
            schema.node_class_by_label("Martian")
        with pytest.raises(ModelError):
            schema.node_class_by_oid("nope")

    def test_relational_lookup_errors(self):
        schema = RelationalSchema("x")
        with pytest.raises(ModelError):
            schema.table("ghost")
        table = Table("t", [Column("a")])
        with pytest.raises(ModelError):
            table.column("b")

    def test_table_primary_key_order(self):
        table = Table("t", [
            Column("z", is_pk=True), Column("a", is_pk=True), Column("m"),
        ])
        assert table.primary_key() == ["z", "a"]


class TestRepository:
    def test_custom_registration_and_defaults(self):
        repo = MappingRepository()
        mapping = Mapping(
            CSV_MODEL, "custom", "test", lambda s, i: "", lambda i, t: ""
        )
        repo.register(mapping)
        assert repo.select("csv") is mapping
        second = Mapping(
            CSV_MODEL, "other", "test", lambda s, i: "", lambda i, t: ""
        )
        repo.register(second, default=True)
        assert repo.select("csv") is second  # default jumps the queue
        assert repo.select("csv", "custom") is mapping

    def test_duplicate_strategy_rejected(self):
        repo = MappingRepository()
        mapping = Mapping(
            CSV_MODEL, "s", "test", lambda s, i: "", lambda i, t: ""
        )
        repo.register(mapping)
        with pytest.raises(ModelError):
            repo.register(mapping)

    def test_unknown_model_lookup(self):
        repo = MappingRepository()
        with pytest.raises(ModelError):
            repo.model("nothing")

    def test_mapping_programs_custom_intermediate(self):
        repo = MappingRepository()
        captured = {}

        def eliminate(source, inter):
            captured["inter"] = inter
            return ""

        mapping = Mapping(CSV_MODEL, "s", "t", eliminate, lambda i, t: "")
        eliminate_text, copy_text, inter = mapping.programs(9, "tgt", "CUSTOM")
        assert inter == "CUSTOM" and captured["inter"] == "CUSTOM"


class TestSharedDictionaryTranslations:
    def test_two_models_one_dictionary(self, company_schema):
        """Intermediate schemas of different targets must not collide."""
        dictionary = GraphDictionary()
        dictionary.store(company_schema)
        ssst = SSST()
        pg = ssst.translate_stored(dictionary, 123, "property-graph")
        relational = ssst.translate_stored(dictionary, 123, "relational")
        assert pg.intermediate_oid != relational.intermediate_oid
        # Both translations are complete and correct despite sharing the
        # dictionary graph.
        assert len(pg.target_schema.node_classes) == 11
        assert "HOLDS" in relational.target_schema.tables
        business = relational.target_schema.table("Business")
        assert business.primary_key() == ["isA_Business_fiscalCode"]


class TestSigmaRelationalGuards:
    def test_composite_identifier_rejected(self):
        from repro.core import SuperSchema
        from repro.metalog import parse_metalog
        from repro.ssst import translate_sigma_for_relational

        schema = SuperSchema("C", 5)
        node = schema.node("Pair")
        node.attribute("k1", is_id=True)
        node.attribute("k2", is_id=True)
        schema.edge("LINKS", node, node, is_intensional=True)
        relational = SSST().translate(schema, "relational").target_schema
        sigma = parse_metalog("(x: Pair) -> exists c : (x)[c: LINKS](x).")
        with pytest.raises(TranslationError):
            translate_sigma_for_relational(sigma, schema, relational)

    def test_unknown_attribute_rejected(self, company_schema):
        from repro.metalog import parse_metalog
        from repro.ssst import translate_sigma_for_relational

        relational = SSST().translate(
            company_super_schema(), "relational"
        ).target_schema
        sigma = parse_metalog(
            "(x: Business; mood: m) -> exists c : (x)[c: CONTROLS](x)."
        )
        with pytest.raises(TranslationError):
            translate_sigma_for_relational(sigma, company_schema, relational)
