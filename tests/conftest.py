"""Shared fixtures for the KGModel reproduction test suite."""

from __future__ import annotations

import pytest

from repro.finkg.company_schema import company_super_schema
from repro.finkg.generator import ShareholdingConfig, generate_company_kg
from repro.graph.property_graph import PropertyGraph


@pytest.fixture()
def company_schema():
    """A fresh Figure 4 Company KG super-schema (OID 123)."""
    return company_super_schema()


@pytest.fixture()
def tiny_instance():
    """A minimal typed instance: one person, three businesses, shares.

    The ownership structure realizes the canonical joint-control case:
    B1 owns 60% of B2; B1 and B2 each own 30% of B3, so B1 controls B2
    directly and B3 jointly.
    """
    data = PropertyGraph("tiny")
    data.add_node(
        "p1", "PhysicalPerson",
        fiscalCode="FCp1", name="Ada Rossi", surname="Rossi", gender="female",
    )
    for business in ("B1", "B2", "B3"):
        data.add_node(
            business, "Business",
            fiscalCode=f"FC{business}", businessName=f"{business} SpA",
            legalNature="spa", shareholdingCapital=1000.0,
        )
    stakes = [
        ("p1", "B1", 0.8, "S0"),
        ("B1", "B2", 0.6, "S1"),
        ("B2", "B3", 0.3, "S2"),
        ("B1", "B3", 0.3, "S3"),
    ]
    for owner, company, pct, share_id in stakes:
        data.add_node(share_id, "Share", shareId=share_id, percentage=pct)
        data.add_edge(owner, share_id, "HOLDS", right="ownership")
        data.add_edge(share_id, company, "BELONGS_TO")
    return data


@pytest.fixture()
def owns_instance():
    """A typed instance with direct OWNS edges (skipping Share reification)."""
    data = PropertyGraph("owns")
    for business in ("B1", "B2", "B3"):
        data.add_node(
            business, "Business",
            fiscalCode=f"FC{business}", businessName=f"{business} SpA",
            legalNature="spa", shareholdingCapital=1000.0,
        )
    data.add_edge("B1", "B2", "OWNS", percentage=0.6)
    data.add_edge("B2", "B3", "OWNS", percentage=0.3)
    data.add_edge("B1", "B3", "OWNS", percentage=0.3)
    return data


@pytest.fixture(scope="session")
def small_kg():
    """A small synthetic Company KG (deterministic)."""
    return generate_company_kg(ShareholdingConfig(companies=60, seed=11))


@pytest.fixture()
def simple_digraph():
    """Two cycles and a tail: the go-to graph for SCC/WCC assertions."""
    graph = PropertyGraph("digraph")
    for node in "abcdefg":
        graph.add_node(node, "N")
    # cycle a-b-c, cycle d-e, tail f->g, c->d bridge
    for source, target in [
        ("a", "b"), ("b", "c"), ("c", "a"),
        ("d", "e"), ("e", "d"),
        ("c", "d"), ("f", "g"),
    ]:
        graph.add_edge(source, target, "E")
    return graph
