"""Graph algorithms, cross-checked against NetworkX property-based."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import algorithms
from repro.graph.property_graph import PropertyGraph


class TestSCC:
    def test_simple_digraph(self, simple_digraph):
        components = {
            frozenset(c)
            for c in algorithms.strongly_connected_components(simple_digraph)
        }
        assert frozenset({"a", "b", "c"}) in components
        assert frozenset({"d", "e"}) in components
        assert frozenset({"f"}) in components
        assert frozenset({"g"}) in components

    def test_empty_graph(self):
        assert algorithms.strongly_connected_components(PropertyGraph()) == []

    def test_self_loop(self):
        g = PropertyGraph()
        g.add_node("x")
        g.add_edge("x", "x")
        assert algorithms.strongly_connected_components(g) == [["x"]]

    def test_deep_chain_no_recursion_error(self):
        g = PropertyGraph()
        n = 5000
        for i in range(n):
            g.add_node(i)
        for i in range(n - 1):
            g.add_edge(i, i + 1)
        assert len(algorithms.strongly_connected_components(g)) == n


class TestWCC:
    def test_simple_digraph(self, simple_digraph):
        components = {
            frozenset(c)
            for c in algorithms.weakly_connected_components(simple_digraph)
        }
        assert components == {
            frozenset({"a", "b", "c", "d", "e"}),
            frozenset({"f", "g"}),
        }

    def test_isolated_nodes(self):
        g = PropertyGraph()
        g.add_node(1)
        g.add_node(2)
        assert len(algorithms.weakly_connected_components(g)) == 2


class TestClustering:
    def test_triangle(self):
        g = PropertyGraph()
        for n in "abc":
            g.add_node(n)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a")
        assert algorithms.clustering_coefficient(g) == pytest.approx(1.0)

    def test_star_has_zero_clustering(self):
        g = PropertyGraph()
        g.add_node("hub")
        for i in range(5):
            g.add_node(i)
            g.add_edge("hub", i)
        assert algorithms.clustering_coefficient(g) == 0.0

    def test_matches_networkx(self, simple_digraph):
        ours = algorithms.clustering_coefficient(simple_digraph)
        undirected = nx.Graph(simple_digraph.to_networkx().to_undirected())
        undirected.remove_edges_from(nx.selfloop_edges(undirected))
        theirs = nx.average_clustering(undirected)
        assert ours == pytest.approx(theirs)


class TestReachability:
    def test_descendants_and_ancestors(self, simple_digraph):
        assert algorithms.descendants(simple_digraph, "a") == {"a", "b", "c", "d", "e"}
        assert algorithms.ancestors(simple_digraph, "g") == {"f"}

    def test_topological_order(self):
        g = PropertyGraph()
        for n in "abcd":
            g.add_node(n)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("a", "d")
        order = algorithms.topological_order(g)
        assert order.index("a") < order.index("b") < order.index("c")

    def test_topological_order_rejects_cycles(self, simple_digraph):
        with pytest.raises(ValueError):
            algorithms.topological_order(simple_digraph)


@st.composite
def random_digraphs(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=40,
        )
    )
    return n, edges


@given(random_digraphs())
@settings(max_examples=60, deadline=None)
def test_scc_matches_networkx(case):
    n, edges = case
    g = PropertyGraph()
    nxg = nx.MultiDiGraph()
    for i in range(n):
        g.add_node(i)
        nxg.add_node(i)
    seen = set()
    for source, target in edges:
        key = (source, target, len(seen))
        seen.add(key)
        g.add_edge(source, target)
        nxg.add_edge(source, target)
    ours = {frozenset(c) for c in algorithms.strongly_connected_components(g)}
    theirs = {frozenset(c) for c in nx.strongly_connected_components(nxg)}
    assert ours == theirs


@given(random_digraphs())
@settings(max_examples=60, deadline=None)
def test_wcc_matches_networkx(case):
    n, edges = case
    g = PropertyGraph()
    nxg = nx.MultiDiGraph()
    for i in range(n):
        g.add_node(i)
        nxg.add_node(i)
    for source, target in edges:
        g.add_edge(source, target)
        nxg.add_edge(source, target)
    ours = {frozenset(c) for c in algorithms.weakly_connected_components(g)}
    theirs = {frozenset(c) for c in nx.weakly_connected_components(nxg)}
    assert ours == theirs
