"""End-to-end integration: design -> translate -> deploy -> load ->
reason -> flush, through every target system."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.deploy import GraphStore, RelationalEngine, TripleStore, generate_ddl, load_graph_store, load_triple_store, parse_ddl
from repro.finkg import ShareholdingConfig, generate_company_kg, programs
from repro.finkg.company_schema import company_super_schema
from repro.finkg.control import control_pairs, stakes_from_graph
from repro.graph.property_graph import PropertyGraph
from repro.metalog import parse_metalog
from repro.ssst import (
    SSST,
    IntensionalMaterializer,
    graph_instance_to_relational,
    relational_instance_to_graph,
)


class TestRelationalRoundTrip:
    def test_full_cycle(self, company_schema, tiny_instance):
        translation = SSST().translate(company_schema, "relational")
        engine = RelationalEngine()
        engine.deploy(parse_ddl(generate_ddl(translation.target_schema)))
        rows = graph_instance_to_relational(company_schema, tiny_instance, engine)
        assert rows > 0
        back = relational_instance_to_graph(company_schema, engine)
        # Entities are keyed by identifier in the relational world.
        labels = sorted(n.label for n in back.nodes())
        assert labels.count("Business") == 3
        assert labels.count("PhysicalPerson") == 1
        assert labels.count("Share") == 4
        assert len(list(back.edges("HOLDS"))) == 4
        assert len(list(back.edges("BELONGS_TO"))) == 4

    def test_reasoning_over_reloaded_instance(self, company_schema, tiny_instance):
        translation = SSST().translate(company_schema, "relational")
        engine = RelationalEngine()
        engine.deploy(translation.target_schema)
        graph_instance_to_relational(company_schema, tiny_instance, engine)
        reloaded = relational_instance_to_graph(company_schema, engine)

        materializer = IntensionalMaterializer()
        first = materializer.materialize(
            company_schema, reloaded, parse_metalog(programs.OWNS_PROGRAM), 1
        )
        second = materializer.materialize(
            company_schema, first.instance.data,
            parse_metalog(programs.PERSON_CONTROL_PROGRAM), 2,
        )
        controls = {
            (e.source, e.target)
            for e in second.instance.data.edges("CONTROLS")
            if e.source != e.target
        }
        # Keys replaced the graph OIDs: fiscal codes identify entities.
        assert ("FCp1", "FCB1") in controls
        assert ("FCB1", "FCB2") in controls and ("FCB1", "FCB3") in controls

    def test_synthetic_kg_deploys(self, company_schema):
        kg = generate_company_kg(ShareholdingConfig(companies=30, seed=13))
        translation = SSST().translate(company_schema, "relational")
        engine = RelationalEngine()
        engine.deploy(translation.target_schema)
        graph_instance_to_relational(company_schema, kg, engine)
        assert engine.count("Share") == len(list(kg.nodes("Share")))
        assert engine.count("HOLDS") == len(list(kg.edges("HOLDS")))
        back = relational_instance_to_graph(company_schema, engine)
        assert back.node_count == kg.node_count


class TestAllTargetsAgree:
    def test_same_design_three_deployments(self, company_schema, tiny_instance):
        ssst = SSST()
        relational = ssst.translate(company_super_schema(), "relational")
        pg = ssst.translate(company_super_schema(), "property-graph")
        rdf = ssst.translate(company_super_schema(), "rdf")

        engine = RelationalEngine()
        engine.deploy(relational.target_schema)
        graph_instance_to_relational(company_schema, tiny_instance, engine)

        store = GraphStore()
        store.deploy(pg.target_schema)
        load_graph_store(company_schema, tiny_instance, store)

        triples = TripleStore()
        triples.deploy(rdf.target_schema)
        load_triple_store(company_schema, tiny_instance, triples)

        # The same three businesses are visible in every target.
        relational_count = engine.count("Business")
        pg_count = len(list(store.extract("(n:Business) return n")))
        rdf_count = len(triples.instances_of("Business"))
        assert relational_count == pg_count == rdf_count == 3


class TestMetaLogOverDeployedStore:
    def test_input_annotations_feed_from_graph_store(
        self, company_schema, tiny_instance
    ):
        """Close the Example 4.4 loop: @input queries against a real
        (in-memory) target system feed the compiled Vadalog program."""
        from repro.metalog import compile_metalog
        from repro.vadalog import Engine
        from repro.vadalog.annotations import resolve_inputs

        pg = SSST().translate(company_super_schema(), "property-graph")
        store = GraphStore()
        store.deploy(pg.target_schema)
        load_graph_store(company_schema, tiny_instance, store)

        compiled = compile_metalog(
            parse_metalog(
                '(p: PhysicalPerson)[: HOLDS; right: "ownership"]'
                "(s: Share; percentage: w), w > 0.5"
                " -> exists c : (p)[c: MAJOR_HOLDER](s)."
            ),
            store.catalog(),
        )
        database = resolve_inputs(compiled.program, {"store": store})
        result = Engine().run(compiled.program, database=database)
        majors = {(f[1], f[2]) for f in result.facts("MAJOR_HOLDER")}
        # S1 (0.6) is held by B1, a Business — excluded by the
        # PhysicalPerson selection; only Ada's 0.8 stake qualifies.
        assert majors == {("p1", "S0")}


class TestGSLToDeployment:
    def test_textual_design_to_ddl(self):
        from repro.core import parse_gsl

        schema = parse_gsl("""
        schema Library oid 77 {
          node Book { id isbn: string title: string }
          node Author { id aid: string name: string }
          node Ebook { sizeMb: float }
          generalization Book -> Ebook
          edge WROTE Author 0..N -> 0..N Book { year: int }
          intensional edge COAUTHOR Author -> Author
        }
        """)
        translation = SSST().translate(schema, "relational")
        ddl = generate_ddl(translation.target_schema)
        assert "CREATE TABLE WROTE" in ddl  # M:N reified
        assert "isA_Ebook_isbn" in ddl
        engine = RelationalEngine()
        engine.deploy(translation.target_schema)
        engine.insert("Author", aid="a1", name="N")
        engine.insert("Book", isbn="b1", title="T")
        engine.insert("WROTE", WROTE_src_aid="a1", WROTE_tgt_isbn="b1", year=2022)
        with pytest.raises(Exception):
            engine.insert("WROTE", WROTE_src_aid="ghost", WROTE_tgt_isbn="b1", year=1)


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_control_pipeline_property_over_seeds(seed):
    """For arbitrary generator seeds, the Algorithm 2 pipeline agrees
    with the worklist baseline on the flat projection."""
    from repro.finkg.control import controls_pairs_from_graph, run_control_metalog
    from repro.finkg.generator import generate_shareholding_graph

    graph = generate_shareholding_graph(ShareholdingConfig(companies=40, seed=seed))
    outcome = run_control_metalog(graph, node_label="Company")
    meta = {
        p for p in controls_pairs_from_graph(outcome.graph)
        if p[0].startswith("C")
    }
    base = {
        p for p in control_pairs(stakes_from_graph(graph))
        if p[0].startswith("C") and p[1].startswith("C")
    }
    assert meta == base
