"""Financial-domain tests: generator invariants, control, integrated
ownership, close links, groups/families — baselines vs MetaLog."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.finkg import (
    ShareholdingConfig,
    close_links,
    company_groups,
    control_closure,
    control_pairs,
    controls_pairs_from_graph,
    families_by_surname,
    generate_company_kg,
    generate_shareholding_data,
    generate_shareholding_graph,
    integrated_ownership,
    integrated_ownership_series,
    partnerships,
    related_pairs,
    run_control_metalog,
    stakes_as_tuples,
    stakes_from_graph,
)
from repro.finkg.close_links import close_link_pairs_from_graph
from repro.finkg.ownership import iown_pairs_from_graph
from repro.finkg.programs import (
    close_links_program,
    integrated_ownership_program,
)
from repro.graph import summarize
from repro.metalog import parse_metalog, run_on_graph


class TestGenerator:
    def test_deterministic_by_seed(self):
        a = generate_shareholding_data(ShareholdingConfig(companies=100, seed=5))
        b = generate_shareholding_data(ShareholdingConfig(companies=100, seed=5))
        assert stakes_as_tuples(a) == stakes_as_tuples(b)
        c = generate_shareholding_data(ShareholdingConfig(companies=100, seed=6))
        assert stakes_as_tuples(a) != stakes_as_tuples(c)

    def test_capital_never_over_assigned(self):
        data = generate_shareholding_data(ShareholdingConfig(companies=200, seed=1))
        inbound = {}
        for stake in data.stakes:
            inbound[stake.company] = inbound.get(stake.company, 0.0) + stake.percentage
        assert all(total <= 1.0 + 1e-6 for total in inbound.values())

    def test_every_company_has_a_shareholder(self):
        data = generate_shareholding_data(ShareholdingConfig(companies=150, seed=2))
        owned = {stake.company for stake in data.stakes}
        missing = set(data.companies) - owned
        assert len(missing) <= len(data.companies) * 0.02

    def test_scale_free_shape(self):
        graph = generate_shareholding_graph(ShareholdingConfig(companies=2000, seed=7))
        stats = summarize(graph)
        # Section 2.1 shape: tiny SCCs, one big WCC, hubs, scale-free tail.
        assert stats.avg_scc_size < 1.1
        assert stats.largest_wcc > 0.3 * stats.nodes
        assert stats.max_in_degree > 5 * stats.avg_in_degree
        assert stats.power_law.is_plausibly_scale_free

    def test_typed_kg_conforms_to_schema(self, company_schema):
        kg = generate_company_kg(ShareholdingConfig(companies=40, seed=9))
        from repro.core import SuperInstance

        instance = SuperInstance.from_plain_graph(company_schema, kg, 1)
        assert instance.data.node_count == kg.node_count
        shares = list(kg.nodes("Share"))
        assert shares and all(n.get("percentage") is not None for n in shares)
        # Every share is held and belongs to exactly one business.
        belongs = {e.source for e in kg.edges("BELONGS_TO")}
        held = {e.target for e in kg.edges("HOLDS")}
        assert {s.id for s in shares} == belongs == held


class TestControl:
    def test_direct_control(self):
        assert control_pairs([("a", "b", 0.51)]) == {("a", "b")}
        assert control_pairs([("a", "b", 0.5)]) == set()  # strict threshold

    def test_joint_control(self):
        stakes = [("a", "b", 0.6), ("b", "c", 0.3), ("a", "c", 0.3)]
        assert control_pairs(stakes) == {("a", "b"), ("a", "c")}

    def test_control_through_chain(self):
        stakes = [("a", "b", 0.9), ("b", "c", 0.9), ("c", "d", 0.9)]
        assert control_pairs(stakes) == {
            ("a", "b"), ("a", "c"), ("a", "d"),
            ("b", "c"), ("b", "d"), ("c", "d"),
        }

    def test_cycle_does_not_loop_forever(self):
        stakes = [("a", "b", 0.6), ("b", "a", 0.6)]
        assert control_pairs(stakes) == {("a", "b"), ("b", "a")}

    def test_closure_self_inclusion_flag(self):
        closure = control_closure([("a", "b", 0.9)], include_self=True)
        assert closure["a"] == {"a", "b"}

    def test_metalog_agrees_on_synthetic_graph(self):
        config = ShareholdingConfig(companies=120, seed=17)
        graph = generate_shareholding_graph(config)
        outcome = run_control_metalog(graph, node_label="Company")
        meta = {
            p for p in controls_pairs_from_graph(outcome.graph)
            if p[0].startswith("C")
        }
        base = {
            p for p in control_pairs(stakes_from_graph(graph))
            if p[0].startswith("C") and p[1].startswith("C")
        }
        assert meta == base


@st.composite
def random_stakes(draw):
    n = draw(st.integers(2, 8))
    entities = [f"e{i}" for i in range(n)]
    count = draw(st.integers(1, 14))
    stakes = {}
    for _ in range(count):
        owner = draw(st.sampled_from(entities))
        company = draw(st.sampled_from(entities))
        if owner == company:
            continue
        pct = draw(st.floats(0.05, 1.0, allow_nan=False))
        stakes[(owner, company)] = pct
    # Normalize so no company is over-assigned.
    inbound = {}
    for (owner, company), pct in stakes.items():
        inbound[company] = inbound.get(company, 0.0) + pct
    return [
        (owner, company, pct / max(1.0, inbound[company] / 0.95))
        for (owner, company), pct in sorted(stakes.items())
    ]


@given(random_stakes())
@settings(max_examples=30, deadline=None)
def test_control_metalog_matches_baseline_property(stakes):
    from repro.graph.property_graph import PropertyGraph

    graph = PropertyGraph()
    entities = {e for s in stakes for e in s[:2]}
    for entity in entities:
        graph.add_node(entity, "Company")
    for owner, company, pct in stakes:
        graph.add_edge(owner, company, "OWNS", percentage=pct)
    outcome = run_control_metalog(graph, node_label="Company")
    assert controls_pairs_from_graph(outcome.graph) == control_pairs(stakes)


class TestIntegratedOwnership:
    def test_direct_only(self):
        io = integrated_ownership([("a", "b", 0.4)])
        assert io == {("a", "b") : pytest.approx(0.4)}

    def test_two_hop_path(self):
        io = integrated_ownership([("a", "b", 0.5), ("b", "c", 0.5)])
        assert io[("a", "c")] == pytest.approx(0.25)

    def test_parallel_paths_add_up(self):
        io = integrated_ownership([
            ("a", "b", 0.5), ("b", "d", 0.4),
            ("a", "c", 0.5), ("c", "d", 0.4),
        ])
        assert io[("a", "d")] == pytest.approx(0.4)

    def test_cycle_correction_keeps_values_sane(self):
        # Tight cross-shareholding: a naive path sum explodes past 1.
        io = integrated_ownership([("a", "b", 0.95), ("b", "a", 0.95)])
        assert io[("a", "b")] == pytest.approx(0.95)
        assert all(v <= 1.0 + 1e-9 for v in io.values())

    def test_series_matches_exact_on_dags(self):
        stakes = [("a", "b", 0.6), ("b", "c", 0.5), ("a", "c", 0.1),
                  ("c", "d", 0.9)]
        exact = integrated_ownership(stakes)
        series = integrated_ownership_series(stakes, depth=5)
        for key, value in exact.items():
            assert series[key] == pytest.approx(value)

    def test_metalog_unrolling_matches_series(self):
        config = ShareholdingConfig(companies=50, seed=23, cycle_probability=0.0)
        graph = generate_shareholding_graph(config)
        text = (
            integrated_ownership_program(depth=5)
            .replace("(x: Person)", "(x)")
            .replace("(y: Business)", "(y)")
            .replace("(z: Business)", "(z)")
        )
        outcome = run_on_graph(parse_metalog(text), graph)
        meta = {
            k: v for k, v in iown_pairs_from_graph(outcome.graph).items()
            if k[0] != k[1]
        }
        series = integrated_ownership_series(
            stakes_as_tuples(generate_shareholding_data(config)), depth=5
        )
        assert set(meta) == set(series)
        for key in meta:
            assert meta[key] == pytest.approx(series[key])


class TestCloseLinks:
    def test_direct_and_reverse(self):
        links = close_links([("a", "b", 0.25)])
        assert ("a", "b") in links and ("b", "a") in links

    def test_third_party(self):
        links = close_links([("z", "x", 0.3), ("z", "y", 0.3)])
        assert ("x", "y") in links and ("y", "x") in links

    def test_below_threshold_excluded(self):
        assert close_links([("a", "b", 0.19)]) == set()

    def test_indirect_holding_counts(self):
        # 0.5 * 0.5 = 0.25 >= 0.2 indirect.
        links = close_links([("a", "b", 0.5), ("b", "c", 0.5)])
        assert ("a", "c") in links

    def test_metalog_close_links_match(self):
        config = ShareholdingConfig(companies=60, seed=29, cycle_probability=0.0)
        graph = generate_shareholding_graph(config)
        text = (
            integrated_ownership_program(depth=6)
            .replace("(x: Person)", "(x)")
            .replace("(y: Business)", "(y)")
            .replace("(z: Business)", "(z)")
        )
        with_io = run_on_graph(parse_metalog(text), graph)
        outcome = run_on_graph(parse_metalog(close_links_program()), with_io.graph)
        meta = close_link_pairs_from_graph(outcome.graph)
        series = integrated_ownership_series(
            stakes_as_tuples(generate_shareholding_data(config)), depth=6
        )
        assert meta == close_links([], io=series)


class TestGroupsAndFamilies:
    def test_company_groups_keyed_by_ultimate_controller(self):
        stakes = [("top", "a", 0.6), ("a", "b", 0.6), ("x", "y", 0.9)]
        groups = company_groups(stakes)
        assert groups == {"top": {"a", "b"}, "x": {"y"}}

    def test_controlled_controller_is_not_a_leader(self):
        stakes = [("top", "mid", 0.6), ("mid", "leaf", 0.6)]
        groups = company_groups(stakes)
        assert set(groups) == {"top"}

    def test_families_and_relations(self, small_kg):
        families = families_by_surname(small_kg)
        assert families
        assert all(members for members in families.values())
        pairs = related_pairs(small_kg)
        for first, second in pairs:
            assert (second, first) in pairs  # symmetric

    def test_partnerships_require_shared_business(self, small_kg):
        pairs = partnerships(small_kg)
        for first, second in pairs:
            assert first < second  # normalized unordered pairs
