"""CLI tool and JSON graph-interchange tests."""

import json

import pytest

from repro.cli import main
from repro.errors import GraphError
from repro.graph.io import graph_from_json, graph_to_json, load_graph, save_graph
from repro.graph.property_graph import PropertyGraph

MINI_GSL = """
schema Mini oid 3 {
  node Company { id vat: string name: string }
  intensional edge CONTROLS Company -> Company
  edge OWNS Company -> Company { percentage: float }
}
"""

CONTROL_METALOG = """
(x: Company) -> exists c : (x)[c: CONTROLS](x).
(x: Company)[:CONTROLS](z: Company)[:OWNS; percentage: w](y: Company),
    v = msum(w, <z>), v > 0.5 -> exists c : (x)[c: CONTROLS](y).
"""


@pytest.fixture()
def workspace(tmp_path):
    schema_path = tmp_path / "mini.gsl"
    schema_path.write_text(MINI_GSL)
    program_path = tmp_path / "rules.metalog"
    program_path.write_text(CONTROL_METALOG)
    graph = PropertyGraph("holdings")
    for vat in ("A", "B", "C"):
        graph.add_node(vat, "Company", vat=vat, name=vat)
    graph.add_edge("A", "B", "OWNS", percentage=0.6)
    graph.add_edge("B", "C", "OWNS", percentage=0.3)
    graph.add_edge("A", "C", "OWNS", percentage=0.3)
    data_path = tmp_path / "data.json"
    save_graph(graph, str(data_path))
    return tmp_path


class TestGraphIO:
    def test_round_trip(self):
        graph = PropertyGraph("g")
        graph.add_node(1, "A", x=1, label_like="x")
        graph.add_node(2, "B")
        graph.add_edge(1, 2, "R", edge_id="e", w=0.5)
        back = graph_from_json(graph_to_json(graph))
        assert back.name == "g"
        assert back.node(1).get("x") == 1
        assert back.edge("e").get("w") == 0.5
        assert back.node(2).label == "B"

    def test_invalid_json(self):
        with pytest.raises(GraphError):
            graph_from_json("{not json")

    def test_file_round_trip(self, tmp_path):
        graph = PropertyGraph()
        graph.add_node("n", "L")
        path = tmp_path / "g.json"
        save_graph(graph, str(path))
        assert load_graph(str(path)).has_node("n")


class TestCLI:
    def test_validate_ok(self, workspace, capsys):
        assert main(["validate", str(workspace / "mini.gsl")]) == 0
        assert "well-formed" in capsys.readouterr().out

    def test_validate_reports_problems(self, tmp_path, capsys):
        bad = tmp_path / "bad.gsl"
        bad.write_text("schema Bad { node A { x: string } }")
        assert main(["validate", str(bad)]) == 1
        assert "identifying" in capsys.readouterr().out

    def test_render_dot_and_graphemes(self, workspace, capsys):
        assert main(["render", str(workspace / "mini.gsl"), "--format", "dot"]) == 0
        assert "digraph" in capsys.readouterr().out
        assert main(["render", str(workspace / "mini.gsl")]) == 0
        assert "node-box" in capsys.readouterr().out

    def test_render_supermodel_table(self, capsys):
        assert main(["render", "--format", "supermodel"]) == 0
        assert "SM_Generalization" in capsys.readouterr().out

    def test_translate_ddl(self, workspace, capsys):
        assert main([
            "translate", str(workspace / "mini.gsl"),
            "--model", "relational", "--ddl",
        ]) == 0
        out = capsys.readouterr().out
        assert "CREATE TABLE Company" in out
        assert "FOREIGN KEY" in out

    def test_translate_flag_model_mismatch(self, workspace, capsys):
        assert main([
            "translate", str(workspace / "mini.gsl"), "--model", "rdf", "--ddl",
        ]) == 2

    def test_compile(self, workspace, capsys):
        assert main(["compile", str(workspace / "rules.metalog")]) == 0
        out = capsys.readouterr().out
        assert "msum" in out and "CONTROLS" in out
        assert "@input" in out

    def test_reason_end_to_end(self, workspace, capsys):
        output = workspace / "enriched.json"
        assert main([
            "reason", str(workspace / "mini.gsl"), str(workspace / "data.json"),
            str(workspace / "rules.metalog"), "-o", str(output),
        ]) == 0
        enriched = load_graph(str(output))
        controls = {
            (e.source, e.target) for e in enriched.edges("CONTROLS")
            if e.source != e.target
        }
        assert controls == {("A", "B"), ("A", "C")}

    def test_reason_to_stdout(self, workspace, capsys):
        assert main([
            "reason", str(workspace / "mini.gsl"), str(workspace / "data.json"),
            str(workspace / "rules.metalog"),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(e["label"] == "CONTROLS" for e in payload["edges"])

    def test_stats(self, capsys):
        assert main(["stats", "--companies", "120", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "avg_clustering" in out and "paper" in out

    def test_missing_file(self, capsys):
        assert main(["validate", "/nonexistent.gsl"]) == 2
