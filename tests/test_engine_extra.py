"""Additional engine coverage: builtins, stats, outputs, guards."""

import pytest

from repro.errors import EvaluationError, VadalogError
from repro.vadalog import Engine, parse_program


def run(text, **inputs):
    return Engine().run(parse_program(text), inputs=inputs)


class TestBuiltins:
    @pytest.mark.parametrize("expr,value,expected", [
        ("abs(X)", -3, 3),
        ("round(X)", 2.6, 3),
        ("floor(X)", 2.7, 2),
        ("floor(X)", -2.3, -3),
        ("ceil(X)", 2.1, 3),
        ("ceil(X)", -2.7, -2),
        ("min2(X, 5)", 7, 5),
        ("max2(X, 5)", 7, 7),
        ("strlen(X)", "hello", 5),
        ("lower(X)", "ABC", "abc"),
        ("tostring(X)", 12, "12"),
        ("tonumber(X)", "2.5", 2.5),
    ])
    def test_function(self, expr, value, expected):
        result = run(f"p(X), Y = {expr} -> q(Y).", p=[(value,)])
        assert result.facts("q") == {(expected,)}

    def test_string_plus_concatenates(self):
        result = run('p(X), Y = X + "!" -> q(Y).', p=[("hi",)])
        assert result.facts("q") == {("hi!",)}

    def test_modulo_builtin(self):
        # "%" is the comment marker in the concrete syntax; mod() is the
        # textual form (the BinOp "%" remains available to generated ASTs).
        result = run("p(X), Y = mod(X, 3) -> q(X, Y).", p=[(7,), (9,)])
        assert result.facts("q") == {(7, 1), (9, 0)}


class TestStatsAndOutputs:
    def test_stats_counters(self):
        result = run(
            "e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z).",
            e=[(1, 2), (2, 3)],
        )
        stats = result.stats
        assert stats.facts_derived == 3
        assert stats.rule_firings >= 3
        assert stats.strata >= 1
        assert stats.elapsed_seconds > 0
        assert stats.nulls_created == 0

    def test_outputs_follow_annotations(self):
        result = run(
            'p(X) -> q(X).\np(X) -> r(X).\n@output("q").',
            p=[(1,)],
        )
        assert set(result.outputs()) == {"q"}
        assert result.outputs()["q"] == {(1,)}

    def test_prod_aggregate(self):
        result = run(
            "f(G, W), V = mprod(W, <W>) -> out(G, V).",
            f=[("g", 2), ("g", 3), ("g", 4)],
        )
        assert result.facts("out") == {("g", 24)}


class TestMonotonicityGuard:
    def test_min_in_recursion_rejected(self):
        program = parse_program(
            "seed(X, W) -> best(X, W).\n"
            "best(X, W), e(X, Y), V = mmin(W, <X>) -> best(Y, V)."
        )
        with pytest.raises(VadalogError):
            Engine().run(program, inputs={"seed": [(1, 5)], "e": [(1, 2)]})

    def test_avg_in_recursion_rejected(self):
        program = parse_program(
            "seed(X, W) -> r(X, W).\n"
            "r(X, W), e(X, Y), V = avg(W, <X>) -> r(Y, V)."
        )
        with pytest.raises(VadalogError):
            Engine().run(program, inputs={"seed": [], "e": []})

    def test_min_outside_recursion_allowed(self):
        result = run(
            "val(G, W), V = min(W, <W>) -> lo(G, V).",
            val=[("g", 3), ("g", 1)],
        )
        assert result.facts("lo") == {("g", 1)}

    def test_msum_in_recursion_allowed(self):
        result = run(
            "company(X) -> c(X, X).\n"
            "c(X, Z), own(Z, Y, W), V = msum(W, <Z>), V > 0.5 -> c(X, Y).",
            company=[("a",)],
            own=[("a", "b", 0.9)],
        )
        assert ("a", "b") in result.facts("c")


class TestGuards:
    def test_iteration_cap(self):
        # Growing integers: never reaches a fixpoint (fresh constants).
        engine = Engine(max_iterations=10, check_wardedness=False)
        program = parse_program("n(X), Y = X + 1 -> n(Y).")
        with pytest.raises(EvaluationError):
            engine.run(program, inputs={"n": [(0,)]})

    def test_zero_iterations_ok_for_empty_input(self):
        result = run("e(X, Y) -> tc(X, Y).\ntc(X, Y), e(Y, Z) -> tc(X, Z).", e=[])
        assert result.facts("tc") == set()

    def test_condition_only_body_with_atom(self):
        result = run("p(X), 1 < 2 -> q(X).", p=[(1,)])
        assert result.facts("q") == {(1,)}
