"""Bulk (column-wise) graph/dictionary boundary: differential tests.

The columnar fast path moves ``graph_to_database`` /
``materialize_into_graph`` and the ``to_dictionary`` encoders onto the
bulk graph accessors (``nodes_table`` / ``add_nodes_bulk`` and friends).
Every test here pins the bulk path against the per-object oracle
(``bulk=False``) or against previously observed sequential semantics:
same facts, same graphs, same deterministic order.
"""

import random

import pytest

from repro.core import GraphDictionary, SuperSchema
from repro.core.instances import SuperInstance
from repro.core.oid import construct_oid
from repro.graph.property_graph import ABSENT, GraphError, PropertyGraph
from repro.metalog import (
    GraphCatalog,
    compile_metalog,
    graph_to_database,
    parse_metalog,
)
from repro.metalog.mtv import materialize_into_graph
from repro.ssst.materializer import _flush_instance_facts
from repro.vadalog.database import Database
from repro.vadalog.engine import Engine


def node_snapshot(graph):
    return sorted(
        (str(n.id), n.label, tuple(sorted(n.properties.items())))
        for n in graph.nodes()
    )


def edge_snapshot(graph):
    return sorted(
        (str(e.id), str(e.source), str(e.target), e.label,
         tuple(sorted(e.properties.items())))
        for e in graph.edges()
    )


def big_mixed_graph(nodes=10_000, seed=99):
    """~10k nodes over three labels with patchy properties, plus edges."""
    rng = random.Random(seed)
    graph = PropertyGraph("big")
    labels = ("Alpha", "Beta", "Gamma")
    for i in range(nodes):
        label = labels[i % 3]
        properties = {"k": i}
        if rng.random() < 0.7:
            properties["name"] = f"n{i}"
        if rng.random() < 0.3:
            properties["score"] = rng.random()
        graph.add_node(i, label, **properties)
    for j in range(nodes * 2):
        source, target = rng.randrange(nodes), rng.randrange(nodes)
        properties = {}
        if rng.random() < 0.5:
            properties["weight"] = rng.random()
        graph.add_edge(source, target, "LINK", edge_id=f"e{j}", **properties)
    return graph


class TestGraphBulkAccessors:
    def test_nodes_table_round_trip(self):
        graph = PropertyGraph("g")
        graph.add_node(1, "P", x=1, y="a")
        graph.add_node(2, "P", x=2)
        ids, columns = graph.nodes_table("P", ("x", "y"))
        assert ids == [1, 2]
        assert columns == [[1, 2], ["a", None]]

    def test_absent_sentinel_distinguishes_missing_from_none(self):
        graph = PropertyGraph("g")
        graph.add_node(1, "P", x=None)
        graph.add_node(2, "P")
        ids, (xs,) = graph.nodes_table("P", ("x",), default=ABSENT)
        assert xs[0] is None and xs[1] is ABSENT

    def test_add_nodes_bulk_equals_per_object(self):
        bulk, seq = PropertyGraph("b"), PropertyGraph("s")
        bulk.add_nodes_bulk(
            "P", [1, 2], ("x", "y"), [[1, None], ["a", "b"]],
            constants={"tag": "t"},
        )
        seq.add_node(1, "P", x=1, y="a", tag="t")
        seq.add_node(2, "P", y="b", tag="t")  # None x dropped
        assert node_snapshot(bulk) == node_snapshot(seq)

    def test_add_nodes_bulk_duplicate_is_atomic(self):
        graph = PropertyGraph("g")
        graph.add_node(1, "P")
        with pytest.raises(GraphError):
            graph.add_nodes_bulk("P", [2, 1], (), [])
        assert not graph.has_node(2)  # nothing partially applied

    def test_add_edges_bulk_checks_endpoints(self):
        graph = PropertyGraph("g")
        graph.add_node(1, "P")
        with pytest.raises(GraphError):
            graph.add_edges_bulk("R", ["e"], [1], [999])

    def test_existing_ids(self):
        graph = PropertyGraph("g")
        graph.add_node(1, "P")
        graph.add_edge(1, 1, "R", edge_id="e")
        assert graph.existing_node_ids([1, 2]) == {1}
        assert graph.existing_edge_ids(["e", "f"]) == {"e"}


class TestBulkExtraction:
    @pytest.mark.parametrize("columnar", [False, True])
    def test_bulk_extraction_bit_identical_10k(self, columnar):
        graph = big_mixed_graph()
        catalog = GraphCatalog.from_graph(graph)
        fast = graph_to_database(graph, catalog, columnar=columnar, bulk=True)
        slow = graph_to_database(graph, catalog, columnar=columnar, bulk=False)
        assert fast.predicates() == slow.predicates()
        for predicate in fast.predicates():
            assert list(fast.relation(predicate)) == list(
                slow.relation(predicate)
            ), predicate

    def test_extraction_order_is_stable(self):
        """Label iteration is sorted, so two graphs holding the same data
        built with different label-registration order extract the same
        relation order."""
        first, second = PropertyGraph("a"), PropertyGraph("b")
        first.add_node(1, "Zeta", k=1)
        first.add_node(2, "Alpha", k=2)
        second.add_node(2, "Alpha", k=2)
        second.add_node(1, "Zeta", k=1)
        catalog = GraphCatalog()
        catalog.extend_node("Zeta", ["k"])
        catalog.extend_node("Alpha", ["k"])
        db1 = graph_to_database(first, catalog)
        db2 = graph_to_database(second, catalog)
        assert db1.predicates() == db2.predicates()
        assert db1.predicates() == sorted(db1.predicates())


class TestBulkMaterialize:
    def _run(self, graph, text, bulk):
        catalog = GraphCatalog.from_graph(graph)
        compiled = compile_metalog(parse_metalog(text), catalog)
        database = graph_to_database(
            graph, compiled.catalog,
            node_labels=compiled.input_node_labels,
            edge_labels=compiled.input_edge_labels,
        )
        result = Engine().run(compiled.program, database=database)
        target = graph.copy()
        counts = materialize_into_graph(result, compiled, target, bulk=bulk)
        return target, counts

    def test_bulk_matches_per_object_on_derivations(self):
        graph = PropertyGraph("own")
        for business in "abcd":
            graph.add_node(business, "Business", name=business)
        for source, target, pct in [
            ("a", "b", 0.6), ("b", "c", 0.7), ("a", "c", 0.2), ("c", "d", 0.9),
        ]:
            graph.add_edge(source, target, "OWNS", percentage=pct)
        text = (
            "(x: Business)[:OWNS; percentage: w](y: Business), w > 0.5"
            " -> exists c : (x)[c: CONTROLS](y)."
        )
        fast, fast_counts = self._run(graph, text, bulk=True)
        slow, slow_counts = self._run(graph, text, bulk=False)
        assert fast_counts == slow_counts
        assert node_snapshot(fast) == node_snapshot(slow)
        assert edge_snapshot(fast) == edge_snapshot(slow)
        assert fast_counts[1] == 3  # a->b, b->c, c->d

    def test_derived_none_clears_stale_property(self):
        """Regression: an update deriving ``None`` for a head-mentioned
        property must clear the stale stored value, not silently keep it."""
        graph = PropertyGraph("g")
        graph.add_node(1, "P", flag="stale", src=7)
        graph.add_node(2, "P", flag="stale")  # src missing -> extracts None
        # Head label differs from the body label so the rule does not
        # re-fire on its own output (updates target the same OIDs).
        text = "(x: P; src: s) -> (x: Derived; flag: s)."
        target, _ = self._run(graph, text, bulk=True)
        assert target.node(1).get("flag") == 7
        assert "flag" not in target.node(2).properties
        oracle, _ = self._run(graph, text, bulk=False)
        assert node_snapshot(target) == node_snapshot(oracle)

    def test_absent_head_property_not_cleared(self):
        """Properties the head never mentions stay untouched even though
        the derived fact carries ``None`` at their position."""
        graph = PropertyGraph("g")
        graph.add_node(1, "P", src=1, keepme="yes")
        text = "(x: P; src: s) -> (x: P; src: s)."
        target, _ = self._run(graph, text, bulk=True)
        assert target.node(1).get("keepme") == "yes"


class TestBulkSchemaDictionary:
    def test_schema_bulk_matches_per_object(self, company_schema):
        fast = company_schema.to_dictionary(PropertyGraph("f"), bulk=True)
        slow = company_schema.to_dictionary(PropertyGraph("s"), bulk=False)
        assert node_snapshot(fast) == node_snapshot(slow)
        assert edge_snapshot(fast) == edge_snapshot(slow)

    def test_round_trip_preserves_modifiers(self, company_schema):
        graph = company_schema.to_dictionary(PropertyGraph("d"), bulk=True)
        loaded = SuperSchema.from_dictionary(
            graph, company_schema.schema_oid
        )
        gender = loaded.get_node("PhysicalPerson").get_attribute("gender")
        kinds = {m.kind for m in gender.modifiers}
        assert "SM_EnumAttributeModifier" in kinds

    def test_multityped_construct_resolves_by_marker(self, company_schema):
        graph = company_schema.to_dictionary(PropertyGraph("d"), bulk=True)
        soid = company_schema.schema_oid
        # Simulate an SSST intermediate schema: the Business construct
        # also carries an ancestor type named "AAncestor" (sorts first).
        extra_type = construct_oid(soid, "type", "AAncestor")
        graph.add_node(extra_type, "SM_Type", schemaOID=soid, name="AAncestor")
        business_oid = construct_oid(soid, "node", "Business")
        graph.add_edge(
            business_oid, extra_type, "SM_HAS_NODE_TYPE",
            edge_id=f"{business_oid}-[extra]", schemaOID=soid,
        )
        loaded = SuperSchema.from_dictionary(graph, soid)
        # The ":node:Business" Skolem marker wins over names[0] order.
        assert loaded.get_node("Business") is not None
        with pytest.raises(Exception):
            loaded.get_node("AAncestor")


class TestBulkInstanceDictionary:
    def test_instance_bulk_matches_per_object(
        self, company_schema, tiny_instance
    ):
        graphs = []
        for bulk in (True, False):
            dictionary = GraphDictionary()
            dictionary.store(company_schema)
            instance = SuperInstance.from_plain_graph(
                company_schema, tiny_instance, 7
            )
            instance.to_dictionary(dictionary.graph, bulk=bulk)
            graphs.append(dictionary.graph)
        fast, slow = graphs
        assert node_snapshot(fast) == node_snapshot(slow)
        assert edge_snapshot(fast) == edge_snapshot(slow)

    def test_instance_round_trip_on_bulk_path(
        self, company_schema, tiny_instance
    ):
        dictionary = GraphDictionary()
        dictionary.store(company_schema)
        instance = SuperInstance.from_plain_graph(
            company_schema, tiny_instance, 7
        )
        instance.to_dictionary(dictionary.graph)
        back = SuperInstance.from_dictionary(
            dictionary.graph, company_schema, 7
        )
        assert node_snapshot(back.data) == node_snapshot(tiny_instance)
        assert edge_snapshot(back.data) == edge_snapshot(tiny_instance)


class TestBulkInstanceFlush:
    def _seed_database(self):
        database = Database()
        inst = 7
        for oid, src in [("n1", "a"), ("n2", "b")]:
            database.add("I_SM_Node", (oid, inst, src))
        database.add("I_SM_Attribute", ("at1", inst, None))  # None value kept
        database.add("I_SM_Attribute", ("at2", inst, 3.5))
        database.add(
            "I_SM_HAS_NODE_PROPERTY", ("h1", "n1", "at1", inst)
        )
        database.add(
            "I_SM_HAS_NODE_PROPERTY", ("h2", "n1", "missing", inst)
        )  # dangling: target never materialized
        return database

    def test_bulk_flush_matches_per_object(self):
        counts = []
        snapshots = []
        for bulk in (True, False):
            graph = PropertyGraph("dict")
            counts.append(
                _flush_instance_facts(self._seed_database(), graph, bulk=bulk)
            )
            snapshots.append((node_snapshot(graph), edge_snapshot(graph)))
        assert counts[0] == counts[1] == (5, 1)
        assert snapshots[0] == snapshots[1]
        nodes, _edges = snapshots[0]
        by_id = {entry[0]: dict(entry[2]) for entry in nodes}
        assert by_id["at1"] == {"instanceOID": 7, "value": None}
        assert by_id["n1"] == {"instanceOID": 7, "sourceOID": "a"}

    def test_existing_oids_are_skipped(self):
        graph = PropertyGraph("dict")
        graph.add_node("n1", "I_SM_Node", instanceOID=7, sourceOID="a")
        added, dropped = _flush_instance_facts(self._seed_database(), graph)
        assert graph.node_count == 4  # n1 not duplicated
        assert added == 4 and dropped == 1
