"""Vadalog concrete-syntax parser tests."""

import pytest

from repro.errors import ParseError
from repro.vadalog import parse_program, parse_rule
from repro.vadalog.ast import (
    AggregateCall,
    Assignment,
    Atom,
    BinOp,
    Condition,
    FunctionCall,
    NegatedAtom,
    SkolemTerm,
    TermExpr,
)
from repro.vadalog.terms import ANONYMOUS, Variable


class TestAtomsAndTerms:
    def test_simple_rule(self):
        rule = parse_rule("p(X, Y) -> q(Y, X).")
        assert rule.body == (Atom("p", (Variable("X"), Variable("Y"))),)
        assert rule.head == (Atom("q", (Variable("Y"), Variable("X"))),)

    def test_term_kinds(self):
        rule = parse_rule('p(X, foo, "bar", 3, 2.5, -4, true, _) -> q(X).')
        terms = rule.body[0].terms
        assert terms[0] == Variable("X")
        assert terms[1] == "foo"  # lowercase identifier: symbol constant
        assert terms[2] == "bar"
        assert terms[3] == 3 and terms[4] == 2.5 and terms[5] == -4
        assert terms[6] is True
        assert terms[7] == ANONYMOUS

    def test_fact(self):
        program = parse_program('person("ada").')
        assert program.rules[0].body == ()
        assert program.rules[0].head == (Atom("person", ("ada",)),)

    def test_non_ground_fact_is_unsafe_rule(self):
        # Parses fine (validation happens in the engine).
        program = parse_program("p(X).")
        assert program.rules[0].head[0].terms == (Variable("X"),)

    def test_multi_head(self):
        rule = parse_rule("p(X) -> q(X), r(X, X).")
        assert len(rule.head) == 2

    def test_zero_arity_atom(self):
        rule = parse_rule("trigger() -> fired().")
        assert rule.body[0].arity == 0


class TestBodyLiterals:
    def test_negation(self):
        rule = parse_rule("p(X), not q(X) -> r(X).")
        assert isinstance(rule.body[1], NegatedAtom)
        assert rule.body[1].atom.predicate == "q"

    def test_condition_operators(self):
        for op in ("==", "!=", "<", "<=", ">", ">="):
            rule = parse_rule(f"p(X), X {op} 3 -> q(X).")
            condition = rule.body[1]
            assert isinstance(condition, Condition)
            assert condition.op == op

    def test_assignment_with_arithmetic(self):
        rule = parse_rule("p(X, Y), Z = X * 2 + Y -> q(Z).")
        assignment = rule.body[1]
        assert isinstance(assignment, Assignment)
        assert assignment.target == Variable("Z")
        assert isinstance(assignment.expression, BinOp)
        assert assignment.expression.op == "+"

    def test_operator_precedence(self):
        rule = parse_rule("p(X), Z = 1 + 2 * 3 -> q(Z).")
        expression = rule.body[1].expression
        assert expression.op == "+"
        assert expression.right.op == "*"

    def test_unary_minus(self):
        rule = parse_rule("p(X), Z = -X -> q(Z).")
        expression = rule.body[1].expression
        assert expression.op == "-"
        assert expression.left == TermExpr(0)

    def test_function_call(self):
        rule = parse_rule('p(X), Z = concat(X, "-suffix") -> q(Z).')
        assert isinstance(rule.body[1].expression, FunctionCall)

    def test_aggregate_with_contributors(self):
        rule = parse_rule("own(Z, Y, W), V = msum(W, <Z>) -> total(Y, V).")
        call = rule.body[1].expression
        assert isinstance(call, AggregateCall)
        assert call.function == "msum"
        assert call.contributors == (Variable("Z"),)

    def test_aggregate_without_contributors(self):
        rule = parse_rule("own(Z, Y, W), V = msum(W) -> total(Y, V).")
        assert rule.body[1].expression.contributors == ()

    def test_condition_on_function_result_is_condition(self):
        rule = parse_rule("p(X), strlen(X) > 2 -> q(X).")
        condition = rule.body[1]
        assert isinstance(condition, Condition)
        assert isinstance(condition.left, FunctionCall)


class TestSkolemTerms:
    def test_skolem_in_head(self):
        rule = parse_rule("p(X) -> q(#mk(X), X).")
        term = rule.head[0].terms[0]
        assert isinstance(term, SkolemTerm)
        assert term.functor == "mk"
        assert term.arguments == (Variable("X"),)

    def test_skolem_in_body_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("p(#mk(X)) -> q(X).")


class TestAnnotations:
    def test_input_output(self):
        program = parse_program(
            '@input("own", "(a)-[e:OWNS]->(b) return (e,a,b)", "neo4j").\n'
            '@output("controls").'
        )
        assert program.input_predicates()["own"].arguments[2] == "neo4j"
        assert program.output_predicates() == ["controls"]

    def test_predicate_sets(self):
        program = parse_program(
            "p(X) -> q(X).\nq(X), r(X) -> s(X)."
        )
        assert program.idb_predicates() == {"q", "s"}
        assert program.edb_predicates() == {"p", "r"}


class TestErrors:
    def test_missing_terminator(self):
        with pytest.raises(ParseError):
            parse_program("p(X) -> q(X)")

    def test_garbage(self):
        with pytest.raises(ParseError):
            parse_program("p(X) -> -> q(X).")

    def test_rule_roundtrips_through_str(self):
        text = 'controls(X, Z), own(Z, Y, W), V = msum(W, <Z>), V > 0.5 -> controls(X, Y).'
        rule = parse_rule(text)
        reparsed = parse_rule(str(rule))
        assert reparsed == rule
