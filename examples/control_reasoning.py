"""Company control over a synthetic registry, end to end.

Generates a scale-free shareholding registry (the Section 2.1 stand-in),
prints its statistics table against the paper's values, then runs the
two-stage intensional component (OWNS derivation from the reified
shares, then Example 4.1 control) through Algorithm 2, cross-checking
the result against the direct worklist baseline.

Run with:  python examples/control_reasoning.py [n_companies]
"""

import sys

from repro.finkg import (
    ShareholdingConfig,
    company_groups,
    control_pairs,
    generate_company_kg,
    generate_shareholding_graph,
    programs,
    stakes_from_graph,
)
from repro.finkg.company_schema import company_super_schema
from repro.graph import summarize
from repro.metalog import parse_metalog
from repro.ssst import IntensionalMaterializer


def main(companies: int = 400):
    config = ShareholdingConfig(companies=companies, seed=42)

    # --- the Section 2.1 statistics table -----------------------------
    flat = generate_shareholding_graph(config)
    print(f"Synthetic registry: {flat.node_count} nodes, "
          f"{flat.edge_count} shareholding edges\n")
    print(summarize(flat).format_table())

    # --- Algorithm 2: OWNS then CONTROLS ------------------------------
    schema = company_super_schema()
    kg = generate_company_kg(config)
    materializer = IntensionalMaterializer()

    first = materializer.materialize(
        schema, kg, parse_metalog(programs.OWNS_PROGRAM), 1
    )
    print(f"\nderived OWNS edges: {first.derived_counts.get('OWNS', 0)}")

    second = materializer.materialize(
        schema, first.instance.data,
        parse_metalog(programs.PERSON_CONTROL_PROGRAM), 2,
    )
    controls = {
        (e.source, e.target)
        for e in second.instance.data.edges("CONTROLS")
        if e.source != e.target
    }
    print(f"derived CONTROLS edges: {len(controls)}")
    print("phase breakdown (control):", {
        phase: f"{seconds:.2f}s"
        for phase, seconds in second.phase_breakdown().items()
    })

    # --- cross-check against the worklist baseline ---------------------
    baseline = control_pairs(stakes_from_graph(first.instance.data))
    assert controls == baseline, "reasoner and baseline disagree!"
    print("baseline agreement: OK")

    # --- company groups -------------------------------------------------
    groups = company_groups(stakes_from_graph(first.instance.data))
    largest = max(groups.items(), key=lambda kv: len(kv[1]), default=None)
    print(f"\ncompany groups: {len(groups)}")
    if largest:
        leader, members = largest
        print(f"largest group: leader {leader} with {len(members)} companies")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
