"""ECB close links and family detection over a synthetic registry.

Derives integrated ownership (the unrolled MetaLog program of [43]),
then the CLOSE_LINK relation of Guideline (EU) 2018/876, and finally the
family structure via linker Skolem functors — each cross-checked against
its direct baseline.

Run with:  python examples/close_links_analysis.py
"""

from repro.finkg import (
    ShareholdingConfig,
    close_links,
    families_by_surname,
    generate_company_kg,
    generate_shareholding_data,
    generate_shareholding_graph,
    integrated_ownership,
    integrated_ownership_series,
    programs,
    stakes_as_tuples,
)
from repro.finkg.close_links import close_link_pairs_from_graph
from repro.finkg.company_schema import company_super_schema
from repro.finkg.ownership import iown_pairs_from_graph
from repro.metalog import parse_metalog, run_on_graph
from repro.ssst import IntensionalMaterializer

DEPTH = 6


def main():
    config = ShareholdingConfig(companies=150, seed=8, cycle_probability=0.0)
    graph = generate_shareholding_graph(config)
    stakes = stakes_as_tuples(generate_shareholding_data(config))

    # --- integrated ownership -------------------------------------------
    print(f"registry: {graph.node_count} nodes, {graph.edge_count} stakes")
    exact = integrated_ownership(stakes)
    series = integrated_ownership_series(stakes, depth=DEPTH)
    error = max(
        (abs(exact[k] - series.get(k, 0.0)) for k in exact), default=0.0
    )
    print(f"integrated ownership: {len(exact)} pairs "
          f"(depth-{DEPTH} truncation error {error:.2e})")

    # MetaLog unrolling over the flat graph (label-free variant).
    program_text = (
        programs.integrated_ownership_program(depth=DEPTH)
        .replace("(x: Person)", "(x)")
        .replace("(y: Business)", "(y)")
        .replace("(z: Business)", "(z)")
    )
    with_io = run_on_graph(parse_metalog(program_text), graph)
    meta_io = {
        k: v for k, v in iown_pairs_from_graph(with_io.graph).items()
        if k[0] != k[1]
    }
    agreement = all(
        abs(meta_io.get(k, 0.0) - series.get(k, 0.0)) < 1e-9
        for k in set(meta_io) | set(series)
    )
    print(f"MetaLog IOWN pipeline: {len(meta_io)} pairs, "
          f"matches truncated series: {agreement}")

    # --- close links ------------------------------------------------------
    outcome = run_on_graph(
        parse_metalog(programs.close_links_program()), with_io.graph
    )
    meta_links = close_link_pairs_from_graph(outcome.graph)
    baseline_links = close_links(stakes, io=series)
    print(f"close links: {len(meta_links) // 2} symmetric pairs "
          f"(baseline agreement: {meta_links == baseline_links})")
    sample = sorted(meta_links)[:5]
    for pair in sample:
        print("   close link:", pair)

    # --- families via linker Skolem functors ------------------------------
    schema = company_super_schema()
    kg = generate_company_kg(ShareholdingConfig(companies=60, seed=8))
    materializer = IntensionalMaterializer()
    staged = materializer.materialize(
        schema, kg, parse_metalog(programs.OWNS_PROGRAM), 1
    )
    enriched = materializer.materialize(
        schema, staged.instance.data, parse_metalog(programs.FAMILY_PROGRAM), 2
    )
    families = list(enriched.instance.data.nodes("Family"))
    baseline_families = families_by_surname(kg)
    print(f"\nfamilies: {len(families)} Family nodes "
          f"(baseline surnames: {len(baseline_families)})")
    family_owns = list(enriched.instance.data.edges("FAMILY_OWNS"))
    print(f"family-owned businesses: {len(family_owns)} FAMILY_OWNS edges")
    for edge in family_owns[:5]:
        family = enriched.instance.data.node(edge.source)
        print(f"   family {family.get('familyName')!r} owns {edge.target}")


if __name__ == "__main__":
    main()
