"""Quickstart: design a small KG, translate it, deploy it, reason on it.

Run with:  python examples/quickstart.py
"""

from repro import IntensionalMaterializer, PropertyGraph, SSST, SuperSchema
from repro.deploy import RelationalEngine, generate_ddl
from repro.metalog import parse_metalog


def main():
    # ------------------------------------------------------------------
    # 1. Design the extensional component at super-model level (GSL).
    # ------------------------------------------------------------------
    schema = SuperSchema("MiniOwnership", schema_oid=1)
    company = schema.node("Company")
    company.attribute("vat", is_id=True)
    company.attribute("name")
    owns = schema.edge("OWNS", company, company)
    owns.attribute("percentage", "float")
    schema.edge("CONTROLS", company, company, is_intensional=True)
    schema.validate()
    print(schema.summary())

    # ------------------------------------------------------------------
    # 2. Translate to a target model with the SSST (Algorithm 1) and
    #    render the deployable DDL.
    # ------------------------------------------------------------------
    translation = SSST().translate(schema, "relational")
    print("\n--- translated relational schema -------------------------")
    print(translation.target_schema.summary())
    print(generate_ddl(translation.target_schema))

    engine = RelationalEngine()
    engine.deploy(translation.target_schema)
    print("deployed tables:", engine.tables())

    # ------------------------------------------------------------------
    # 3. Specify the intensional component in MetaLog (Example 4.1) and
    #    materialize it over an instance (Algorithm 2).
    # ------------------------------------------------------------------
    sigma = parse_metalog("""
        (x: Company) -> exists c : (x)[c: CONTROLS](x).
        (x: Company)[:CONTROLS](z: Company)
            [:OWNS; percentage: w](y: Company),
            v = msum(w, <z>), v > 0.5
          -> exists c : (x)[c: CONTROLS](y).
    """)

    data = PropertyGraph("holdings")
    for vat in ("IT01", "IT02", "IT03"):
        data.add_node(vat, "Company", vat=vat, name=f"Company {vat}")
    data.add_edge("IT01", "IT02", "OWNS", percentage=0.6)
    data.add_edge("IT02", "IT03", "OWNS", percentage=0.3)
    data.add_edge("IT01", "IT03", "OWNS", percentage=0.3)

    report = IntensionalMaterializer().materialize(schema, data, sigma, 1)
    print("--- materialized intensional component --------------------")
    print("phase breakdown:", {
        phase: f"{seconds * 1000:.1f} ms"
        for phase, seconds in report.phase_breakdown().items()
    })
    for edge in report.instance.data.edges("CONTROLS"):
        if edge.source != edge.target:
            print(f"  {edge.source} CONTROLS {edge.target}")
    # IT01 controls IT02 directly (60%) and IT03 jointly (30% + 30%).


if __name__ == "__main__":
    main()
