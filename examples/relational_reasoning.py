"""Reasoning directly over the deployed relational database.

Algorithm 1 returns two things: the translated schema S' *and* "a new
version of the intensional component that can be applied to S'
instances".  This example exercises that second output: the Company KG
programs are rewritten against the translated tables, evaluated straight
from the RDBMS (no dictionary round-trip), and the expressible fragment
is additionally pushed down as SQL views — the Section 6 future-work
optimization.

Run with:  python examples/relational_reasoning.py
"""

from repro.deploy import RelationalEngine, generate_sql_views
from repro.finkg import ShareholdingConfig, generate_company_kg, programs
from repro.finkg.company_schema import company_super_schema
from repro.finkg.control import control_pairs
from repro.metalog import parse_metalog
from repro.ssst import (
    SSST,
    graph_instance_to_relational,
    reason_over_relational,
    translate_sigma_for_relational,
)


def main():
    schema = company_super_schema()
    translation = SSST().translate(schema, "relational")
    relational = translation.target_schema
    print(relational.summary())

    # Deploy a synthetic registry into the RDBMS.
    kg = generate_company_kg(ShareholdingConfig(companies=120, seed=21))
    engine = RelationalEngine()
    engine.deploy(relational)
    rows = graph_instance_to_relational(schema, kg, engine)
    print(f"loaded {rows} rows "
          f"({engine.count('Share')} shares, {engine.count('HOLDS')} stakes)")

    # --- the translated intensional component ---------------------------
    owns_sigma = parse_metalog(programs.OWNS_PROGRAM)
    compiled = translate_sigma_for_relational(owns_sigma, schema, relational)
    print("\nOWNS, rewritten against the tables:")
    for rule in compiled.program.rules:
        print("  ", rule)

    derived = reason_over_relational(owns_sigma, schema, relational, engine)
    print(f"\nderived OWNS rows: {len(derived['OWNS'])}")

    control_sigma = parse_metalog(programs.PERSON_CONTROL_PROGRAM)
    derived2 = reason_over_relational(control_sigma, schema, relational, engine)
    controls = {
        (r["CONTROLS_src_fiscalCode"], r["CONTROLS_tgt_fiscalCode"])
        for r in derived2["CONTROLS"]
        if r["CONTROLS_src_fiscalCode"] != r["CONTROLS_tgt_fiscalCode"]
    }
    print(f"derived CONTROLS rows (non-self): {len(controls)}")

    # Cross-check against the worklist baseline on the same OWNS rows.
    stakes = [
        (r["OWNS_src_fiscalCode"], r["OWNS_tgt_fiscalCode"], r["percentage"])
        for r in engine.rows("OWNS")
    ]
    assert controls == control_pairs(stakes), "reasoner and baseline disagree"
    print("baseline agreement: OK")

    # --- SQL pushdown (Section 6 future work) ----------------------------
    print("\nSQL pushdown of the OWNS derivation:")
    push = generate_sql_views(compiled.program, relational)
    print(push.sql())
    control_push = generate_sql_views(
        translate_sigma_for_relational(control_sigma, schema, relational).program,
        relational,
    )
    print(f"control program: {len(control_push.views)} view(s) pushable, "
          f"{len(control_push.retained)} rule(s) retained on the reasoner")
    for _, why in control_push.retained:
        print("   retained:", why)


if __name__ == "__main__":
    main()
