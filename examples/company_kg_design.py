"""The Figure 4 design journey: the Company KG from GSL to three targets.

Replays Section 3.3's modeling narrative, renders the GSL diagram, and
runs the SSST against the property-graph, relational, and RDF models —
regenerating Figures 6 and 8 on the way.

Run with:  python examples/company_kg_design.py
"""

from repro.core import (
    GraphDictionary,
    render_super_schema,
    schema_to_dot,
    supermodel_table,
)
from repro.deploy import generate_cypher_constraints, generate_ddl, generate_rdfs
from repro.finkg.company_schema import company_super_schema
from repro.ssst import SSST


def main():
    print("The super-model dictionary (Figure 3):\n")
    print(supermodel_table())

    # The Section 3.3 design, culminating in the Figure 4 GSL diagram.
    schema = company_super_schema()
    print("\n" + schema.summary())
    print("\nGSL graphemes (Gamma_SM):")
    for grapheme in render_super_schema(schema):
        print(" ", grapheme)

    dot = schema_to_dot(schema)
    print(f"\n(Graphviz DOT available: {len(dot.splitlines())} lines; "
          "pipe through `dot -Tsvg` to view)")

    # Store it in the graph dictionary and translate (Algorithm 1).
    dictionary = GraphDictionary()
    dictionary.store(schema)
    ssst = SSST()

    print("\n=== Figure 6: translation to the PG model ===")
    pg = ssst.translate_stored(dictionary, schema.schema_oid, "property-graph")
    for node_class in pg.target_schema.node_classes:
        print(f"  (:{':'.join(node_class.labels)})")
    print(f"  {len(pg.target_schema.relationship_classes)} relationship "
          "classes (incl. inherited copies)")
    print("\nCypher enforcement script:")
    print(generate_cypher_constraints(pg.target_schema))

    print("=== Figure 8: translation to the relational model ===")
    rel = ssst.translate(company_super_schema(), "relational")
    print(generate_ddl(rel.target_schema))

    print("=== Bonus: RDF-S (generalizations survive) ===")
    rdf = ssst.translate(company_super_schema(), "rdf")
    print(generate_rdfs(rdf.target_schema))


if __name__ == "__main__":
    main()
