"""Model independence in action: one design, three deployed systems.

A single GSL text file is translated to the property-graph, relational,
and RDF-S models; each translated schema is deployed into its in-memory
target system; the same instance is loaded everywhere; and the same
question is answered from each system — including the Example 4.4 loop
of feeding a compiled MetaLog program from a target system's ``@input``
queries.

Run with:  python examples/schema_translation_tour.py
"""

from repro.core import parse_gsl
from repro.deploy import (
    GraphStore,
    RelationalEngine,
    TripleStore,
    generate_ddl,
    load_graph_store,
    load_triple_store,
)
from repro.graph import PropertyGraph
from repro.metalog import compile_metalog, parse_metalog
from repro.ssst import SSST, graph_instance_to_relational
from repro.vadalog import Engine
from repro.vadalog.annotations import resolve_inputs

GSL_TEXT = """
schema Publishing oid 500 {
  node Party { id pid: string name: string }
  node Publisher { catalogue: int }
  node Writer { optional penName: string }
  generalization total disjoint Party -> Publisher, Writer
  node Book { id isbn: string title: string year: int }
  edge PUBLISHED Publisher 0..N -> 1..1 Book
  edge WROTE Writer 0..N -> 0..N Book { royalty: float }
  intensional edge HOUSE_AUTHOR Publisher -> Writer
}
"""


def build_instance() -> PropertyGraph:
    data = PropertyGraph("publishing")
    data.add_node("pub1", "Publisher", pid="pub1", name="Adelphi", catalogue=1200)
    data.add_node("w1", "Writer", pid="w1", name="Elena F.")
    data.add_node("w2", "Writer", pid="w2", name="Italo C.", penName="IC")
    data.add_node("b1", "Book", isbn="111", title="Book One", year=1999)
    data.add_node("b2", "Book", isbn="222", title="Book Two", year=2005)
    data.add_edge("pub1", "b1", "PUBLISHED")
    data.add_edge("pub1", "b2", "PUBLISHED")
    data.add_edge("w1", "b1", "WROTE", royalty=0.1)
    data.add_edge("w2", "b2", "WROTE", royalty=0.12)
    return data


def main():
    schema = parse_gsl(GSL_TEXT)
    print(schema.summary())
    data = build_instance()
    ssst = SSST()

    # --- relational --------------------------------------------------------
    rel = ssst.translate(schema, "relational")
    print("\n[relational]", rel.target_schema.summary())
    engine = RelationalEngine()
    engine.deploy(rel.target_schema)
    graph_instance_to_relational(schema, data, engine)
    print("  DDL preview:", generate_ddl(rel.target_schema).splitlines()[0], "...")
    books = engine.count("Book")
    print(f"  books in RDBMS: {books}")

    # --- property graph ------------------------------------------------------
    pg = ssst.translate(schema, "property-graph")
    print("\n[property-graph]", pg.target_schema.summary())
    store = GraphStore()
    store.deploy(pg.target_schema)
    load_graph_store(schema, data, store)
    pg_books = len(list(store.extract("(n:Book) return n")))
    print(f"  books in graph store: {pg_books}")

    # --- RDF-S ---------------------------------------------------------------
    rdf = ssst.translate(schema, "rdf")
    print("\n[rdf]", rdf.target_schema.summary())
    triples = TripleStore()
    triples.deploy(rdf.target_schema)
    load_triple_store(schema, data, triples)
    rdf_books = len(triples.instances_of("Book"))
    parties = len(triples.instances_of("Party"))  # via subclass inference
    print(f"  books in triple store: {rdf_books}; inferred Parties: {parties}")

    assert books == pg_books == rdf_books == 2

    # --- the Example 4.4 loop: @input from the graph store --------------------
    print("\n[MetaLog over the deployed graph store]")
    sigma = parse_metalog("""
        (p: Publisher)[: PUBLISHED](b: Book),
        (w: Writer)[: WROTE](b)
          -> exists h : (p)[h: HOUSE_AUTHOR](w).
    """)
    compiled = compile_metalog(sigma, store.catalog())
    for annotation in compiled.program.annotations:
        print("  ", annotation)
    database = resolve_inputs(compiled.program, {"store": store})
    result = Engine().run(compiled.program, database=database)
    for fact in sorted(result.facts("HOUSE_AUTHOR"), key=repr):
        print(f"  HOUSE_AUTHOR: {fact[1]} -> {fact[2]}")
    assert len(result.facts("HOUSE_AUTHOR")) == 2


if __name__ == "__main__":
    main()
